"""Per-figure/table result generators (the paper's evaluation section).

Each function reproduces one artefact of the evaluation:

* :func:`figure2` — ILAN vs. baseline normalized speedup per benchmark;
* :func:`figure3` — weighted average thread (core) count ILAN selected;
* :func:`figure4` — ILAN *without moldability* vs. baseline;
* :func:`figure5` — accumulated scheduling overhead, normalized;
* :func:`figure6` — ILAN and work-sharing vs. baseline;
* :func:`table1` — standard deviation of execution time.

Functions return structured row lists; :mod:`repro.exp.report` renders
them as the text tables the benches print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exp.runner import Runner
from repro.exp.stats import geo_mean, percent, speedup, summarize
from repro.workloads.registry import PAPER_ORDER

__all__ = [
    "SpeedupRow",
    "ThreadsRow",
    "OverheadRow",
    "VariabilityRow",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table1",
    "PAPER_EXPECTATIONS",
]

# Paper-reported numbers the reproduction is compared against (shape, not
# absolute): Figure 2/4 speedups, Figure 3 core counts, Table 1 stddevs.
PAPER_EXPECTATIONS = {
    "fig2_speedup": {"ft": 1.123, "bt": 1.169, "cg": 1.08, "sp": 1.458, "matmul": 0.98},
    "fig2_avg": 1.132,
    "fig3_cores": {"cg": 25, "ft": 64, "bt": 64, "matmul": 64},
    "fig4_avg": 1.079,
    "fig4_cg": 0.914,  # CG degrades 8.6% without moldability
    "table1": {
        "ft": (0.0117, 0.0037),
        "bt": (0.0133, 0.0197),
        "cg": (0.0094, 0.0239),
        "lu": (0.0169, 0.0045),
        "sp": (0.0554, 0.0258),
        "matmul": (0.0050, 0.0158),
        "lulesh": (0.0065, 0.0074),
    },
}


@dataclass(frozen=True)
class SpeedupRow:
    benchmark: str
    scheduler: str
    baseline_mean: float
    baseline_std: float
    sched_mean: float
    sched_std: float
    speedup: float

    @property
    def percent(self) -> float:
        return percent(self.speedup)


@dataclass(frozen=True)
class ThreadsRow:
    benchmark: str
    avg_threads: float
    max_threads: int


@dataclass(frozen=True)
class OverheadRow:
    benchmark: str
    baseline_overhead: float
    ilan_overhead: float
    normalized: float  # ilan / baseline, lower is better


@dataclass(frozen=True)
class VariabilityRow:
    benchmark: str
    baseline_std: float
    ilan_std: float
    baseline_rel_std: float
    ilan_rel_std: float


def _speedup_rows(runner: Runner, scheduler: str, benchmarks: list[str]) -> list[SpeedupRow]:
    rows: list[SpeedupRow] = []
    for bench in benchmarks:
        base = runner.cell(bench, "baseline").summary()
        sched = runner.cell(bench, scheduler).summary()
        rows.append(
            SpeedupRow(
                benchmark=bench,
                scheduler=scheduler,
                baseline_mean=base.mean,
                baseline_std=base.std,
                sched_mean=sched.mean,
                sched_std=sched.std,
                speedup=speedup(base.mean, sched.mean),
            )
        )
    return rows


def figure2(runner: Runner, benchmarks: list[str] | None = None) -> list[SpeedupRow]:
    """ILAN vs. baseline normalized speedup (paper Figure 2)."""
    return _speedup_rows(runner, "ilan", benchmarks or list(PAPER_ORDER))


def figure3(runner: Runner, benchmarks: list[str] | None = None) -> list[ThreadsRow]:
    """Weighted average thread count selected by ILAN (paper Figure 3)."""
    rows: list[ThreadsRow] = []
    for bench in benchmarks or list(PAPER_ORDER):
        cell = runner.cell(bench, "ilan")
        avg = summarize([r.weighted_avg_threads for r in cell.runs]).mean
        rows.append(
            ThreadsRow(
                benchmark=bench,
                avg_threads=avg,
                max_threads=runner.topology.num_cores,
            )
        )
    return rows


def figure4(runner: Runner, benchmarks: list[str] | None = None) -> list[SpeedupRow]:
    """ILAN without moldability vs. baseline (paper Figure 4)."""
    return _speedup_rows(runner, "ilan-nomold", benchmarks or list(PAPER_ORDER))


def figure5(runner: Runner, benchmarks: list[str] | None = None) -> list[OverheadRow]:
    """Accumulated scheduling overhead, ILAN normalized to baseline
    (paper Figure 5; lower is better)."""
    rows: list[OverheadRow] = []
    for bench in benchmarks or list(PAPER_ORDER):
        base = runner.cell(bench, "baseline").overhead_summary().mean
        ilan = runner.cell(bench, "ilan").overhead_summary().mean
        rows.append(
            OverheadRow(
                benchmark=bench,
                baseline_overhead=base,
                ilan_overhead=ilan,
                normalized=ilan / base if base > 0 else float("inf"),
            )
        )
    return rows


def figure6(
    runner: Runner, benchmarks: list[str] | None = None
) -> dict[str, list[SpeedupRow]]:
    """ILAN and OpenMP work-sharing vs. baseline (paper Figure 6)."""
    benches = benchmarks or list(PAPER_ORDER)
    return {
        "ilan": _speedup_rows(runner, "ilan", benches),
        "worksharing": _speedup_rows(runner, "worksharing", benches),
    }


def table1(runner: Runner, benchmarks: list[str] | None = None) -> list[VariabilityRow]:
    """Standard deviation of execution time, baseline vs. ILAN (Table 1)."""
    rows: list[VariabilityRow] = []
    for bench in benchmarks or list(PAPER_ORDER):
        base = runner.cell(bench, "baseline").summary()
        ilan = runner.cell(bench, "ilan").summary()
        rows.append(
            VariabilityRow(
                benchmark=bench,
                baseline_std=base.std,
                ilan_std=ilan.std,
                baseline_rel_std=base.rel_std,
                ilan_rel_std=ilan.rel_std,
            )
        )
    return rows


def average_speedup(rows: list[SpeedupRow]) -> float:
    """Geometric-mean speedup across benchmarks (the paper's 'average')."""
    return geo_mean([r.speedup for r in rows])
