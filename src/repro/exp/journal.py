"""Append-only write-ahead journal for experiment campaigns.

A campaign SIGKILLed mid-flight loses its process state but must lose no
*work*: every completed run is already in the content-addressed cache
(:mod:`repro.exp.cache`), and this journal records, durably, how far the
campaign got — each cell's ``planned → running → committed`` transitions
— so ``--resume`` can replay the file, skip committed cells, and finish
the rest.  Because per-cell seed streams are derived from stable cell
keys (:func:`repro.exp.runner.derive_run_seed`), the resumed campaign's
output is byte-identical to an uninterrupted run.

Record framing
--------------

One record per line::

    crc32(payload):08x SP payload LF

where ``payload`` is canonical JSON (sorted keys, no whitespace).  Every
append is flushed and ``fsync``'d before :meth:`Journal.append` returns,
so the journal on disk is always a prefix of the logical record stream
plus at most one torn tail line.  Replay verifies each line's CRC:

* a damaged or truncated *final* line is the torn write of the crash —
  it is dropped silently on replay, and re-opening the journal for
  appending truncates it away first, so new records always start on a
  record boundary (never glued onto torn bytes);
* a damaged line with valid records after it cannot be produced by a
  crash of the single append-only writer, so it raises
  :class:`~repro.errors.JournalError` (real corruption must be loud).

Records carry no timestamps — the journal lives in a deterministic
package (DET001) and replay must not depend on when the campaign ran.

Commit protocol (used by :class:`repro.exp.runner.Runner`)
----------------------------------------------------------

1. a ``campaign`` header pins the configuration fingerprint (topology,
   seeds, timesteps, noise); resuming under a different configuration is
   refused;
2. every cell is journalled ``planned`` with its run keys before any
   simulation starts;
3. ``running`` marks the cell whose runs are being computed;
4. ``committed`` is appended only after every run of the cell has been
   persisted to the result cache — the cache write *happens before* the
   commit record, so a committed cell's runs are always reloadable (and,
   being checksummed, verifiable) on resume.

State replay is idempotent and monotone: transitions only advance
(``planned < running < committed``), so replaying any prefix twice
yields the same state as replaying it once — the Hypothesis property
tests pin this.
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from pathlib import Path
from types import FrameType, TracebackType
from typing import Any, Iterable, Mapping

from repro.errors import JournalError
from repro.ioutil import fsync_dir

__all__ = [
    "JOURNAL_VERSION",
    "CELL_PLANNED",
    "CELL_RUNNING",
    "CELL_COMMITTED",
    "Journal",
    "JournalState",
    "CampaignJournal",
    "read_records",
    "replay_state",
    "install_checkpoint_handlers",
]

#: Bump when the record vocabulary changes incompatibly.
JOURNAL_VERSION = 1

CELL_PLANNED = "planned"
CELL_RUNNING = "running"
CELL_COMMITTED = "committed"

#: Monotone transition order — replay only ever advances a cell.
_STATE_ORDER = {CELL_PLANNED: 0, CELL_RUNNING: 1, CELL_COMMITTED: 2}


def _frame(record: Mapping[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return f"{zlib.crc32(payload):08x} ".encode("ascii") + payload + b"\n"


def _parse_line(line: bytes) -> dict[str, Any] | None:
    """Decode one framed line; ``None`` means damaged (CRC or structure)."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def _scan(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Intact records of a journal file plus the byte offset where the
    intact prefix ends (== file size when there is no torn tail).

    Tolerates exactly the damage a crash can cause: a torn final line
    (truncated, no trailing newline, or CRC-broken).  Damage anywhere
    else raises :class:`JournalError`.
    """
    raw = Path(path).read_bytes()
    if not raw:
        return [], 0
    lines = raw.split(b"\n")
    complete, tail = lines[:-1], lines[-1]
    records: list[dict[str, Any]] = []
    intact_end = 0
    for index, line in enumerate(complete):
        record = _parse_line(line)
        if record is None:
            if index == len(complete) - 1 and tail == b"":
                break  # torn final record that still got its newline out
            raise JournalError(
                f"{path}: journal record {index + 1} is corrupt but records "
                "follow it — this is not a torn tail; refusing to replay"
            )
        records.append(record)
        intact_end += len(line) + 1  # the record and its newline
    # a non-empty `tail` is the torn, never-newline-terminated final write
    return records, intact_end


def read_records(path: str | Path) -> list[dict[str, Any]]:
    """Every intact record of a journal file, in append order (the torn
    final line a crash can leave is dropped; see :func:`_scan`)."""
    return _scan(path)[0]


class Journal:
    """The append-only framed record file (one durable write per append).

    ``fsync=False`` drops the per-record flush-to-disk (tests); the frame
    and replay semantics are unchanged.  ``crash_after=N`` is the crash-
    injection seam used by ``scripts/crash_smoke.py``: the *process* is
    SIGKILLed immediately after the N-th append becomes durable, which
    lands the kill exactly between two journal transitions.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        crash_after: int | None = None,
    ):
        self.path = Path(path)
        self._fsync = fsync
        self._crash_after = crash_after
        self._appended = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        if existed:
            self._truncate_torn_tail()
        self._fh = open(self.path, "ab")
        if not existed and fsync:
            fsync_dir(self.path.parent)

    def _truncate_torn_tail(self) -> None:
        """Cut the file back to its last intact record boundary.

        Replay merely *tolerates* the torn final line a crash leaves; an
        appender must remove it, or the next record would be glued onto
        the damaged bytes — producing a line that is silently dropped (if
        last) or poisons the whole journal (if records follow it).  After
        this, every append starts on a record boundary.
        """
        _, intact_end = _scan(self.path)
        if intact_end < self.path.stat().st_size:
            with open(self.path, "r+b") as fh:
                fh.truncate(intact_end)
                if self._fsync:
                    os.fsync(fh.fileno())

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (framed, flushed, fsync'd)."""
        if self._fh.closed:
            raise JournalError(f"{self.path}: journal is closed")
        self._fh.write(_frame(record))
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self._appended += 1
        if self._crash_after is not None and self._appended >= self._crash_after:
            # crash-injection seam: die the hard way, mid-campaign, with
            # the record just written already durable on disk
            os.kill(os.getpid(), signal.SIGKILL)

    @property
    def appended(self) -> int:
        """Records appended through *this* handle (not the whole file)."""
        return self._appended

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class JournalState:
    """Replayed view of a campaign journal (idempotent fold over records)."""

    def __init__(self) -> None:
        self.header: dict[str, Any] | None = None
        self.cells: dict[tuple[str, str], str] = {}
        self.keys: dict[tuple[str, str], tuple[str, ...]] = {}
        self.checkpoints: list[str] = []

    def apply(self, record: Mapping[str, Any]) -> None:
        """Fold one record in.  Monotone and idempotent by construction:
        a cell only advances through the state order, a second identical
        header is a no-op, and a *conflicting* header is corruption."""
        kind = record.get("type")
        if kind == "campaign":
            header = {k: v for k, v in record.items() if k != "type"}
            if self.header is None:
                self.header = header
            elif self.header != header:
                raise JournalError(
                    "journal contains two conflicting campaign headers — "
                    f"{self.header!r} vs {header!r}"
                )
        elif kind == "cell":
            state = record.get("state")
            if state not in _STATE_ORDER:
                raise JournalError(f"unknown cell state {state!r} in journal")
            cell = (str(record.get("benchmark")), str(record.get("scheduler")))
            current = self.cells.get(cell)
            if current is None or _STATE_ORDER[state] > _STATE_ORDER[current]:
                self.cells[cell] = state
            keys = record.get("keys")
            if keys is not None and cell not in self.keys:
                self.keys[cell] = tuple(str(k) for k in keys)
        elif kind == "checkpoint":
            # ordered set of distinct stop reasons: like the cell states,
            # folding is idempotent, so replaying a stream twice yields
            # the same state as once (the full audit trail is the file)
            reason = str(record.get("reason"))
            if reason not in self.checkpoints:
                self.checkpoints.append(reason)
        else:
            raise JournalError(f"unknown journal record type {kind!r}")

    def state_of(self, benchmark: str, scheduler: str) -> str | None:
        return self.cells.get((benchmark, scheduler))

    def committed_cells(self) -> set[tuple[str, str]]:
        return {
            cell for cell, state in self.cells.items() if state == CELL_COMMITTED
        }


def replay_state(records: Iterable[Mapping[str, Any]]) -> JournalState:
    """Fold a record stream into a :class:`JournalState`."""
    state = JournalState()
    for record in records:
        state.apply(record)
    return state


class CampaignJournal:
    """Cell-level WAL of one campaign: the :class:`Journal` plus the
    replayed state, kept in lockstep.

    Opening an existing file replays it first (this *is* ``--resume``);
    :meth:`begin` then verifies the configuration fingerprint before any
    new record is appended.  Transition appends are conditional on the
    replayed state, so resuming writes no duplicate records for work the
    previous incarnation already journalled.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        crash_after: int | None = None,
    ):
        self.path = Path(path)
        if self.path.exists():
            self.state = replay_state(read_records(self.path))
        else:
            self.state = JournalState()
        self._journal = Journal(self.path, fsync=fsync, crash_after=crash_after)

    # -- lifecycle ------------------------------------------------------
    def begin(
        self,
        *,
        topology_fp: str,
        seeds: int,
        timesteps: int | None,
        with_noise: bool,
    ) -> None:
        """Pin (or verify, on resume) the campaign configuration."""
        header = {
            "version": JOURNAL_VERSION,
            "topology": topology_fp,
            "seeds": seeds,
            "timesteps": timesteps,
            "with_noise": with_noise,
        }
        if self.state.header is not None:
            if self.state.header != header:
                raise JournalError(
                    f"{self.path}: journal was written by a differently-"
                    f"configured campaign (journal: {self.state.header!r}, "
                    f"this run: {header!r}) — resume with the original "
                    "configuration or start a fresh journal"
                )
            return
        self._append({"type": "campaign", **header})

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- transitions ----------------------------------------------------
    def cell_planned(
        self, benchmark: str, scheduler: str, keys: Iterable[str]
    ) -> None:
        if self.state.state_of(benchmark, scheduler) is None:
            self._cell(CELL_PLANNED, benchmark, scheduler, keys=list(keys))

    def cell_running(self, benchmark: str, scheduler: str) -> None:
        current = self.state.state_of(benchmark, scheduler)
        if current is None or _STATE_ORDER[current] < _STATE_ORDER[CELL_RUNNING]:
            self._cell(CELL_RUNNING, benchmark, scheduler)

    def cell_committed(
        self, benchmark: str, scheduler: str, keys: Iterable[str]
    ) -> None:
        """Record the commit point.  MUST be called only after every run
        of the cell is durably in the result cache (the commit protocol's
        ordering is what makes resume sound)."""
        if not self.is_committed(benchmark, scheduler):
            self._cell(CELL_COMMITTED, benchmark, scheduler, keys=list(keys))

    def checkpoint(self, reason: str) -> None:
        """Mark a clean stop (signal drain, campaign completion)."""
        self._append({"type": "checkpoint", "reason": reason})

    # -- queries --------------------------------------------------------
    def is_committed(self, benchmark: str, scheduler: str) -> bool:
        return self.state.state_of(benchmark, scheduler) == CELL_COMMITTED

    def committed_cells(self) -> set[tuple[str, str]]:
        return self.state.committed_cells()

    # -- plumbing -------------------------------------------------------
    def _cell(
        self,
        state: str,
        benchmark: str,
        scheduler: str,
        keys: list[str] | None = None,
    ) -> None:
        record: dict[str, Any] = {
            "type": "cell",
            "state": state,
            "benchmark": benchmark,
            "scheduler": scheduler,
        }
        if keys is not None:
            record["keys"] = keys
        self._append(record)

    def _append(self, record: dict[str, Any]) -> None:
        # keep the on-disk file and the in-memory replay in lockstep:
        # apply first (it validates), then write
        self.state.apply(record)
        self._journal.append(record)


def install_checkpoint_handlers(journal: CampaignJournal) -> None:
    """SIGTERM/SIGINT → journal a ``checkpoint`` record, then exit.

    The campaign's compute is synchronous, so the handler runs between
    bytecodes; ``SystemExit`` unwinds through the runner (releasing the
    journal handle via its context manager) and the process exits with
    the conventional ``128 + signum`` status.  The journalled work stays
    durable — rerunning with ``--resume`` picks up at the first
    uncommitted cell.
    """

    def _handler(signum: int, frame: FrameType | None) -> None:
        journal.checkpoint(signal.Signals(signum).name.lower())
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)
