"""Text rendering of figure/table results (what the benches print)."""

from __future__ import annotations

from repro.exp.figures import (
    OverheadRow,
    SpeedupRow,
    ThreadsRow,
    VariabilityRow,
    average_speedup,
)

__all__ = [
    "render_speedups",
    "render_threads",
    "render_overheads",
    "render_variability",
    "render_figure6",
]


def _rule(width: int = 72) -> str:
    return "-" * width


def render_speedups(title: str, rows: list[SpeedupRow]) -> str:
    lines = [title, _rule()]
    lines.append(
        f"{'benchmark':<10} {'baseline[s]':>12} {'sched[s]':>12} "
        f"{'speedup':>8} {'gain%':>7}"
    )
    for r in rows:
        lines.append(
            f"{r.benchmark:<10} {r.baseline_mean:>12.4f} {r.sched_mean:>12.4f} "
            f"{r.speedup:>8.3f} {r.percent:>+7.1f}"
        )
    lines.append(_rule())
    avg = average_speedup(rows)
    lines.append(f"{'geo-mean':<10} {'':>12} {'':>12} {avg:>8.3f} {(avg - 1) * 100:>+7.1f}")
    return "\n".join(lines)


def render_threads(title: str, rows: list[ThreadsRow]) -> str:
    lines = [title, _rule(48)]
    lines.append(f"{'benchmark':<10} {'avg threads':>12} {'of':>4}")
    for r in rows:
        lines.append(f"{r.benchmark:<10} {r.avg_threads:>12.1f} {r.max_threads:>4}")
    return "\n".join(lines)


def render_overheads(title: str, rows: list[OverheadRow]) -> str:
    lines = [title, _rule()]
    lines.append(
        f"{'benchmark':<10} {'baseline[ms]':>13} {'ilan[ms]':>10} {'normalized':>11}"
    )
    for r in rows:
        lines.append(
            f"{r.benchmark:<10} {r.baseline_overhead * 1e3:>13.3f} "
            f"{r.ilan_overhead * 1e3:>10.3f} {r.normalized:>11.3f}"
        )
    lines.append(_rule())
    lower = sum(1 for r in rows if r.normalized < 1.0)
    lines.append(f"ILAN overhead lower in {lower}/{len(rows)} benchmarks")
    return "\n".join(lines)


def render_variability(title: str, rows: list[VariabilityRow]) -> str:
    lines = [title, _rule()]
    lines.append(
        f"{'benchmark':<10} {'baseline std':>13} {'ilan std':>10} "
        f"{'base rel%':>10} {'ilan rel%':>10}"
    )
    for r in rows:
        lines.append(
            f"{r.benchmark:<10} {r.baseline_std:>13.4f} {r.ilan_std:>10.4f} "
            f"{r.baseline_rel_std * 100:>10.2f} {r.ilan_rel_std * 100:>10.2f}"
        )
    lines.append(_rule())
    lower = sum(1 for r in rows if r.ilan_std < r.baseline_std)
    lines.append(f"ILAN variance lower in {lower}/{len(rows)} benchmarks")
    return "\n".join(lines)


def render_figure6(rows_by_scheduler: dict[str, list[SpeedupRow]]) -> str:
    ilan = {r.benchmark: r for r in rows_by_scheduler["ilan"]}
    ws = {r.benchmark: r for r in rows_by_scheduler["worksharing"]}
    lines = ["Figure 6: ILAN and work-sharing vs baseline (speedup, higher is better)"]
    lines.append(_rule())
    lines.append(f"{'benchmark':<10} {'ilan':>8} {'worksharing':>12}")
    for bench in ilan:
        lines.append(
            f"{bench:<10} {ilan[bench].speedup:>8.3f} {ws[bench].speedup:>12.3f}"
        )
    lines.append(_rule())
    lines.append(
        f"{'geo-mean':<10} {average_speedup(list(ilan.values())):>8.3f} "
        f"{average_speedup(list(ws.values())):>12.3f}"
    )
    return "\n".join(lines)
