"""Statistical comparison of scheduler runs.

The paper reports 30-run means; a reproduction should also say whether a
difference is *significant*.  This module wraps Welch's unequal-variance
t-test (via scipy) for pairs of run-time samples and renders a compact
verdict per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ExperimentError
from repro.exp.runner import CellResult

__all__ = ["Comparison", "compare_samples", "compare_cells", "render_comparisons"]

DEFAULT_ALPHA = 0.05


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing scheduler B against baseline A."""

    label: str
    mean_a: float
    mean_b: float
    speedup: float  # mean_a / mean_b, > 1 means B faster
    t_statistic: float
    p_value: float
    significant: bool

    @property
    def verdict(self) -> str:
        if not self.significant:
            return "no significant difference"
        return "B faster" if self.speedup > 1.0 else "B slower"


def compare_samples(
    a: list[float] | np.ndarray,
    b: list[float] | np.ndarray,
    *,
    label: str = "",
    alpha: float = DEFAULT_ALPHA,
) -> Comparison:
    """Welch's t-test on two run-time samples (A = baseline, B = candidate)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ExperimentError("need at least two runs per side to compare")
    if not (0.0 < alpha < 1.0):
        raise ExperimentError(f"alpha must lie in (0, 1), got {alpha}")
    if np.allclose(a, a[0]) and np.allclose(b, b[0]):
        # degenerate zero-variance samples (deterministic runs): decide by
        # the means directly
        equal = np.isclose(a[0], b[0])
        return Comparison(
            label=label,
            mean_a=float(a.mean()),
            mean_b=float(b.mean()),
            speedup=float(a.mean() / b.mean()),
            t_statistic=0.0 if equal else np.inf,
            p_value=1.0 if equal else 0.0,
            significant=not equal,
        )
    t, p = stats.ttest_ind(a, b, equal_var=False)
    return Comparison(
        label=label,
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        speedup=float(a.mean() / b.mean()),
        t_statistic=float(t),
        p_value=float(p),
        significant=bool(p < alpha),
    )


def compare_cells(
    baseline: CellResult, candidate: CellResult, *, alpha: float = DEFAULT_ALPHA
) -> Comparison:
    """Compare two (benchmark, scheduler) cells of an experiment campaign."""
    if baseline.benchmark != candidate.benchmark:
        raise ExperimentError(
            f"cells compare different benchmarks: {baseline.benchmark} vs "
            f"{candidate.benchmark}"
        )
    return compare_samples(
        baseline.times,
        candidate.times,
        label=f"{baseline.benchmark}: {candidate.scheduler} vs {baseline.scheduler}",
        alpha=alpha,
    )


def render_comparisons(title: str, comparisons: list[Comparison]) -> str:
    """Text table of comparison outcomes."""
    lines = [title, "-" * 78]
    lines.append(
        f"{'comparison':<34} {'speedup':>8} {'p-value':>9} {'verdict':>24}"
    )
    for c in comparisons:
        lines.append(
            f"{c.label:<34} {c.speedup:>8.3f} {c.p_value:>9.2g} {c.verdict:>24}"
        )
    return "\n".join(lines)
