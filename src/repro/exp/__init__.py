"""Experiment harness: runners, statistics, figures/tables, timelines, persistence."""

from repro.exp.compare import (
    Comparison,
    compare_cells,
    compare_samples,
    render_comparisons,
)
from repro.exp.figures import (
    PAPER_EXPECTATIONS,
    OverheadRow,
    SpeedupRow,
    ThreadsRow,
    VariabilityRow,
    average_speedup,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
)
from repro.exp.persistence import (
    load_results,
    results_to_dict,
    rows_to_dicts,
    save_results,
)
from repro.exp.report import (
    render_figure6,
    render_overheads,
    render_speedups,
    render_threads,
    render_variability,
)
from repro.exp.runner import (
    CellResult,
    ExperimentConfig,
    Runner,
    default_noise,
    shared_runner,
)
from repro.exp.stats import Summary, geo_mean, percent, speedup, summarize
from repro.exp.timeline import render_node_utilisation, render_taskloop_timeline

__all__ = [
    "Comparison",
    "compare_cells",
    "compare_samples",
    "render_comparisons",
    "PAPER_EXPECTATIONS",
    "OverheadRow",
    "SpeedupRow",
    "ThreadsRow",
    "VariabilityRow",
    "average_speedup",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table1",
    "render_figure6",
    "render_overheads",
    "render_speedups",
    "render_threads",
    "render_variability",
    "CellResult",
    "ExperimentConfig",
    "Runner",
    "default_noise",
    "shared_runner",
    "Summary",
    "geo_mean",
    "percent",
    "speedup",
    "summarize",
    "load_results",
    "results_to_dict",
    "rows_to_dicts",
    "save_results",
    "render_node_utilisation",
    "render_taskloop_timeline",
]
