"""Command-line entry point: ``repro-exp <figure> [options]``.

Examples::

    repro-exp fig2 --seeds 30
    repro-exp table1 --seeds 30 --timesteps 50
    repro-exp all --seeds 10 --jobs 8            # parallel campaign
    repro-exp all --seeds 30 --cache-dir .cache  # warm/reuse a run cache
    repro-exp fig2 --no-cache                    # force re-simulation

Campaign runs are cached on disk by default (under ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``), keyed by the full run configuration; re-running a
figure re-simulates nothing unless the configuration changed.
"""

from __future__ import annotations

import argparse
import sys

from repro.exp.cache import default_cache_dir
from repro.exp.figures import figure2, figure3, figure4, figure5, figure6, table1
from repro.exp.report import (
    render_figure6,
    render_overheads,
    render_speedups,
    render_threads,
    render_variability,
)
from repro.exp.runner import ExperimentConfig, Runner
from repro.topology.hwloc import parse_topology
from repro.topology.machine import MachineTopology
from repro.topology.presets import dual_socket_small, single_node, tiny_two_node, zen4_9354
from repro.workloads.registry import PAPER_ORDER

__all__ = ["main"]

_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig5", "fig6", "table1", "all")

# scheduler cells each experiment consumes — used to prefetch everything a
# campaign needs in one parallel fan-out before any figure renders
_EXPERIMENT_SCHEDULERS = {
    "fig2": ("baseline", "ilan"),
    "fig3": ("ilan",),
    "fig4": ("baseline", "ilan-nomold"),
    "fig5": ("baseline", "ilan"),
    "fig6": ("baseline", "ilan", "worksharing"),
    "table1": ("baseline", "ilan"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the ILAN paper's evaluation figures/tables "
        "on the simulated NUMA platform.",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS, help="which artefact to run")
    parser.add_argument("--seeds", type=int, default=None, help="repetitions per cell (paper: 30)")
    parser.add_argument("--timesteps", type=int, default=None, help="application timesteps override")
    parser.add_argument("--no-noise", action="store_true", help="disable external system noise")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the campaign's runs (default: $REPRO_JOBS "
        "or 1); results are identical for any N",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent run-cache directory (default: $REPRO_CACHE_DIR or "
        f"{default_cache_dir()}); completed runs are reused across invocations",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent run cache (every run is re-simulated)",
    )
    parser.add_argument(
        "--machine",
        default="zen4",
        help="machine model: a preset (zen4, small, tiny, uma) or a path "
        "to an hwloc-style topology file (default: the paper's 64-core Zen 4)",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="write the campaign's cell summaries as JSON after the run",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        choices=PAPER_ORDER,
        default=None,
        help="subset of benchmarks (default: all seven)",
    )
    return parser


def run_experiment(name: str, runner: Runner, benchmarks: list[str] | None) -> str:
    """Run one named experiment; returns the rendered report."""
    if name == "fig2":
        return render_speedups(
            "Figure 2: ILAN vs baseline (speedup, higher is better)",
            figure2(runner, benchmarks),
        )
    if name == "fig3":
        return render_threads(
            "Figure 3: weighted average threads selected by ILAN",
            figure3(runner, benchmarks),
        )
    if name == "fig4":
        return render_speedups(
            "Figure 4: ILAN without moldability vs baseline",
            figure4(runner, benchmarks),
        )
    if name == "fig5":
        return render_overheads(
            "Figure 5: accumulated scheduling overhead (normalized, lower is better)",
            figure5(runner, benchmarks),
        )
    if name == "fig6":
        return render_figure6(figure6(runner, benchmarks))
    if name == "table1":
        return render_variability(
            "Table 1: execution-time standard deviation",
            table1(runner, benchmarks),
        )
    raise ValueError(f"unknown experiment {name!r}")  # pragma: no cover


def _resolve_machine(spec: str) -> MachineTopology:
    """A preset name or an hwloc-style topology file path."""
    presets = {
        "zen4": zen4_9354,
        "small": dual_socket_small,
        "tiny": tiny_two_node,
        "uma": single_node,
    }
    factory = presets.get(spec)
    if factory is not None:
        return factory()
    from pathlib import Path

    path = Path(spec)
    if not path.exists():
        known = ", ".join(sorted(presets))
        raise SystemExit(
            f"unknown machine {spec!r}: not a preset ({known}) nor a topology file"
        )
    return parse_topology(path.read_text())


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    env_cfg = ExperimentConfig.from_env()
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = str(args.cache_dir or env_cfg.cache_dir or default_cache_dir())
    cfg = ExperimentConfig(
        seeds=args.seeds if args.seeds is not None else env_cfg.seeds,
        timesteps=args.timesteps if args.timesteps is not None else env_cfg.timesteps,
        with_noise=not args.no_noise,
        jobs=args.jobs if args.jobs is not None else env_cfg.jobs,
        cache_dir=cache_dir,
    )
    runner = Runner(cfg, topology=_resolve_machine(args.machine))
    names = [args.experiment] if args.experiment != "all" else list(_EXPERIMENTS[:-1])
    schedulers = sorted({s for n in names for s in _EXPERIMENT_SCHEDULERS[n]})
    runner.prefetch(args.benchmarks or list(PAPER_ORDER), schedulers)
    for name in names:
        print(run_experiment(name, runner, args.benchmarks))
        print()
    if runner.cache is not None:
        st = runner.cache.stats
        print(
            f"run cache ({runner.cache.root}): {st.hits} hit(s), "
            f"{st.misses} miss(es), {st.stores} new run(s) stored"
        )
    if args.save:
        from repro.exp.persistence import results_to_dict, save_results

        save_results(args.save, results_to_dict(runner))
        print(f"saved cell summaries to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
