"""Command-line entry point: ``repro-exp <figure> [options]``.

Examples::

    repro-exp fig2 --seeds 30
    repro-exp table1 --seeds 30 --timesteps 50
    repro-exp all --seeds 10 --jobs 8            # parallel campaign
    repro-exp all --seeds 30 --cache-dir .cache  # warm/reuse a run cache
    repro-exp fig2 --no-cache                    # force re-simulation

Campaign runs are cached on disk by default (under ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``), keyed by the full run configuration; re-running a
figure re-simulates nothing unless the configuration changed.
"""

from __future__ import annotations

import argparse
import sys

from repro.exp.cliopts import (
    add_campaign_arguments,
    add_journal_arguments,
    add_machine_argument,
    config_from_args,
    journal_from_args,
    resolve_machine,
)
from repro.exp.journal import install_checkpoint_handlers
from repro.exp.figures import figure2, figure3, figure4, figure5, figure6, table1
from repro.exp.report import (
    render_figure6,
    render_overheads,
    render_speedups,
    render_threads,
    render_variability,
)
from repro.exp.runner import Runner
from repro.workloads.registry import PAPER_ORDER

__all__ = ["main"]

_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig5", "fig6", "table1", "all")

# scheduler cells each experiment consumes — used to prefetch everything a
# campaign needs in one parallel fan-out before any figure renders
_EXPERIMENT_SCHEDULERS = {
    "fig2": ("baseline", "ilan"),
    "fig3": ("ilan",),
    "fig4": ("baseline", "ilan-nomold"),
    "fig5": ("baseline", "ilan"),
    "fig6": ("baseline", "ilan", "worksharing"),
    "table1": ("baseline", "ilan"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the ILAN paper's evaluation figures/tables "
        "on the simulated NUMA platform.",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS, help="which artefact to run")
    add_campaign_arguments(parser)
    add_journal_arguments(parser)
    add_machine_argument(parser)
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="write the campaign's cell summaries as JSON after the run",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        choices=PAPER_ORDER,
        default=None,
        help="subset of benchmarks (default: all seven)",
    )
    return parser


def run_experiment(name: str, runner: Runner, benchmarks: list[str] | None) -> str:
    """Run one named experiment; returns the rendered report."""
    if name == "fig2":
        return render_speedups(
            "Figure 2: ILAN vs baseline (speedup, higher is better)",
            figure2(runner, benchmarks),
        )
    if name == "fig3":
        return render_threads(
            "Figure 3: weighted average threads selected by ILAN",
            figure3(runner, benchmarks),
        )
    if name == "fig4":
        return render_speedups(
            "Figure 4: ILAN without moldability vs baseline",
            figure4(runner, benchmarks),
        )
    if name == "fig5":
        return render_overheads(
            "Figure 5: accumulated scheduling overhead (normalized, lower is better)",
            figure5(runner, benchmarks),
        )
    if name == "fig6":
        return render_figure6(figure6(runner, benchmarks))
    if name == "table1":
        return render_variability(
            "Table 1: execution-time standard deviation",
            table1(runner, benchmarks),
        )
    raise ValueError(f"unknown experiment {name!r}")  # pragma: no cover


# kept as an alias: the machine resolver now lives in repro.exp.cliopts
_resolve_machine = resolve_machine


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    cfg = config_from_args(args)
    if (args.journal or args.resume) and cfg.cache_dir is None:
        raise SystemExit(
            "--journal/--resume require the run cache (committed cells are "
            "reloaded from it on resume); drop --no-cache"
        )
    journal = journal_from_args(args)
    if journal is not None:
        install_checkpoint_handlers(journal)
        if journal.committed_cells():
            print(
                f"resuming from {journal.path}: "
                f"{len(journal.committed_cells())} cell(s) already committed"
            )
    runner = Runner(cfg, topology=resolve_machine(args.machine), journal=journal)
    names = [args.experiment] if args.experiment != "all" else list(_EXPERIMENTS[:-1])
    schedulers = sorted({s for n in names for s in _EXPERIMENT_SCHEDULERS[n]})
    runner.prefetch(args.benchmarks or list(PAPER_ORDER), schedulers)
    for name in names:
        print(run_experiment(name, runner, args.benchmarks))
        print()
    if runner.cache is not None:
        st = runner.cache.stats
        print(
            f"run cache ({runner.cache.root}): {st.hits} hit(s), "
            f"{st.misses} miss(es), {st.stores} new run(s) stored"
        )
    if args.save:
        from repro.exp.persistence import results_to_dict, save_results

        save_results(args.save, results_to_dict(runner))
        print(f"saved cell summaries to {args.save}")
    if journal is not None:
        journal.checkpoint("complete")
        journal.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
