"""Persistent content-addressed cache of experiment runs.

A campaign is a set of independent (benchmark, scheduler, seed) runs, each
fully determined by its configuration: the simulator draws every random
number from seed-derived Philox substreams (:mod:`repro.sim.rng`), so the
same configuration always produces the same :class:`AppRunResult`.  That
makes runs content-addressable — this module hashes the *complete* run
configuration (topology structure, scheduler name + parameters, workload,
noise parameters, timesteps, seed, and a schema version) into a key and
stores the serialised result under it, one JSON file per run.

Guarantees:

* **losslessness** — floats round-trip through JSON via Python's
  shortest-repr encoding, so a decoded run is bit-identical to the
  original (NaN entries in per-node arrays included);
* **atomicity** — entries go through :func:`repro.ioutil.atomic_write`
  (tmp file + fsync + rename), so a crash mid-write never leaves a
  readable half-entry;
* **integrity** — every entry is framed as a header line carrying the
  SHA-256 of the exact payload bytes that follow; a read verifies it, so
  a flipped or truncated byte *anywhere* in the file is detected;
* **self-healing via quarantine** — a corrupt, mismatched or
  stale-schema entry is moved aside into ``<root>/quarantine/`` (kept
  for forensics, never served) and the run is transparently recomputed
  rather than crashing or returning garbage.

Bump :data:`SCHEMA_VERSION` whenever the simulator's observable behaviour
or the serialisation format changes; old entries then miss and are
recomputed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.counters.metrics import TaskloopCounters
from repro.interference.noise import NoiseParams
from repro.ioutil import atomic_write
from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import AppRunResult, TaskloopResult
from repro.topology.machine import MachineTopology

__all__ = [
    "SCHEMA_VERSION",
    "QUARANTINE_DIR",
    "ResultCache",
    "CacheStats",
    "default_cache_dir",
    "topology_fingerprint",
    "run_key",
    "encode_run",
    "decode_run",
    "run_to_json",
]

#: Bump when simulator behaviour or the entry format changes; every cached
#: entry carrying an older version is invalidated on read.  v2: framed
#: header + SHA-256 payload checksum (crash-safe durability PR).
SCHEMA_VERSION = 2


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "runs"


# ----------------------------------------------------------------------
# content hashing
# ----------------------------------------------------------------------
def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def topology_fingerprint(topology: MachineTopology) -> str:
    """Hash of everything about a machine that can influence a run.

    Two topologies with the same fingerprint are structurally identical:
    same component tree, core speeds, cache sizes, memory sizes and
    bandwidths.  (The machine *name* is deliberately excluded — renaming a
    preset must not invalidate its runs.)
    """
    payload = {
        "sockets": [dataclasses.asdict(s) for s in topology.sockets],
        "nodes": [dataclasses.asdict(n) for n in topology.nodes],
        "ccds": [dataclasses.asdict(c) for c in topology.ccds],
        "cores": [dataclasses.asdict(c) for c in topology.cores],
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def run_key(
    *,
    benchmark: str,
    scheduler: str,
    seed: int,
    timesteps: int | None,
    noise: NoiseParams | None,
    topology: MachineTopology | str,
    scheduler_params: Mapping[str, Any] | None = None,
) -> str:
    """Content hash addressing one (benchmark, scheduler, seed) run.

    ``topology`` accepts a pre-computed fingerprint string so callers
    hashing many runs on one machine pay for :func:`topology_fingerprint`
    once.
    """
    topo_fp = (
        topology if isinstance(topology, str) else topology_fingerprint(topology)
    )
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "scheduler": scheduler,
        "scheduler_params": dict(scheduler_params or {}),
        "seed": seed,
        "timesteps": timesteps,
        "noise": dataclasses.asdict(noise) if noise is not None else None,
        "topology": topo_fp,
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# run (de)serialisation
# ----------------------------------------------------------------------
def _encode_counters(c: TaskloopCounters | None) -> dict[str, Any] | None:
    if c is None:
        return None
    return {
        "uid": c.uid,
        "elapsed": c.elapsed,
        "sat_time_integral": c.sat_time_integral,
        "peak_saturation": c.peak_saturation,
        "bytes_total": c.bytes_total,
        "bytes_remote": c.bytes_remote,
        "busy_time": c.busy_time,
        "idle_time": c.idle_time,
    }


def _decode_counters(d: dict[str, Any] | None) -> TaskloopCounters | None:
    return None if d is None else TaskloopCounters(**d)


_LEDGER_FIELDS = (
    "task_create",
    "dequeue",
    "steal_local",
    "steal_remote",
    "steal_fail",
    "barrier",
    "fork",
    "select",
    "ptt_update",
)


def _encode_ledger(ledger: OverheadLedger) -> dict[str, Any]:
    d: dict[str, Any] = {name: getattr(ledger, name) for name in _LEDGER_FIELDS}
    d["counts"] = dict(ledger.counts)
    return d


def _decode_ledger(d: dict[str, Any]) -> OverheadLedger:
    return OverheadLedger(**{**d, "counts": dict(d["counts"])})


def _encode_taskloop(r: TaskloopResult) -> dict[str, Any]:
    return {
        "uid": r.uid,
        "name": r.name,
        "elapsed": r.elapsed,
        "num_threads": r.num_threads,
        "node_mask_bits": r.node_mask_bits,
        "steal_policy": r.steal_policy,
        "overhead": _encode_ledger(r.overhead),
        "node_perf": [float(x) for x in r.node_perf],
        "node_busy": [float(x) for x in r.node_busy],
        "tasks_executed": r.tasks_executed,
        "steals_local": r.steals_local,
        "steals_remote": r.steals_remote,
        "counters": _encode_counters(r.counters),
    }


def _decode_taskloop(d: dict[str, Any]) -> TaskloopResult:
    return TaskloopResult(
        uid=d["uid"],
        name=d["name"],
        elapsed=d["elapsed"],
        num_threads=d["num_threads"],
        node_mask_bits=d["node_mask_bits"],
        steal_policy=d["steal_policy"],
        overhead=_decode_ledger(d["overhead"]),
        node_perf=np.asarray(d["node_perf"], dtype=np.float64),
        node_busy=np.asarray(d["node_busy"], dtype=np.float64),
        tasks_executed=d["tasks_executed"],
        steals_local=d["steals_local"],
        steals_remote=d["steals_remote"],
        counters=_decode_counters(d["counters"]),
    )


def encode_run(result: AppRunResult) -> dict[str, Any]:
    """JSON-ready dict capturing an :class:`AppRunResult` losslessly."""
    return {
        "app_name": result.app_name,
        "scheduler": result.scheduler,
        "seed": result.seed,
        "total_time": result.total_time,
        "taskloops": [_encode_taskloop(r) for r in result.taskloops],
    }


def decode_run(data: dict[str, Any]) -> AppRunResult:
    """Inverse of :func:`encode_run`."""
    return AppRunResult(
        app_name=data["app_name"],
        scheduler=data["scheduler"],
        seed=data["seed"],
        total_time=data["total_time"],
        taskloops=[_decode_taskloop(d) for d in data["taskloops"]],
    )


def run_to_json(result: AppRunResult) -> str:
    """Canonical JSON text of a run — equal strings mean identical runs.

    This is the byte-identity the determinism tests compare: NaN entries
    serialise to the literal ``NaN`` token, so two runs differing only in
    NaN positions still compare correctly as text.
    """
    return _canonical(encode_run(result))


# ----------------------------------------------------------------------
# the on-disk store
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


#: Subdirectory (under the cache root) holding entries that failed
#: verification.  Longer than two characters, so :meth:`ResultCache.keys`'s
#: ``??/*.json`` glob can never pick quarantined files back up.
QUARANTINE_DIR = "quarantine"


def _encode_entry(key: str, result: AppRunResult) -> bytes:
    """Frame one entry: header line + exact payload bytes it checksums.

    The header's ``sha256`` covers the *raw payload bytes*, not their
    parsed meaning — that is what makes single-byte corruption at any
    offset detectable (a semantic checksum would forgive JSON-equivalent
    mutations and, worse, cost a re-encode per read).
    """
    payload = run_to_json(result).encode("utf-8")
    header = _canonical(
        {
            "schema": SCHEMA_VERSION,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
    ).encode("utf-8")
    return header + b"\n" + payload


def _decode_entry(key: str, raw: bytes) -> AppRunResult:
    """Verify and decode one framed entry; raises ``ValueError``/
    ``KeyError``/``TypeError`` on any damage (all roads lead to
    quarantine)."""
    newline = raw.find(b"\n")
    if newline < 0:
        raise ValueError("cache entry has no header/payload frame")
    header = json.loads(raw[:newline])
    if header["schema"] != SCHEMA_VERSION:
        raise ValueError("stale cache entry schema")
    if header["key"] != key:
        raise ValueError("cache entry stored under the wrong key")
    payload = raw[newline + 1 :]
    if hashlib.sha256(payload).hexdigest() != header["sha256"]:
        raise ValueError("cache entry payload fails its checksum")
    return decode_run(json.loads(payload))


class ResultCache:
    """One-file-per-run store addressed by :func:`run_key` hashes.

    Entries live two directory levels deep (``ab/abcdef....json``) to keep
    directories small at paper scale.  All operations are safe against
    concurrent writers of the *same* key: both write identical content and
    ``os.replace`` is atomic.

    ``fsync=False`` (tests only) skips the durability flush on writes;
    framing, checksums and quarantine behave identically.
    """

    def __init__(self, root: str | Path, *, fsync: bool = True):
        self.root = Path(root)
        self.stats = CacheStats()
        self._fsync = fsync

    # -- paths ----------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- operations -----------------------------------------------------
    def get(self, key: str) -> AppRunResult | None:
        """The cached run under ``key``, or ``None`` on miss.

        An entry that fails verification — torn frame, checksum mismatch,
        wrong key, stale schema — counts as a miss and is *quarantined*
        (moved under :attr:`quarantine_root`), never served; the caller
        recomputes and the slot is free for the fresh entry.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        try:
            result = _decode_entry(key, raw)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: AppRunResult) -> Path:
        """Atomically and durably persist ``result`` under ``key``."""
        path = self.path_for(key)
        atomic_write(path, _encode_entry(key, result), fsync=self._fsync)
        self.stats.stores += 1
        return path

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside (kept for forensics, definitely unserved).

        Falls back to deletion if the move itself fails — a bad entry must
        never remain at its addressable path.
        """
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_root / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_root / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.invalidated += 1

    def quarantined_files(self) -> list[Path]:
        """Every quarantined entry currently on disk (sorted)."""
        if not self.quarantine_root.is_dir():
            return []
        return sorted(p for p in self.quarantine_root.iterdir() if p.is_file())

    # -- maintenance ----------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of every entry currently on disk."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
