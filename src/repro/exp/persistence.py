"""Persist experiment results as JSON.

Experiment campaigns are cheap to re-run but the figure tables belong in
version control (EXPERIMENTS.md is generated from them); this module
serialises :class:`CellResult` summaries and figure rows to plain JSON and
loads them back, so reports can be regenerated without re-simulation.

Floats are written with Python's shortest-repr JSON encoding, which
round-trips ``float64`` exactly — the golden-trace regression fixtures
under ``tests/exp/fixtures/`` rely on this to compare campaigns for exact
equality.  (The raw per-run records live in the content-addressed run
cache instead; see :mod:`repro.exp.cache`.)
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.exp.figures import OverheadRow, SpeedupRow, ThreadsRow, VariabilityRow
from repro.exp.runner import Runner
from repro.ioutil import atomic_write

__all__ = [
    "RESULTS_SCHEMA_VERSION",
    "results_to_dict",
    "save_results",
    "load_results",
    "rows_to_dicts",
]

#: Version tag stamped into campaign summary payloads.
RESULTS_SCHEMA_VERSION = 1

_ROW_TYPES = {
    "SpeedupRow": SpeedupRow,
    "ThreadsRow": ThreadsRow,
    "OverheadRow": OverheadRow,
    "VariabilityRow": VariabilityRow,
}


def rows_to_dicts(rows: list[Any]) -> list[dict[str, Any]]:
    """Figure rows -> JSON-ready dicts (with a type tag for loading)."""
    out = []
    for row in rows:
        if not dataclasses.is_dataclass(row):
            raise ExperimentError(f"cannot serialise non-dataclass row {type(row).__name__}")
        d = dataclasses.asdict(row)
        d["__type__"] = type(row).__name__
        out.append(d)
    return out


def _dicts_to_rows(dicts: list[dict[str, Any]]) -> list[Any]:
    rows = []
    for d in dicts:
        d = dict(d)
        type_name = d.pop("__type__", None)
        cls = _ROW_TYPES.get(type_name)
        if cls is None:
            raise ExperimentError(f"unknown row type {type_name!r}")
        rows.append(cls(**d))
    return rows


def results_to_dict(runner: Runner) -> dict[str, Any]:
    """Summarise every cached cell of ``runner``.

    Besides the aggregate statistics each cell carries its per-run seeds
    and execution times, so a stored campaign pins results run-by-run —
    any simulator change that shifts a single run is detectable.
    """
    cells = []
    for (bench, sched), cell in sorted(runner.cached_cells().items()):
        s = cell.summary()
        o = cell.overhead_summary()
        cells.append(
            {
                "benchmark": bench,
                "scheduler": sched,
                "runs": s.n,
                "seeds": cell.seeds,
                "times": cell.times,
                "time_mean": s.mean,
                "time_std": s.std,
                "time_min": s.min,
                "time_max": s.max,
                "overhead_mean": o.mean,
                "weighted_threads_mean": cell.weighted_threads().mean,
            }
        )
    return {
        "schema": RESULTS_SCHEMA_VERSION,
        "config": {
            "seeds": runner.config.seeds,
            "timesteps": runner.config.timesteps,
            "with_noise": runner.config.with_noise,
        },
        "machine": runner.topology.describe(),
        "cells": cells,
    }


def save_results(path: str | Path, payload: dict[str, Any] | list[Any]) -> Path:
    """Write a results payload (dict or figure-row list) as JSON.

    The write is atomic (tmp file + fsync + rename): a crash mid-save
    leaves either the previous file or the new one, never a torn JSON.
    """
    path = Path(path)
    if isinstance(payload, list):
        payload = {"rows": rows_to_dicts(payload)}
    return atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_results(path: str | Path) -> dict[str, Any] | list[Any]:
    """Load a payload written by :func:`save_results`.

    Row lists come back as the original dataclass rows.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and set(data) == {"rows"}:
        return _dicts_to_rows(data["rows"])
    return data
