"""ASCII execution timelines from run traces.

Renders a per-core Gantt view of one taskloop execution (which core ran
which chunk, when, and whether it was stolen) plus per-node utilisation
bars — the visual counterpart of the scheduling decisions the schedulers
make.  Works from a :class:`repro.sim.trace.Trace` recorded with
``OpenMPRuntime(..., trace=True)``.
"""

from __future__ import annotations

import math

from repro.errors import ExperimentError
from repro.sim.engine import DUE_ABS_TOL, DUE_REL_TOL
from repro.sim.trace import TaskRecord, Trace
from repro.topology.machine import MachineTopology

__all__ = ["render_taskloop_timeline", "render_node_utilisation"]


def _select_execution(trace: Trace, uid: str, occurrence: int) -> tuple[float, float]:
    loops = [r for r in trace.taskloops if r.taskloop == uid]
    if not loops:
        raise ExperimentError(f"trace holds no executions of {uid!r}")
    if not (0 <= occurrence < len(loops)):
        raise ExperimentError(
            f"occurrence {occurrence} out of range; trace holds {len(loops)} executions"
        )
    rec = loops[occurrence]
    return rec.start, rec.end


def _at_or_after(t: float, bound: float) -> bool:
    """``t >= bound`` with the relative ``DUE_REL_TOL`` idiom: timestamps
    a few ulps apart (accumulated-float noise) count as simultaneous at
    any magnitude of simulated time, so boundary tasks are never dropped
    from long-run timelines."""
    return t >= bound or math.isclose(t, bound, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL)


def _tasks_in_window(trace: Trace, uid: str, start: float, end: float) -> list[TaskRecord]:
    return [
        t
        for t in trace.tasks
        if t.taskloop == uid
        and _at_or_after(t.start, start)
        and _at_or_after(end, t.end)
    ]


def render_taskloop_timeline(
    trace: Trace,
    topology: MachineTopology,
    uid: str,
    *,
    occurrence: int = 0,
    width: int = 72,
) -> str:
    """Per-core Gantt chart of one taskloop execution.

    Each row is a core; ``#`` marks time executing locally-acquired
    chunks, ``s`` stolen ones, ``.`` idle time inside the taskloop window.
    Cores are grouped by NUMA node.
    """
    if width < 16:
        raise ExperimentError("timeline width must be at least 16 columns")
    start, end = _select_execution(trace, uid, occurrence)
    span = end - start
    if span <= 0:
        raise ExperimentError("taskloop execution has zero span")
    tasks = _tasks_in_window(trace, uid, start, end)

    def col(t: float) -> int:
        return min(int((t - start) / span * width), width - 1)

    rows: dict[int, list[str]] = {c: ["."] * width for c in topology.core_ids()}
    for task in tasks:
        mark = "s" if task.stolen else "#"
        for x in range(col(task.start), col(task.end) + 1):
            rows[task.core][x] = mark

    lines = [
        f"timeline of {uid!r} (execution {occurrence}): "
        f"{span * 1e3:.2f} ms, {len(tasks)} tasks",
        f"{'core':>6} |{'-' * width}|",
    ]
    for node in topology.node_ids():
        lines.append(f"node {node}")
        for core in topology.cores_of_node(node):
            lines.append(f"{core:>6} |{''.join(rows[core])}|")
    lines.append("legend: '#' own task, 's' stolen task, '.' idle")
    return "\n".join(lines)


def render_node_utilisation(
    trace: Trace,
    topology: MachineTopology,
    uid: str,
    *,
    occurrence: int = 0,
    width: int = 40,
) -> str:
    """Per-node busy-time share during one taskloop execution."""
    start, end = _select_execution(trace, uid, occurrence)
    span = end - start
    tasks = _tasks_in_window(trace, uid, start, end)
    busy = {n: 0.0 for n in topology.node_ids()}
    for task in tasks:
        busy[task.node] += task.end - task.start
    lines = [f"node utilisation of {uid!r} (execution {occurrence}):"]
    for node in topology.node_ids():
        capacity = span * len(topology.cores_of_node(node))
        frac = busy[node] / capacity if capacity > 0 else 0.0
        bar = "#" * int(round(frac * width))
        lines.append(f"  node {node}: {frac * 100:5.1f}% |{bar:<{width}}|")
    return "\n".join(lines)
