"""Shared command-line options for experiment campaigns.

``repro-exp`` (:mod:`repro.exp.cli`), ``scripts/run_experiments.py`` and
the service CLIs all drive the same :class:`~repro.exp.runner.Runner`, so
they share one flag vocabulary.  This module is the single definition of
those flags (:func:`add_campaign_arguments`), of the argument→config
merge against the ``REPRO_*`` environment (:func:`config_from_args`), and
of machine-spec resolution (:func:`resolve_machine`).
"""

from __future__ import annotations

import argparse
import os

from repro.exp.cache import default_cache_dir
from repro.exp.journal import CampaignJournal
from repro.exp.runner import ExperimentConfig
from repro.runtime.context import ENGINES
from repro.topology.hwloc import parse_topology
from repro.topology.machine import MachineTopology
from repro.topology.presets import (
    dual_socket_small,
    single_node,
    tiny_two_node,
    zen4_9354,
)

__all__ = [
    "MACHINE_PRESETS",
    "add_campaign_arguments",
    "add_journal_arguments",
    "config_from_args",
    "journal_from_args",
    "resolve_machine",
    "add_machine_argument",
]

MACHINE_PRESETS = {
    "zen4": zen4_9354,
    "small": dual_socket_small,
    "tiny": tiny_two_node,
    "uma": single_node,
}


def add_campaign_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the campaign-shape and execution flags every runner CLI takes.

    All defaults are ``None``/off so :func:`config_from_args` can fall back
    to the ``REPRO_*`` environment knobs without double-reading them.
    """
    parser.add_argument(
        "--seeds", type=int, default=None, help="repetitions per cell (paper: 30)"
    )
    parser.add_argument(
        "--timesteps", type=int, default=None, help="application timesteps override"
    )
    parser.add_argument(
        "--no-noise", action="store_true", help="disable external system noise"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the campaign's runs (default: $REPRO_JOBS "
        "or 1); results are identical for any N",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent run-cache directory (default: $REPRO_CACHE_DIR or "
        f"{default_cache_dir()}); completed runs are reused across invocations",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent run cache (every run is re-simulated)",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=None,
        help="slowdown recompute engine (default: $REPRO_ENGINE or "
        "'reference'); 'incremental' is byte-identical and faster",
    )
    parser.add_argument(
        "--asym-spec",
        metavar="SPEC",
        default=None,
        help="dynamic-asymmetry timeline: a preset (dvfs, throttle, "
        "cotenant, offline, mix, harsh), 'preset:key=value,...' overrides, "
        "or raw 'key=value,...' fields; 'none' disables (default: "
        "$REPRO_ASYM_SPEC or no asymmetry)",
    )
    parser.add_argument(
        "--asym-seed",
        type=int,
        default=None,
        metavar="N",
        help="dedicated seed for the asymmetry timeline (default: "
        "$REPRO_ASYM_SEED or derived from each run's seed)",
    )
    return parser


def add_journal_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """The durability flags: ``--journal`` records, ``--resume`` replays.

    Both name the same write-ahead journal file; ``--resume`` insists it
    already exists (catching a typo'd path before silently starting a
    fresh campaign), while ``--journal`` creates it on first use.
    """
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="record cell planned/running/committed transitions to an "
        "append-only write-ahead journal (crash-safe; see --resume)",
    )
    group.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume an interrupted campaign from its journal: committed "
        "cells are skipped (their runs reload from the cache) and output "
        "is byte-identical to an uninterrupted run",
    )
    return parser


def journal_from_args(args: argparse.Namespace) -> CampaignJournal | None:
    """Open the campaign journal named by ``--journal``/``--resume``.

    ``REPRO_CRASH_AFTER_JOURNAL_RECORDS=N`` arms the crash-injection seam
    (the process SIGKILLs itself after the N-th durable append) — used by
    ``scripts/crash_smoke.py`` and the crash-resume tests, harmless to
    set by hand if you enjoy watching campaigns die.
    """
    path = getattr(args, "journal", None) or getattr(args, "resume", None)
    if path is None:
        return None
    if getattr(args, "resume", None) is not None and not os.path.exists(path):
        raise SystemExit(f"--resume {path}: journal file does not exist")
    crash_env = os.environ.get("REPRO_CRASH_AFTER_JOURNAL_RECORDS")
    crash_after = None
    if crash_env:
        try:
            crash_after = int(crash_env)
        except ValueError:
            raise SystemExit(
                f"REPRO_CRASH_AFTER_JOURNAL_RECORDS={crash_env!r}: expected "
                "an integer (the journal-append count to SIGKILL after)"
            ) from None
    return CampaignJournal(path, crash_after=crash_after)


def add_machine_argument(
    parser: argparse.ArgumentParser, *, default: str = "zen4"
) -> argparse.ArgumentParser:
    """The ``--machine`` flag: a preset name or an hwloc-style file path."""
    known = ", ".join(sorted(MACHINE_PRESETS))
    parser.add_argument(
        "--machine",
        default=default,
        help=f"machine model: a preset ({known}) or a path to an hwloc-style "
        "topology file (default: the paper's 64-core Zen 4)",
    )
    return parser


def config_from_args(
    args: argparse.Namespace, *, seeds_default: int | None = None
) -> ExperimentConfig:
    """Merge parsed campaign flags over the ``REPRO_*`` environment.

    Explicit flags win; unset flags inherit from the environment config;
    ``seeds_default`` (when given) overrides the environment's seed count
    for scripts with their own historical default.  The persistent cache
    is on unless ``--no-cache`` was passed.
    """
    env_cfg = ExperimentConfig.from_env()
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = str(args.cache_dir or env_cfg.cache_dir or default_cache_dir())
    if args.seeds is not None:
        seeds = args.seeds
    elif seeds_default is not None:
        seeds = seeds_default
    else:
        seeds = env_cfg.seeds
    return ExperimentConfig(
        seeds=seeds,
        timesteps=args.timesteps if args.timesteps is not None else env_cfg.timesteps,
        with_noise=not getattr(args, "no_noise", False),
        jobs=args.jobs if args.jobs is not None else env_cfg.jobs,
        cache_dir=cache_dir,
        engine=getattr(args, "engine", None) or env_cfg.engine,
        asym_spec=getattr(args, "asym_spec", None) or env_cfg.asym_spec,
        asym_seed=(
            args.asym_seed
            if getattr(args, "asym_seed", None) is not None
            else env_cfg.asym_seed
        ),
    )


def resolve_machine(spec: str) -> MachineTopology:
    """A preset name or an hwloc-style topology file path."""
    factory = MACHINE_PRESETS.get(spec)
    if factory is not None:
        return factory()
    from pathlib import Path

    path = Path(spec)
    if not path.exists():
        known = ", ".join(sorted(MACHINE_PRESETS))
        raise SystemExit(
            f"unknown machine {spec!r}: not a preset ({known}) nor a topology file"
        )
    return parse_topology(path.read_text())
