"""Statistics helpers for the experiment harness.

All aggregation the figures need: sample mean/std, normalized speedup
(baseline time / scheduler time, higher is better, as in the paper's
figures), and geometric means for cross-benchmark averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError

__all__ = ["Summary", "summarize", "speedup", "geo_mean", "percent"]


@dataclass(frozen=True)
class Summary:
    """Sample statistics of repeated measurements."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    @property
    def rel_std(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0


def summarize(values: Sequence[float]) -> Summary:
    """Sample statistics (ddof=1 std, like the paper's 30-run tables)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        min=float(arr.min()),
        max=float(arr.max()),
    )


def speedup(baseline_time: float, scheduler_time: float) -> float:
    """Normalized speedup: > 1 means the scheduler beats the baseline."""
    if baseline_time <= 0 or scheduler_time <= 0:
        raise ExperimentError("times must be positive for a speedup")
    return baseline_time / scheduler_time


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError("cannot average an empty sample")
    if np.any(arr <= 0):
        raise ExperimentError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def percent(ratio: float) -> float:
    """Speedup ratio -> percent gain (1.132 -> 13.2)."""
    return (ratio - 1.0) * 100.0
