"""Experiment runner: benchmark x scheduler x seeds, parallel and cached.

The paper's methodology is 30 repetitions per (benchmark, scheduler) cell;
several figures share the same cells (Figure 2 and Figure 3 both need the
ILAN runs), so the runner memoises completed cells in memory and — when a
cache is attached — persists every individual run on disk, content-addressed
by its full configuration (see :mod:`repro.exp.cache`).

Every run is an independent simulation whose randomness derives entirely
from its seed, and each cell gets its own seed sequence spawned from the
stable ``(benchmark, scheduler)`` cell key (:func:`derive_run_seed`, built
on :mod:`repro.sim.rng`).  Two consequences:

* runs can execute in any order on any number of worker processes and the
  results are byte-identical to a sequential execution (``jobs=1``);
* adding a cell never perturbs the random draws of existing cells.

Environment knobs — read exactly once, inside
:meth:`ExperimentConfig.from_env`; a constructed config never re-reads the
environment:

* ``REPRO_SEEDS`` — repetitions per cell (default 30, the paper's count);
* ``REPRO_ITERS`` — application timesteps (default: each model's own);
* ``REPRO_FULL=1`` — force the paper-scale defaults, overriding
  ``REPRO_SEEDS``/``REPRO_ITERS``;
* ``REPRO_JOBS`` — worker processes (default 1 = in-process);
* ``REPRO_CACHE_DIR`` — persistent run-cache directory (default: none);
* ``REPRO_ENGINE`` — slowdown recompute engine (``reference`` |
  ``incremental``); orthogonal to scale, results are byte-identical;
* ``REPRO_ASYM_SPEC`` — dynamic-asymmetry timeline spec (see
  :meth:`repro.interference.AsymmetrySpec.parse`; default: disabled);
* ``REPRO_ASYM_SEED`` — seed for the asymmetry timeline, decoupling the
  machine's misbehaviour from the run seed (default: the run seed).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.exp.cache import ResultCache, run_key, topology_fingerprint
from repro.exp.journal import CampaignJournal
from repro.exp.stats import Summary, summarize
from repro.interference.noise import NoiseParams
from repro.interference.timeline import AsymmetrySpec
from repro.runtime.context import ENGINES
from repro.runtime.results import AppRunResult
from repro.runtime.runtime import OpenMPRuntime
from repro.sim.rng import spawn_key
from repro.topology.machine import MachineTopology
from repro.topology.presets import zen4_9354
from repro.workloads.registry import make_benchmark

__all__ = [
    "ExperimentConfig",
    "CellResult",
    "LEASE_SCHEDULERS",
    "RunSpec",
    "Runner",
    "default_noise",
    "derive_run_seed",
    "execute_spec",
    "shared_runner",
]


def default_noise() -> NoiseParams:
    """Mild external noise used by the paper-figure experiments.

    Gives runs a realistic variability floor; scheduler-induced variance
    (random placement/stealing) comes on top of it.
    """
    return NoiseParams(
        mean_interval=0.05, mean_duration=0.005, slow_factor=0.6, cores_fraction=0.1
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Shape of one experiment campaign.

    ``jobs`` and ``cache_dir`` control *how* a campaign executes, never
    what it computes: results are independent of both.
    """

    seeds: int = 30
    timesteps: int | None = None
    with_noise: bool = True
    jobs: int = 1
    cache_dir: str | None = None
    engine: str = "reference"
    asym_spec: str | None = None
    asym_seed: int | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.asym_spec is not None:
            # fail fast on an unparsable spec, not mid-campaign
            AsymmetrySpec.parse(self.asym_spec)

    def parsed_asym(self) -> AsymmetrySpec | None:
        """The parsed asymmetry timeline spec; ``None`` when disabled."""
        if self.asym_spec is None:
            return None
        spec = AsymmetrySpec.parse(self.asym_spec)
        return spec if spec.enabled else None

    @staticmethod
    def from_env(*, default_seeds: int = 30) -> "ExperimentConfig":
        """Read the ``REPRO_*`` environment knobs — once, here.

        Precedence: ``REPRO_FULL=1`` forces paper-parity scale (30 seeds,
        model-default timesteps) over ``REPRO_SEEDS``/``REPRO_ITERS``.
        ``REPRO_JOBS``, ``REPRO_CACHE_DIR`` and ``REPRO_ENGINE`` are
        orthogonal to scale and are honoured either way.  Later environment
        changes never affect a config (or a :class:`Runner`) that was
        already constructed.
        """
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        engine = os.environ.get("REPRO_ENGINE") or "reference"
        asym_spec = os.environ.get("REPRO_ASYM_SPEC") or None
        asym_env = os.environ.get("REPRO_ASYM_SEED")
        asym_seed = int(asym_env) if asym_env else None
        if os.environ.get("REPRO_FULL") == "1":
            return ExperimentConfig(
                jobs=jobs, cache_dir=cache_dir, engine=engine,
                asym_spec=asym_spec, asym_seed=asym_seed,
            )
        seeds = int(os.environ.get("REPRO_SEEDS", str(default_seeds)))
        iters = os.environ.get("REPRO_ITERS")
        return ExperimentConfig(
            seeds=seeds,
            timesteps=int(iters) if iters else None,
            jobs=jobs,
            cache_dir=cache_dir,
            engine=engine,
            asym_spec=asym_spec,
            asym_seed=asym_seed,
        )


def derive_run_seed(benchmark: str, scheduler: str, index: int) -> int:
    """Seed of repetition ``index`` of cell ``(benchmark, scheduler)``.

    Spawned through :class:`numpy.random.SeedSequence` from the stable
    string cell key (same CRC-based spawning as :func:`repro.sim.rng.stream`),
    so every cell owns an independent, order-insensitive seed stream and
    parallel workers need no shared RNG state at all.
    """
    if index < 0:
        raise ExperimentError(f"repetition index must be non-negative, got {index}")
    ss = np.random.SeedSequence(
        entropy=index, spawn_key=tuple(spawn_key("exp.cell", benchmark, scheduler))
    )
    return int(ss.generate_state(1, np.uint32)[0])


@dataclass(frozen=True)
class RunSpec:
    """Complete, picklable configuration of one simulated run.

    This is both the unit of work shipped to worker processes and the
    input of the cache key — the two stay in lockstep by construction.

    ``lease_bits`` (multi-tenant service) confines the run to a NUMA-node
    lease: the scheduler molds inside that node subset only.  It is part
    of the cache key when set, so leased and unleased runs of the same
    cell never collide; ``None`` leaves the key bit-identical to the
    pre-lease format.

    ``engine`` selects the slowdown recompute strategy.  The engines are
    byte-identical by contract, but a non-default engine still enters the
    cache key (defence in depth: if the contract ever broke, a poisoned
    cache entry could masquerade as a reference result).  ``"reference"``
    leaves the key bit-identical to the pre-engine format, so existing
    caches stay valid.

    ``asym``/``asym_seed`` attach a dynamic-asymmetry timeline to the
    run.  An enabled spec enters the cache key in its canonical
    ``describe()`` form (stable across parse spellings); a disabled or
    absent one — and an unset ``asym_seed`` — leave the key bit-identical
    to the pre-asymmetry format.
    """

    benchmark: str
    scheduler: str
    seed: int
    timesteps: int | None
    noise: NoiseParams | None
    topology: MachineTopology
    lease_bits: int | None = None
    engine: str = "reference"
    asym: AsymmetrySpec | None = None
    asym_seed: int | None = None

    def key(self, topology_fp: str | None = None) -> str:
        params: dict[str, object] = {}
        if self.lease_bits is not None:
            params["lease"] = self.lease_bits
        if self.engine != "reference":
            params["engine"] = self.engine
        if self.asym is not None and self.asym.enabled:
            params["asym"] = self.asym.describe()
        if self.asym_seed is not None:
            params["asym_seed"] = self.asym_seed
        return run_key(
            benchmark=self.benchmark,
            scheduler=self.scheduler,
            seed=self.seed,
            timesteps=self.timesteps,
            noise=self.noise,
            topology=topology_fp if topology_fp is not None else self.topology,
            scheduler_params=params or None,
        )


#: Schedulers that understand a NUMA-node lease (``allowed_nodes``).
LEASE_SCHEDULERS = frozenset({"ilan", "ilan-adaptive"})


def _make_scheduler(spec: RunSpec):
    """Scheduler instance (or name) for a spec, honouring its lease."""
    if spec.lease_bits is None:
        return spec.scheduler
    if spec.scheduler not in LEASE_SCHEDULERS:
        raise ExperimentError(
            f"scheduler {spec.scheduler!r} does not support node leases; "
            f"leasable schedulers: {sorted(LEASE_SCHEDULERS)}"
        )
    from repro.runtime.schedulers.base import create_scheduler
    from repro.topology.affinity import NodeMask

    mask = NodeMask(bits=spec.lease_bits, width=spec.topology.num_nodes)
    if mask.is_empty():
        raise ExperimentError("lease mask must contain at least one node")
    return create_scheduler(spec.scheduler, allowed_nodes=mask)


def execute_spec(spec: RunSpec) -> AppRunResult:
    """Simulate one run from scratch (the worker-process entry point)."""
    app = make_benchmark(spec.benchmark, timesteps=spec.timesteps)
    runtime = OpenMPRuntime(
        spec.topology,
        scheduler=_make_scheduler(spec),
        seed=spec.seed,
        noise=spec.noise,
        asym=spec.asym,
        asym_seed=spec.asym_seed,
        engine=spec.engine,
    )
    return runtime.run_application(app)


@dataclass
class CellResult:
    """All runs of one (benchmark, scheduler) cell."""

    benchmark: str
    scheduler: str
    runs: list[AppRunResult]

    @property
    def times(self) -> list[float]:
        return [r.total_time for r in self.runs]

    @property
    def seeds(self) -> list[int]:
        return [r.seed for r in self.runs]

    def summary(self) -> Summary:
        return summarize(self.times)

    def overhead_summary(self) -> Summary:
        return summarize([r.total_overhead for r in self.runs])

    def weighted_threads(self) -> Summary:
        return summarize([r.weighted_avg_threads for r in self.runs])


class Runner:
    """Parallel, caching benchmark runner bound to one machine model.

    ``jobs`` > 1 fans run simulations out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; an attached
    :class:`ResultCache` is consulted before any simulation and updated
    after every completed run.  Both are transparent: summaries are
    byte-identical whatever the job count or cache state.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        topology: MachineTopology | None = None,
        *,
        cache: ResultCache | None = None,
        jobs: int | None = None,
        journal: CampaignJournal | None = None,
    ):
        self.config = config or ExperimentConfig.from_env()
        self.topology = topology or zen4_9354()
        self.jobs = max(1, jobs if jobs is not None else self.config.jobs)
        if cache is None and self.config.cache_dir:
            cache = ResultCache(self.config.cache_dir)
        if journal is not None and cache is None:
            # `committed` promises every run of the cell is durably in the
            # cache; without one the record would be a lie and a resume
            # would silently recompute "committed" work
            raise ExperimentError(
                "a journaled campaign requires a result cache (the commit "
                "protocol records 'committed' only for cache-persisted "
                "runs); attach a cache or drop the journal"
            )
        self.cache = cache
        self.journal = journal
        self._cells: dict[tuple[str, str], CellResult] = {}
        self._topology_fp: str | None = None

    # ------------------------------------------------------------------
    @property
    def topology_fp(self) -> str:
        """Structural fingerprint of the machine (computed once)."""
        if self._topology_fp is None:
            self._topology_fp = topology_fingerprint(self.topology)
        return self._topology_fp

    def specs(self, benchmark: str, scheduler: str) -> list[RunSpec]:
        """The run specs of one cell, in repetition order."""
        cfg = self.config
        if cfg.seeds < 1:
            raise ExperimentError(f"need at least one seed, got {cfg.seeds}")
        noise = default_noise() if cfg.with_noise else None
        asym = cfg.parsed_asym()
        return [
            RunSpec(
                benchmark=benchmark,
                scheduler=scheduler,
                seed=derive_run_seed(benchmark, scheduler, index),
                timesteps=cfg.timesteps,
                noise=noise,
                topology=self.topology,
                engine=cfg.engine,
                asym=asym,
                asym_seed=cfg.asym_seed,
            )
            for index in range(cfg.seeds)
        ]

    # ------------------------------------------------------------------
    def cell(self, benchmark: str, scheduler: str) -> CellResult:
        """Runs of (benchmark, scheduler); computed once, then memoised."""
        return self.cells([(benchmark, scheduler)])[(benchmark, scheduler)]

    def cells(
        self, pairs: Iterable[tuple[str, str]]
    ) -> dict[tuple[str, str], CellResult]:
        """Compute many cells at once, fanning *all* their missing runs
        out over one worker pool (cross-cell parallelism).

        With a :class:`CampaignJournal` attached, cells are instead
        executed one at a time under the ``planned → running →
        committed`` protocol (intra-cell parallelism only), so a crash
        loses at most one cell's uncached work; results are byte-identical
        either way.
        """
        wanted = list(dict.fromkeys(pairs))
        todo = [pair for pair in wanted if pair not in self._cells]
        if todo:
            cell_specs = {pair: self.specs(*pair) for pair in todo}
            if self.journal is not None:
                self._compute_journaled(cell_specs)
            else:
                results = self._execute({
                    spec.key(self.topology_fp): spec
                    for specs in cell_specs.values()
                    for spec in specs
                })
                for pair, specs in cell_specs.items():
                    runs = [results[spec.key(self.topology_fp)] for spec in specs]
                    self._cells[pair] = CellResult(
                        benchmark=pair[0], scheduler=pair[1], runs=runs
                    )
        return {pair: self._cells[pair] for pair in wanted}

    def _compute_journaled(
        self, cell_specs: dict[tuple[str, str], list[RunSpec]]
    ) -> None:
        """Cell-by-cell execution under the write-ahead commit protocol.

        Ordering per cell: ``running`` is journalled before any
        simulation; every run is persisted to the cache inside
        :meth:`_execute`; only then is ``committed`` appended.  On
        resume, a committed cell's runs come back as verified cache hits
        (a quarantined entry is simply recomputed — determinism makes
        the replacement byte-identical), so no transition is re-recorded
        for it.
        """
        journal = self.journal
        assert journal is not None
        journal.begin(
            topology_fp=self.topology_fp,
            seeds=self.config.seeds,
            timesteps=self.config.timesteps,
            with_noise=self.config.with_noise,
        )
        keyed = {
            pair: [spec.key(self.topology_fp) for spec in specs]
            for pair, specs in cell_specs.items()
        }
        for pair, specs in cell_specs.items():
            journal.cell_planned(*pair, keys=keyed[pair])
        for pair, specs in cell_specs.items():
            keys = keyed[pair]
            committed = journal.is_committed(*pair)
            if not committed:
                journal.cell_running(*pair)
            results = self._execute(dict(zip(keys, specs)))
            self._cells[pair] = CellResult(
                benchmark=pair[0], scheduler=pair[1],
                runs=[results[key] for key in keys],
            )
            if not committed:
                journal.cell_committed(*pair, keys=keys)

    def prefetch(
        self, benchmarks: Sequence[str], schedulers: Sequence[str]
    ) -> dict[tuple[str, str], CellResult]:
        """Warm every (benchmark, scheduler) combination in one fan-out."""
        return self.cells(product(benchmarks, schedulers))

    # ------------------------------------------------------------------
    # job-level API (multi-tenant service)
    # ------------------------------------------------------------------
    def job_specs(
        self,
        benchmark: str,
        scheduler: str = "ilan",
        *,
        seeds: int | None = None,
        timesteps: int | None = None,
        lease_bits: int | None = None,
    ) -> list[RunSpec]:
        """The run specs of one submitted *job*: a taskloop campaign of
        ``seeds`` repetitions, optionally confined to a node lease.

        Seeds reuse the campaign derivation (:func:`derive_run_seed`), so
        an unleased job is cache-compatible with the equivalent campaign
        cell; a leased job keys separately via ``lease_bits``.
        """
        cfg = self.config
        n = cfg.seeds if seeds is None else seeds
        if n < 1:
            raise ExperimentError(f"need at least one seed, got {n}")
        noise = default_noise() if cfg.with_noise else None
        asym = cfg.parsed_asym()
        return [
            RunSpec(
                benchmark=benchmark,
                scheduler=scheduler,
                seed=derive_run_seed(benchmark, scheduler, index),
                timesteps=timesteps if timesteps is not None else cfg.timesteps,
                noise=noise,
                topology=self.topology,
                lease_bits=lease_bits,
                engine=cfg.engine,
                asym=asym,
                asym_seed=cfg.asym_seed,
            )
            for index in range(n)
        ]

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        *,
        fault_hook: Callable[[Sequence[RunSpec]], None] | None = None,
    ) -> list[AppRunResult]:
        """Execute arbitrary specs through the cache, in the given order.

        Unlike :meth:`cells` this performs no cell memoisation, so it is
        safe to call concurrently from service worker threads: cache reads
        and the atomic per-run writes are the only shared state.

        ``fault_hook`` is the scheduling service's fault-injection seam:
        it is invoked (with the specs) before any cache lookup or
        simulation, so a raised :class:`~repro.errors.TransientRunnerError`
        surfaces exactly where a real execution failure would — inside the
        runner call, on the worker thread.
        """
        if not specs:
            return []
        if fault_hook is not None:
            fault_hook(specs)
        fp = self.topology_fp
        for spec in specs:
            if spec.topology is not self.topology and (
                topology_fingerprint(spec.topology) != fp
            ):
                raise ExperimentError(
                    "run_specs requires specs built for this runner's machine"
                )
        results = self._execute({spec.key(fp): spec for spec in specs})
        return [results[spec.key(fp)] for spec in specs]

    # ------------------------------------------------------------------
    def _execute(self, by_key: dict[str, RunSpec]) -> dict[str, AppRunResult]:
        """Resolve runs by key: cache first, then simulate the misses."""
        results: dict[str, AppRunResult] = {}
        missing: dict[str, RunSpec] = {}
        for key, spec in by_key.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[key] = cached
            else:
                missing[key] = spec
        if missing:
            keys = list(missing)
            specs = [missing[k] for k in keys]
            if self.jobs > 1 and len(specs) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(specs))
                ) as pool:
                    computed = list(pool.map(execute_spec, specs))
            else:
                computed = [execute_spec(spec) for spec in specs]
            for key, result in zip(keys, computed):
                results[key] = result
                if self.cache is not None:
                    self.cache.put(key, result)
        return results

    # ------------------------------------------------------------------
    def cached_cells(self) -> dict[tuple[str, str], CellResult]:
        """Snapshot of all completed (benchmark, scheduler) cells."""
        return dict(self._cells)

    def clear(self) -> None:
        """Drop the in-memory cells (the disk cache is left untouched)."""
        self._cells.clear()


_SHARED: Runner | None = None


def shared_runner() -> Runner:
    """Process-wide runner so pytest benches share cells across figures."""
    global _SHARED
    if _SHARED is None:
        _SHARED = Runner()
    return _SHARED
