"""Experiment runner: benchmark x scheduler x seeds, with result caching.

The paper's methodology is 30 repetitions per (benchmark, scheduler) cell;
several figures share the same cells (Figure 2 and Figure 3 both need the
ILAN runs), so the runner memoises completed cells per process.

Environment knobs (used by the pytest benches so CI can scale):

* ``REPRO_SEEDS`` — repetitions per cell (default 30, the paper's count);
* ``REPRO_ITERS`` — application timesteps (default: each model's own);
* ``REPRO_FULL=1`` — force the paper-scale defaults regardless of others.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.exp.stats import Summary, summarize
from repro.interference.noise import NoiseParams
from repro.runtime.results import AppRunResult
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.machine import MachineTopology
from repro.topology.presets import zen4_9354
from repro.workloads.registry import make_benchmark

__all__ = ["ExperimentConfig", "CellResult", "Runner", "default_noise"]


def default_noise() -> NoiseParams:
    """Mild external noise used by the paper-figure experiments.

    Gives runs a realistic variability floor; scheduler-induced variance
    (random placement/stealing) comes on top of it.
    """
    return NoiseParams(
        mean_interval=0.05, mean_duration=0.005, slow_factor=0.6, cores_fraction=0.1
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Shape of one experiment campaign."""

    seeds: int = 30
    timesteps: int | None = None
    with_noise: bool = True

    @staticmethod
    def from_env() -> "ExperimentConfig":
        """Read the ``REPRO_*`` environment knobs."""
        if os.environ.get("REPRO_FULL") == "1":
            return ExperimentConfig()
        seeds = int(os.environ.get("REPRO_SEEDS", "30"))
        iters = os.environ.get("REPRO_ITERS")
        return ExperimentConfig(seeds=seeds, timesteps=int(iters) if iters else None)


@dataclass
class CellResult:
    """All runs of one (benchmark, scheduler) cell."""

    benchmark: str
    scheduler: str
    runs: list[AppRunResult]

    @property
    def times(self) -> list[float]:
        return [r.total_time for r in self.runs]

    def summary(self) -> Summary:
        return summarize(self.times)

    def overhead_summary(self) -> Summary:
        return summarize([r.total_overhead for r in self.runs])

    def weighted_threads(self) -> Summary:
        return summarize([r.weighted_avg_threads for r in self.runs])


class Runner:
    """Memoising benchmark runner bound to one machine model."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        topology: MachineTopology | None = None,
    ):
        self.config = config or ExperimentConfig.from_env()
        self.topology = topology or zen4_9354()
        self._cache: dict[tuple[str, str], CellResult] = {}

    # ------------------------------------------------------------------
    def cell(self, benchmark: str, scheduler: str) -> CellResult:
        """Runs of (benchmark, scheduler); computed once, then cached."""
        key = (benchmark, scheduler)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._run_cell(benchmark, scheduler)
        self._cache[key] = result
        return result

    def _run_cell(self, benchmark: str, scheduler: str) -> CellResult:
        cfg = self.config
        if cfg.seeds < 1:
            raise ExperimentError(f"need at least one seed, got {cfg.seeds}")
        app = make_benchmark(benchmark, timesteps=cfg.timesteps)
        noise = default_noise() if cfg.with_noise else None
        runs: list[AppRunResult] = []
        for seed in range(cfg.seeds):
            runtime = OpenMPRuntime(
                self.topology, scheduler=scheduler, seed=seed, noise=noise
            )
            runs.append(runtime.run_application(app))
        return CellResult(benchmark=benchmark, scheduler=scheduler, runs=runs)

    def cached_cells(self) -> dict[tuple[str, str], CellResult]:
        """Snapshot of all completed (benchmark, scheduler) cells."""
        return dict(self._cache)

    def clear(self) -> None:
        self._cache.clear()


_SHARED: Runner | None = None


def shared_runner() -> Runner:
    """Process-wide runner so pytest benches share cells across figures."""
    global _SHARED
    if _SHARED is None:
        _SHARED = Runner()
    return _SHARED
