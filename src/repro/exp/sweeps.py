"""Reusable parameter sweeps over schedulers and workloads.

The ablation/extension benchmarks each sweep one knob; these helpers make
the same pattern available to library users::

    from repro.exp.sweeps import sweep
    rows = sweep(
        app_factory=lambda: make_sp(timesteps=30),
        schedulers={"g=4": IlanScheduler(granularity=4),
                    "g=8": IlanScheduler(granularity=8)},
        seeds=5,
    )

Every cell is ``seeds`` independent runs; rows carry mean time, std, mean
weighted threads and mean total overhead.

Like the campaign :class:`~repro.exp.runner.Runner`, a sweep can fan its
(variant, seed) runs out over worker processes (``jobs=N``).  Each run is
an independent simulation (the runtime resets scheduler state per run), so
parallel and sequential sweeps produce identical rows.  Process fan-out
requires the factory and scheduler objects to be picklable; closures and
lambdas fall back to in-process execution transparently.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ExperimentError
from repro.exp.stats import Summary, summarize
from repro.interference.noise import NoiseParams
from repro.interference.timeline import AsymmetrySpec
from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers.base import Scheduler
from repro.topology.machine import MachineTopology
from repro.topology.presets import zen4_9354
from repro.workloads.base import Application

__all__ = ["SweepRow", "sweep", "render_sweep"]


@dataclass(frozen=True)
class SweepRow:
    """Aggregated runs of one sweep point."""

    label: str
    time: Summary
    threads_mean: float
    overhead_mean: float


def _run_point(
    args: tuple[
        Callable[[], Application],
        Scheduler | str,
        MachineTopology,
        NoiseParams | None,
        AsymmetrySpec | None,
        int | None,
        int,
    ],
) -> tuple[float, float, float]:
    """One (variant, seed) run — the worker-process entry point."""
    app_factory, sched, topo, noise, asym, asym_seed, seed = args
    app = app_factory()
    runtime = OpenMPRuntime(
        topo, scheduler=sched, seed=seed, noise=noise, asym=asym, asym_seed=asym_seed
    )
    result = runtime.run_application(app)
    return result.total_time, result.weighted_avg_threads, result.total_overhead


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def sweep(
    *,
    app_factory: Callable[[], Application],
    schedulers: Mapping[str, Scheduler | str],
    seeds: int = 3,
    topology: MachineTopology | None = None,
    noise: NoiseParams | None = None,
    asym: AsymmetrySpec | None = None,
    asym_seed: int | None = None,
    jobs: int = 1,
) -> list[SweepRow]:
    """Run ``app_factory()`` under every scheduler variant.

    ``schedulers`` maps row labels to scheduler instances or registry
    names.  A fresh application model is built per cell so no state leaks
    between variants.  ``asym``/``asym_seed`` inject a dynamic-asymmetry
    timeline into every run (same timeline across variants for a fair
    comparison).  ``jobs`` > 1 distributes the (variant, seed) runs over
    worker processes when the factory and schedulers are picklable, with
    identical results either way.
    """
    if seeds < 1:
        raise ExperimentError(f"need at least one seed, got {seeds}")
    if not schedulers:
        raise ExperimentError("sweep needs at least one scheduler variant")
    topo = topology or zen4_9354()
    points = [
        (app_factory, sched, topo, noise, asym, asym_seed, seed)
        for sched in schedulers.values()
        for seed in range(seeds)
    ]
    parallel = jobs > 1 and len(points) > 1 and _picklable(app_factory, *schedulers.values())
    if parallel:
        with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
            measurements = list(pool.map(_run_point, points))
    else:
        measurements = [_run_point(point) for point in points]
    rows: list[SweepRow] = []
    for i, label in enumerate(schedulers):
        cell = measurements[i * seeds : (i + 1) * seeds]
        times = [m[0] for m in cell]
        threads = [m[1] for m in cell]
        overheads = [m[2] for m in cell]
        rows.append(
            SweepRow(
                label=label,
                time=summarize(times),
                threads_mean=sum(threads) / len(threads),
                overhead_mean=sum(overheads) / len(overheads),
            )
        )
    return rows


def render_sweep(title: str, rows: list[SweepRow], *, baseline: str | None = None) -> str:
    """Text table of sweep rows, optionally normalised to one row's mean."""
    base_mean: float | None = None
    if baseline is not None:
        match = [r for r in rows if r.label == baseline]
        if not match:
            raise ExperimentError(f"baseline row {baseline!r} not in sweep")
        base_mean = match[0].time.mean
    lines = [title, "-" * 72]
    header = f"{'variant':<18} {'time[s]':>9} {'std':>8} {'threads':>8} {'ovh[ms]':>8}"
    if base_mean is not None:
        header += f" {'speedup':>8}"
    lines.append(header)
    for r in rows:
        line = (
            f"{r.label:<18} {r.time.mean:>9.4f} {r.time.std:>8.4f} "
            f"{r.threads_mean:>8.1f} {r.overhead_mean * 1e3:>8.3f}"
        )
        if base_mean is not None:
            line += f" {base_mean / r.time.mean:>8.3f}"
        lines.append(line)
    return "\n".join(lines)
