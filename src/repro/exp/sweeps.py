"""Reusable parameter sweeps over schedulers and workloads.

The ablation/extension benchmarks each sweep one knob; these helpers make
the same pattern available to library users::

    from repro.exp.sweeps import sweep
    rows = sweep(
        app_factory=lambda: make_sp(timesteps=30),
        schedulers={"g=4": IlanScheduler(granularity=4),
                    "g=8": IlanScheduler(granularity=8)},
        seeds=5,
    )

Every cell is ``seeds`` independent runs; rows carry mean time, std, mean
weighted threads and mean total overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ExperimentError
from repro.exp.stats import Summary, summarize
from repro.interference.noise import NoiseParams
from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers.base import Scheduler
from repro.topology.machine import MachineTopology
from repro.topology.presets import zen4_9354
from repro.workloads.base import Application

__all__ = ["SweepRow", "sweep", "render_sweep"]


@dataclass(frozen=True)
class SweepRow:
    """Aggregated runs of one sweep point."""

    label: str
    time: Summary
    threads_mean: float
    overhead_mean: float


def sweep(
    *,
    app_factory: Callable[[], Application],
    schedulers: Mapping[str, Scheduler | str],
    seeds: int = 3,
    topology: MachineTopology | None = None,
    noise: NoiseParams | None = None,
) -> list[SweepRow]:
    """Run ``app_factory()`` under every scheduler variant.

    ``schedulers`` maps row labels to scheduler instances or registry
    names.  A fresh application model is built per cell so no state leaks
    between variants.
    """
    if seeds < 1:
        raise ExperimentError(f"need at least one seed, got {seeds}")
    if not schedulers:
        raise ExperimentError("sweep needs at least one scheduler variant")
    topo = topology or zen4_9354()
    rows: list[SweepRow] = []
    for label, sched in schedulers.items():
        times: list[float] = []
        threads: list[float] = []
        overheads: list[float] = []
        for seed in range(seeds):
            app = app_factory()
            runtime = OpenMPRuntime(topo, scheduler=sched, seed=seed, noise=noise)
            result = runtime.run_application(app)
            times.append(result.total_time)
            threads.append(result.weighted_avg_threads)
            overheads.append(result.total_overhead)
        rows.append(
            SweepRow(
                label=label,
                time=summarize(times),
                threads_mean=sum(threads) / len(threads),
                overhead_mean=sum(overheads) / len(overheads),
            )
        )
    return rows


def render_sweep(title: str, rows: list[SweepRow], *, baseline: str | None = None) -> str:
    """Text table of sweep rows, optionally normalised to one row's mean."""
    base_mean: float | None = None
    if baseline is not None:
        match = [r for r in rows if r.label == baseline]
        if not match:
            raise ExperimentError(f"baseline row {baseline!r} not in sweep")
        base_mean = match[0].time.mean
    lines = [title, "-" * 72]
    header = f"{'variant':<18} {'time[s]':>9} {'std':>8} {'threads':>8} {'ovh[ms]':>8}"
    if base_mean is not None:
        header += f" {'speedup':>8}"
    lines.append(header)
    for r in rows:
        line = (
            f"{r.label:<18} {r.time.mean:>9.4f} {r.time.std:>8.4f} "
            f"{r.threads_mean:>8.1f} {r.overhead_mean * 1e3:>8.3f}"
        )
        if base_mean is not None:
            line += f" {base_mean / r.time.mean:>8.3f}"
        lines.append(line)
    return "\n".join(lines)
