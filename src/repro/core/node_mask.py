"""``GetNUMAMask``: choose which NUMA nodes execute a taskloop.

From Section 3.2: "The fastest NUMA node is retrieved from the PTT and is
selected as the first node of the node mask.  To maintain good data
locality and efficient inter-node data communication, any additional nodes
are chosen according to the NUMA topology.  That is, nodes within the same
socket are prioritized over nodes crossing socket domains."

Ties between equally distant candidates break on measured per-node
performance (faster first), then node id, keeping selection deterministic.

Multi-tenant extension: an optional ``allowed`` lease mask restricts every
choice to a subset of the machine's nodes.  Inside a lease the same policy
applies unchanged — the fastest *leased* node seeds the mask and growth
stays topology-proximate — so a job molded inside a 2-node lease behaves
exactly like ILAN on a 2-node machine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ptt import TaskloopPTT
from repro.errors import ConfigurationError
from repro.topology.affinity import NodeMask
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology

__all__ = ["get_numa_mask", "worker_cores_for_mask", "nodes_needed"]


def nodes_needed(
    num_threads: int, topology: MachineTopology, allowed: NodeMask | None = None
) -> int:
    """How many NUMA nodes ``num_threads`` pinned threads occupy."""
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    n = math.ceil(num_threads / topology.cores_per_node)
    limit = topology.num_nodes if allowed is None else allowed.count()
    return min(n, limit)


def _fastest_allowed(ptt: TaskloopPTT, universe: list[int]) -> int:
    """The fastest node by observed throughput, restricted to ``universe``.

    Falls back to the lowest allowed node id while no per-node observation
    exists yet (mirroring :meth:`TaskloopPTT.fastest_node`).
    """
    perf = ptt.node_perf
    known = [n for n in universe if not np.isnan(perf[n])]
    if not known:
        return universe[0]
    return max(known, key=lambda n: (perf[n], -n))


def get_numa_mask(
    num_threads: int,
    ptt: TaskloopPTT,
    topology: MachineTopology,
    distances: DistanceMatrix,
    allowed: NodeMask | None = None,
) -> NodeMask:
    """Select the node mask for a configuration with ``num_threads`` threads.

    ``allowed`` restricts the selection to a leased subset of nodes; it
    must be a non-empty mask as wide as the machine's node count.
    """
    if allowed is not None:
        if allowed.width != topology.num_nodes:
            raise ConfigurationError(
                f"lease mask width {allowed.width} does not match machine with "
                f"{topology.num_nodes} nodes"
            )
        if allowed.is_empty():
            raise ConfigurationError("lease mask must contain at least one node")
        universe = allowed.indices()
    else:
        universe = list(topology.node_ids())
    count = nodes_needed(num_threads, topology, allowed)
    fastest = _fastest_allowed(ptt, universe)
    perf = ptt.node_perf
    dist_row = distances.matrix[fastest]

    def order_key(node: int) -> tuple[float, float, int]:
        p = perf[node]
        p = -p if not np.isnan(p) else 0.0  # unknown perf ranks after known-fast
        return (float(dist_row[node]), p, node)

    candidates = sorted(universe, key=order_key)
    # the fastest node always comes first (its self-distance is minimal by
    # SLIT construction, but make the guarantee explicit)
    chosen = [fastest] + [n for n in candidates if n != fastest]
    return NodeMask.from_indices(chosen[:count], topology.num_nodes)


def worker_cores_for_mask(
    num_threads: int, mask: NodeMask, topology: MachineTopology
) -> list[int]:
    """Pinned worker cores for a configuration: node-major, cores ascending.

    Fills the mask's nodes in ascending node order, taking whole nodes
    until ``num_threads`` cores are selected (the last node may be
    partial when the granularity is below the node size).
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    cores: list[int] = []
    for node in mask.indices():
        for core in topology.cores_of_node(node):
            cores.append(core)
            if len(cores) == num_threads:
                return cores
    if len(cores) < num_threads:
        raise ConfigurationError(
            f"mask {mask} provides only {len(cores)} cores for {num_threads} threads"
        )
    return cores
