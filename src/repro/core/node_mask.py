"""``GetNUMAMask``: choose which NUMA nodes execute a taskloop.

From Section 3.2: "The fastest NUMA node is retrieved from the PTT and is
selected as the first node of the node mask.  To maintain good data
locality and efficient inter-node data communication, any additional nodes
are chosen according to the NUMA topology.  That is, nodes within the same
socket are prioritized over nodes crossing socket domains."

Ties between equally distant candidates break on measured per-node
performance (faster first), then node id, keeping selection deterministic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ptt import TaskloopPTT
from repro.errors import ConfigurationError
from repro.topology.affinity import NodeMask
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology

__all__ = ["get_numa_mask", "worker_cores_for_mask", "nodes_needed"]


def nodes_needed(num_threads: int, topology: MachineTopology) -> int:
    """How many NUMA nodes ``num_threads`` pinned threads occupy."""
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    n = math.ceil(num_threads / topology.cores_per_node)
    return min(n, topology.num_nodes)


def get_numa_mask(
    num_threads: int,
    ptt: TaskloopPTT,
    topology: MachineTopology,
    distances: DistanceMatrix,
) -> NodeMask:
    """Select the node mask for a configuration with ``num_threads`` threads."""
    count = nodes_needed(num_threads, topology)
    fastest = ptt.fastest_node()
    perf = ptt.node_perf
    dist_row = distances.matrix[fastest]

    def order_key(node: int) -> tuple[float, float, int]:
        p = perf[node]
        p = -p if not np.isnan(p) else 0.0  # unknown perf ranks after known-fast
        return (float(dist_row[node]), p, node)

    candidates = sorted(topology.node_ids(), key=order_key)
    # the fastest node always comes first (its self-distance is minimal by
    # SLIT construction, but make the guarantee explicit)
    chosen = [fastest] + [n for n in candidates if n != fastest]
    return NodeMask.from_indices(chosen[:count], topology.num_nodes)


def worker_cores_for_mask(
    num_threads: int, mask: NodeMask, topology: MachineTopology
) -> list[int]:
    """Pinned worker cores for a configuration: node-major, cores ascending.

    Fills the mask's nodes in ascending node order, taking whole nodes
    until ``num_threads`` cores are selected (the last node may be
    partial when the granularity is below the node size).
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    cores: list[int] = []
    for node in mask.indices():
        for core in topology.cores_of_node(node):
            cores.append(core)
            if len(cores) == num_threads:
                return cores
    if len(cores) < num_threads:
        raise ConfigurationError(
            f"mask {mask} provides only {len(cores)} cores for {num_threads} threads"
        )
    return cores
