"""The paper's contribution: the ILAN scheduler.

Exposes the configuration model, the Performance Trace Table, Algorithm 1
(thread-count selection), node-mask selection, the steal-policy trial, the
moldability state machine, the hierarchical task distribution, and the two
runtime scheduler plugins (``ilan`` and the ``ilan-nomold`` ablation).
"""

from repro.core.config import StealPolicyMode, TaskloopConfig
from repro.core.distribution import DEFAULT_STRICT_FRACTION, distribute_chunks
from repro.core.moldability import MoldabilityController, Phase
from repro.core.node_mask import get_numa_mask, nodes_needed, worker_cores_for_mask
from repro.core.ptt import ExecStats, PerformanceTraceTable, TaskloopPTT
from repro.core.scheduler import (
    IlanAdaptiveScheduler,
    IlanNoMoldScheduler,
    IlanScheduler,
)
from repro.core.selection import (
    SelectionResult,
    initial_threads,
    midpoint_threads,
    select_next_threads,
)
from repro.core.steal_eval import evaluate_steal_policy

__all__ = [
    "StealPolicyMode",
    "TaskloopConfig",
    "DEFAULT_STRICT_FRACTION",
    "distribute_chunks",
    "MoldabilityController",
    "Phase",
    "get_numa_mask",
    "nodes_needed",
    "worker_cores_for_mask",
    "ExecStats",
    "PerformanceTraceTable",
    "TaskloopPTT",
    "IlanAdaptiveScheduler",
    "IlanNoMoldScheduler",
    "IlanScheduler",
    "SelectionResult",
    "initial_threads",
    "midpoint_threads",
    "select_next_threads",
    "evaluate_steal_policy",
]
