"""The ILAN scheduler (and its no-moldability ablation) as runtime plugins.

``IlanScheduler`` wires the paper's pieces together per taskloop callsite:
the :class:`MoldabilityController` picks the configuration (threads, node
mask, steal policy) using the :class:`PerformanceTraceTable`; chunks are
distributed hierarchically onto the configuration's nodes; execution uses
the hierarchical steal policy; measurements flow back into the PTT.

``IlanNoMoldScheduler`` is the Section 5.3 ablation: the hierarchical
distribution and stealing are kept, but every taskloop always runs on all
cores with inter-node stealing enabled — no exploration, no PTT.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import StealPolicyMode, TaskloopConfig
from repro.core.distribution import DEFAULT_STRICT_FRACTION, distribute_chunks
from repro.core.moldability import MoldabilityController, Phase
from repro.core.node_mask import worker_cores_for_mask
from repro.core.ptt import PerformanceTraceTable
from repro.runtime.context import RunContext
from repro.runtime.results import TaskloopResult
from repro.runtime.schedulers.base import Scheduler, TaskloopPlan, register_scheduler
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.taskloop import partition
from repro.errors import ConfigurationError
from repro.runtime.worksteal import HierarchicalStealPolicy
from repro.topology.affinity import NodeMask

if TYPE_CHECKING:  # pragma: no cover - import for type hints only
    from repro.energy.model import EnergyModel

__all__ = ["IlanScheduler", "IlanAdaptiveScheduler", "IlanNoMoldScheduler"]


class IlanScheduler(Scheduler):
    """Interference- and locality-aware NUMA taskloop scheduler.

    Parameters
    ----------
    granularity:
        Thread-count granularity ``g``; ``None`` uses the NUMA node size,
        the paper's choice on the Zen 4 platform.
    strict_fraction:
        Per-node fraction of chunks marked NUMA-strict.
    use_counters:
        Enable the paper's proposed counter-driven exploration shortcut:
        when the first full-machine execution shows no memory saturation,
        the thread-count search is skipped entirely (the optimum cannot be
        narrower than the machine without contention to relieve).
    objective:
        What the PTT optimises: ``"time"`` (the paper's platform-agnostic
        default), ``"energy"``, or ``"edp"`` (energy-delay product).  The
        non-time objectives realise the paper's Section 3.5 suggestion of
        selecting configurations by energy efficiency; they require
        performance counters (enabled by default on the run context).
    energy_model:
        The :class:`repro.energy.EnergyModel` used by the energy
        objectives; defaults to the Zen 4-calibrated model.
    allowed_nodes:
        Optional NUMA-node lease (multi-tenant service): every
        configuration — thread counts, node masks, worker cores — stays
        inside this mask, so ILAN molds the taskloops as if the lease were
        the whole machine.  ``None`` (the default) uses all nodes.
    reexplore / drift_threshold / drift_window:
        Drift-triggered PTT re-exploration for dynamically asymmetric
        machines (see :meth:`MoldabilityController.note_settled_time`).
        Off by default — stock ILAN keeps the paper's frozen-PTT
        behaviour; :class:`IlanAdaptiveScheduler` turns it on.
    """

    name = "ilan"

    OBJECTIVES = ("time", "energy", "edp")

    def __init__(
        self,
        granularity: int | None = None,
        strict_fraction: float = DEFAULT_STRICT_FRACTION,
        use_counters: bool = False,
        objective: str = "time",
        energy_model: "EnergyModel | None" = None,
        allowed_nodes: NodeMask | None = None,
        reexplore: bool = False,
        drift_threshold: float = 0.3,
        drift_window: int = 2,
    ):
        if objective not in self.OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {objective!r}; choose from {self.OBJECTIVES}"
            )
        self.granularity = granularity
        self.strict_fraction = strict_fraction
        self.use_counters = use_counters
        self.objective = objective
        self.allowed_nodes = allowed_nodes
        self.reexplore = reexplore
        self.drift_threshold = drift_threshold
        self.drift_window = drift_window
        if objective != "time" and energy_model is None:
            from repro.energy.model import EnergyModel

            energy_model = EnergyModel()
        self.energy_model = energy_model
        self._ptt: PerformanceTraceTable | None = None
        self._controllers: dict[str, MoldabilityController] = {}
        # per-uid bookkeeping of the in-flight encounter
        self._inflight: dict[str, tuple[TaskloopConfig, Phase, bool]] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._ptt = None
        self._controllers.clear()
        self._inflight.clear()

    @property
    def ptt(self) -> PerformanceTraceTable:
        if self._ptt is None:
            raise RuntimeError("scheduler has not planned any taskloop yet")
        return self._ptt

    def controller(self, uid: str) -> MoldabilityController:
        return self._controllers[uid]

    def _ensure(self, ctx: RunContext) -> PerformanceTraceTable:
        if self._ptt is None:
            self._ptt = PerformanceTraceTable(ctx.topology.num_nodes)
        return self._ptt

    # ------------------------------------------------------------------
    def plan(self, work: TaskloopWork, ctx: RunContext) -> TaskloopPlan:
        ptt_all = self._ensure(ctx)
        ctrl = self._controllers.get(work.uid)
        if ctrl is None:
            g = self.granularity or ctx.topology.cores_per_node
            ctrl = MoldabilityController(
                topology=ctx.topology,
                distances=ctx.distances,
                granularity=g,
                allowed_nodes=self.allowed_nodes,
                reexplore=self.reexplore,
                drift_threshold=self.drift_threshold,
                drift_window=self.drift_window,
            )
            self._controllers[work.uid] = ctrl
        table = ptt_all.table(work.uid)
        cfg = ctrl.next_config(table)
        self._inflight[work.uid] = (cfg, ctrl.phase, ctrl.record_next)

        chunks = partition(work)
        nodes = cfg.node_mask.indices()
        per_node = distribute_chunks(chunks, nodes, strict_fraction=self.strict_fraction)
        cores = worker_cores_for_mask(cfg.num_threads, cfg.node_mask, ctx.topology)
        core_set = set(cores)
        queues: dict[int, list[Chunk]] = {c: [] for c in cores}
        for node, node_chunks in per_node.items():
            primary = min(c for c in ctx.topology.cores_of_node(node) if c in core_set)
            queues[primary].extend(node_chunks)

        allow_inter = cfg.steal_policy is StealPolicyMode.FULL
        return TaskloopPlan(
            worker_cores=cores,
            initial_queues=queues,
            policy=HierarchicalStealPolicy(allow_inter_node=allow_inter),
            owner_lifo=False,
            num_threads=cfg.num_threads,
            node_mask_bits=cfg.node_mask.bits,
            steal_mode=cfg.steal_policy.value,
            extra_overhead=ctx.params.ilan_select + ctx.params.ilan_ptt_update,
        )

    def record(self, work: TaskloopWork, plan: TaskloopPlan, result: TaskloopResult) -> None:
        cfg, phase_at_plan, recorded = self._inflight.pop(work.uid)
        ctrl = self._controllers[work.uid]
        table = self.ptt.table(work.uid)
        cost = self._cost(result)
        if (
            phase_at_plan is Phase.SETTLED
            and recorded
            and ctrl.note_settled_time(table, cfg.key, cost)
        ):
            # drift tripped: the table was invalidated and the lifecycle
            # restarted; the triggering sample describes the old machine,
            # so it is neither recorded nor counted as an observation
            return
        k_before = ctrl.k
        if recorded:
            table.record(cfg.key, cost, result.node_perf)
        ctrl.observe(recorded)
        if (
            self.use_counters
            and recorded
            and k_before == 0
            and result.counters is not None
        ):
            # first recorded (full-machine) execution: let the counter
            # sample decide whether the thread-count search is worth it
            from repro.counters.hints import hint_from_counters

            ctrl.skip_search = hint_from_counters(result.counters).skip_search
        if phase_at_plan is Phase.TRIAL:
            ctrl.finish_trial(table)

    def _cost(self, result: TaskloopResult) -> float:
        """The objective value the PTT stores for this execution."""
        if self.objective == "time":
            return result.elapsed
        assert self.energy_model is not None
        if self.objective == "energy":
            return self.energy_model.taskloop_energy(result)
        return self.energy_model.taskloop_edp(result)


class IlanAdaptiveScheduler(IlanScheduler):
    """ILAN with drift-triggered PTT re-exploration enabled.

    Identical to :class:`IlanScheduler` until a settled taskloop's
    measured times drift beyond ``drift_threshold`` for ``drift_window``
    consecutive encounters — then the stale PTT is invalidated and the
    thread-count search re-runs against the machine as it now is.  This is
    the scheduler to compare against frozen-PTT ILAN under dynamic
    asymmetry (``--asym-spec``).
    """

    name = "ilan-adaptive"

    def __init__(
        self,
        granularity: int | None = None,
        strict_fraction: float = DEFAULT_STRICT_FRACTION,
        use_counters: bool = False,
        objective: str = "time",
        energy_model: "EnergyModel | None" = None,
        allowed_nodes: NodeMask | None = None,
        reexplore: bool = True,
        drift_threshold: float = 0.3,
        drift_window: int = 2,
    ):
        super().__init__(
            granularity=granularity,
            strict_fraction=strict_fraction,
            use_counters=use_counters,
            objective=objective,
            energy_model=energy_model,
            allowed_nodes=allowed_nodes,
            reexplore=reexplore,
            drift_threshold=drift_threshold,
            drift_window=drift_window,
        )


class IlanNoMoldScheduler(Scheduler):
    """ILAN without moldability: hierarchical scheduling on all cores.

    Reproduces the Section 5.3 configuration — "all 64 cores were always
    utilized" — isolating the contribution of the hierarchical task
    distribution from the interference-driven thread molding.
    """

    name = "ilan-nomold"

    def __init__(self, strict_fraction: float = DEFAULT_STRICT_FRACTION):
        self.strict_fraction = strict_fraction

    def plan(self, work: TaskloopWork, ctx: RunContext) -> TaskloopPlan:
        topo = ctx.topology
        mask = NodeMask.for_topology(topo)
        cores = list(topo.core_ids())
        chunks = partition(work)
        per_node = distribute_chunks(
            chunks, list(topo.node_ids()), strict_fraction=self.strict_fraction
        )
        queues: dict[int, list[Chunk]] = {c: [] for c in cores}
        for node, node_chunks in per_node.items():
            queues[topo.primary_core_of_node(node)].extend(node_chunks)
        return TaskloopPlan(
            worker_cores=cores,
            initial_queues=queues,
            policy=HierarchicalStealPolicy(allow_inter_node=True),
            owner_lifo=False,
            num_threads=len(cores),
            node_mask_bits=mask.bits,
            steal_mode=StealPolicyMode.FULL.value,
        )


register_scheduler("ilan", IlanScheduler)
register_scheduler("ilan-adaptive", IlanAdaptiveScheduler)
register_scheduler("ilan-nomold", IlanNoMoldScheduler)
