"""The Performance Trace Table (PTT).

The PTT links taskloop configurations to measured execution times and
per-node performance.  ILAN consults it during the exploration stage to
pick the next configuration (Algorithm 1) and, once exploration finishes,
to fix the optimal configuration for the rest of the application
(Section 3.1).

One :class:`TaskloopPTT` exists per taskloop callsite; running statistics
use Welford's algorithm so means and variances are numerically stable over
hundreds of encounters.  Per-node throughput is an exponential moving
average so the node ranking adapts if dynamic asymmetry shifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PTT_WIRE_VERSION", "ExecStats", "TaskloopPTT", "PerformanceTraceTable"]

ConfigKey = tuple[int, int, str]  # (num_threads, node_mask_bits, steal_policy)

#: Schema version of the PTT wire documents produced by
#: :meth:`TaskloopPTT.to_wire`; importers refuse documents from a
#: different schema instead of guessing at their fields.
PTT_WIRE_VERSION = 1


@dataclass
class ExecStats:
    """Running execution-time statistics of one configuration."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min_time: float = float("inf")

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"execution time cannot be negative: {value}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min_time = min(self.min_time, value)

    @property
    def variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return self.variance**0.5


@dataclass
class TaskloopPTT:
    """PTT rows for one taskloop callsite."""

    num_nodes: int
    entries: dict[ConfigKey, ExecStats] = field(default_factory=dict)
    node_perf: np.ndarray | None = None
    executions: int = 0
    node_perf_alpha: float = 0.5
    #: bumped by :meth:`invalidate`; lets tests and diagnostics tell a
    #: re-learned entry from a resurrected one
    generation: int = 0

    def __post_init__(self) -> None:
        if self.node_perf is None:
            self.node_perf = np.full(self.num_nodes, np.nan)

    # ------------------------------------------------------------------
    def record(self, key: ConfigKey, elapsed: float, node_perf: np.ndarray | None = None) -> None:
        """Record one execution under configuration ``key``."""
        stats = self.entries.get(key)
        if stats is None:
            stats = ExecStats()
            self.entries[key] = stats
        stats.add(elapsed)
        self.executions += 1
        if node_perf is not None:
            self._update_node_perf(np.asarray(node_perf, dtype=np.float64))

    def _update_node_perf(self, obs: np.ndarray) -> None:
        if obs.shape != (self.num_nodes,):
            raise ConfigurationError(
                f"node_perf must have {self.num_nodes} entries, got {obs.shape}"
            )
        cur = self.node_perf
        seen = ~np.isnan(obs)
        fresh = seen & np.isnan(cur)
        blend = seen & ~np.isnan(cur)
        cur[fresh] = obs[fresh]
        a = self.node_perf_alpha
        cur[blend] = (1.0 - a) * cur[blend] + a * obs[blend]

    # ------------------------------------------------------------------
    def best_time_per_thread_count(self, policy: str | None = "strict") -> dict[int, float]:
        """Fastest mean time for each explored thread count.

        Exploration runs strictly intra-node, so Algorithm 1 compares
        ``strict`` entries by default; pass ``None`` to consider all.
        """
        out: dict[int, float] = {}
        for (threads, _mask, pol), stats in self.entries.items():
            if policy is not None and pol != policy:
                continue
            if stats.count == 0:
                continue
            cur = out.get(threads)
            if cur is None or stats.mean < cur:
                out[threads] = stats.mean
        return out

    def fastest_two(self, policy: str | None = "strict") -> tuple[tuple[int, float], tuple[int, float]]:
        """``GetFastest``/``GetSecondFastest`` over distinct thread counts.

        Returns ``((best_threads, best_time), (second_threads, second_time))``;
        raises if fewer than two thread counts have been explored.
        """
        per = self.best_time_per_thread_count(policy)
        if len(per) < 2:
            raise ConfigurationError(
                f"need two explored thread counts, have {sorted(per)}"
            )
        ranked = sorted(per.items(), key=lambda kv: (kv[1], kv[0]))
        return ranked[0], ranked[1]

    def mean_time(self, key: ConfigKey) -> float | None:
        stats = self.entries.get(key)
        return stats.mean if stats is not None and stats.count else None

    def invalidate(self) -> None:
        """Drop every timing entry; the machine they describe is gone.

        Called by drift-triggered re-exploration (see
        :meth:`repro.core.moldability.MoldabilityController.note_settled_time`).
        The node-performance EMA is deliberately *kept*: it already adapts
        exponentially and seeds the re-exploration's node choice, whereas
        stale timing means would anchor Algorithm 1 to dead data.
        """
        self.entries.clear()
        self.generation += 1

    def fastest_node(self) -> int:
        """Node with the best observed throughput (falls back to node 0)."""
        perf = self.node_perf
        if np.all(np.isnan(perf)):
            return 0
        return int(np.nanargmax(perf))

    # ------------------------------------------------------------------
    # wire serialization (federation warm-state migration)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """Versioned JSON-safe document of this table's learned state.

        Everything a new owner needs to resume warm: the timing entries
        (Welford triples, so merged statistics stay exact), the per-node
        throughput EMA (``NaN`` encoded as ``None`` — JSON has no NaN),
        and the generation counter that guards against resurrecting
        entries a later invalidation already declared dead.
        """
        return {
            "version": PTT_WIRE_VERSION,
            "num_nodes": self.num_nodes,
            "generation": self.generation,
            "executions": self.executions,
            "node_perf_alpha": self.node_perf_alpha,
            "node_perf": [
                None if np.isnan(v) else float(v) for v in self.node_perf
            ],
            "entries": [
                {
                    "threads": threads,
                    "mask_bits": mask_bits,
                    "policy": policy,
                    "count": stats.count,
                    "mean": stats.mean,
                    "m2": stats.m2,
                    "min_time": stats.min_time,
                }
                for (threads, mask_bits, policy), stats in sorted(
                    self.entries.items()
                )
                if stats.count > 0
            ],
        }

    @classmethod
    def from_wire(cls, doc: dict) -> "TaskloopPTT":
        """Reconstruct a table from :meth:`to_wire` output.

        Raises :class:`~repro.errors.ConfigurationError` on an unknown
        schema version or a malformed document; never guesses.
        """
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"PTT wire document must be an object, got {type(doc).__name__}"
            )
        if doc.get("version") != PTT_WIRE_VERSION:
            raise ConfigurationError(
                f"unsupported PTT wire version {doc.get('version')!r} "
                f"(this build speaks {PTT_WIRE_VERSION})"
            )
        num_nodes = doc.get("num_nodes")
        if not isinstance(num_nodes, int) or num_nodes < 1:
            raise ConfigurationError(
                f"PTT wire document needs a positive 'num_nodes', got {num_nodes!r}"
            )
        perf_list = doc.get("node_perf")
        if not isinstance(perf_list, list) or len(perf_list) != num_nodes:
            raise ConfigurationError(
                f"PTT wire 'node_perf' must list {num_nodes} values"
            )
        table = cls(
            num_nodes=num_nodes,
            executions=int(doc.get("executions", 0)),
            node_perf_alpha=float(doc.get("node_perf_alpha", 0.5)),
            generation=int(doc.get("generation", 0)),
        )
        table.node_perf = np.array(
            [np.nan if v is None else float(v) for v in perf_list],
            dtype=np.float64,
        )
        for entry in doc.get("entries", ()):
            try:
                key = (int(entry["threads"]), int(entry["mask_bits"]),
                       str(entry["policy"]))
                stats = ExecStats(
                    count=int(entry["count"]),
                    mean=float(entry["mean"]),
                    m2=float(entry["m2"]),
                    min_time=float(entry["min_time"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed PTT wire entry {entry!r}: {exc}"
                ) from exc
            if stats.count < 1:
                raise ConfigurationError(
                    f"PTT wire entry {key} carries no observations"
                )
            table.entries[key] = stats
        return table

    def import_wire(self, doc: dict) -> bool:
        """Adopt the state of a wire document into this table.

        The *generation guard*: a document older than this table's
        current generation describes entries an invalidation already
        declared dead — importing it would resurrect stale timings on a
        respawned shard — so it is refused (returns ``False``, table
        untouched).  A document at or above the current generation
        replaces the entries, EMA and counters wholesale and returns
        ``True``.
        """
        incoming = TaskloopPTT.from_wire(doc)
        if incoming.num_nodes != self.num_nodes:
            raise ConfigurationError(
                f"PTT wire document describes {incoming.num_nodes} node(s), "
                f"this table has {self.num_nodes}"
            )
        if incoming.generation < self.generation:
            return False
        self.entries = incoming.entries
        self.node_perf = incoming.node_perf
        self.executions = incoming.executions
        self.node_perf_alpha = incoming.node_perf_alpha
        self.generation = incoming.generation
        return True


class PerformanceTraceTable:
    """All per-taskloop PTTs of one scheduler instance."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self._tables: dict[str, TaskloopPTT] = {}

    def table(self, uid: str) -> TaskloopPTT:
        """PTT for taskloop ``uid``, created on first use."""
        t = self._tables.get(uid)
        if t is None:
            t = TaskloopPTT(num_nodes=self.num_nodes)
            self._tables[uid] = t
        return t

    def __contains__(self, uid: str) -> bool:
        return uid in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def uids(self) -> list[str]:
        return sorted(self._tables)

    def clear(self) -> None:
        self._tables.clear()

    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """Every callsite's table as one versioned document."""
        return {
            "version": PTT_WIRE_VERSION,
            "num_nodes": self.num_nodes,
            "tables": {uid: self._tables[uid].to_wire() for uid in self.uids()},
        }

    @classmethod
    def from_wire(cls, doc: dict) -> "PerformanceTraceTable":
        if not isinstance(doc, dict) or doc.get("version") != PTT_WIRE_VERSION:
            raise ConfigurationError(
                f"unsupported PTT wire version "
                f"{doc.get('version') if isinstance(doc, dict) else doc!r}"
            )
        ptt = cls(int(doc["num_nodes"]))
        for uid, table_doc in (doc.get("tables") or {}).items():
            table = TaskloopPTT.from_wire(table_doc)
            if table.num_nodes != ptt.num_nodes:
                raise ConfigurationError(
                    f"table {uid!r} describes {table.num_nodes} node(s), "
                    f"the registry has {ptt.num_nodes}"
                )
            ptt._tables[str(uid)] = table
        return ptt
