"""The Performance Trace Table (PTT).

The PTT links taskloop configurations to measured execution times and
per-node performance.  ILAN consults it during the exploration stage to
pick the next configuration (Algorithm 1) and, once exploration finishes,
to fix the optimal configuration for the rest of the application
(Section 3.1).

One :class:`TaskloopPTT` exists per taskloop callsite; running statistics
use Welford's algorithm so means and variances are numerically stable over
hundreds of encounters.  Per-node throughput is an exponential moving
average so the node ranking adapts if dynamic asymmetry shifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ExecStats", "TaskloopPTT", "PerformanceTraceTable"]

ConfigKey = tuple[int, int, str]  # (num_threads, node_mask_bits, steal_policy)


@dataclass
class ExecStats:
    """Running execution-time statistics of one configuration."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min_time: float = float("inf")

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"execution time cannot be negative: {value}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min_time = min(self.min_time, value)

    @property
    def variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return self.variance**0.5


@dataclass
class TaskloopPTT:
    """PTT rows for one taskloop callsite."""

    num_nodes: int
    entries: dict[ConfigKey, ExecStats] = field(default_factory=dict)
    node_perf: np.ndarray | None = None
    executions: int = 0
    node_perf_alpha: float = 0.5
    #: bumped by :meth:`invalidate`; lets tests and diagnostics tell a
    #: re-learned entry from a resurrected one
    generation: int = 0

    def __post_init__(self) -> None:
        if self.node_perf is None:
            self.node_perf = np.full(self.num_nodes, np.nan)

    # ------------------------------------------------------------------
    def record(self, key: ConfigKey, elapsed: float, node_perf: np.ndarray | None = None) -> None:
        """Record one execution under configuration ``key``."""
        stats = self.entries.get(key)
        if stats is None:
            stats = ExecStats()
            self.entries[key] = stats
        stats.add(elapsed)
        self.executions += 1
        if node_perf is not None:
            self._update_node_perf(np.asarray(node_perf, dtype=np.float64))

    def _update_node_perf(self, obs: np.ndarray) -> None:
        if obs.shape != (self.num_nodes,):
            raise ConfigurationError(
                f"node_perf must have {self.num_nodes} entries, got {obs.shape}"
            )
        cur = self.node_perf
        seen = ~np.isnan(obs)
        fresh = seen & np.isnan(cur)
        blend = seen & ~np.isnan(cur)
        cur[fresh] = obs[fresh]
        a = self.node_perf_alpha
        cur[blend] = (1.0 - a) * cur[blend] + a * obs[blend]

    # ------------------------------------------------------------------
    def best_time_per_thread_count(self, policy: str | None = "strict") -> dict[int, float]:
        """Fastest mean time for each explored thread count.

        Exploration runs strictly intra-node, so Algorithm 1 compares
        ``strict`` entries by default; pass ``None`` to consider all.
        """
        out: dict[int, float] = {}
        for (threads, _mask, pol), stats in self.entries.items():
            if policy is not None and pol != policy:
                continue
            if stats.count == 0:
                continue
            cur = out.get(threads)
            if cur is None or stats.mean < cur:
                out[threads] = stats.mean
        return out

    def fastest_two(self, policy: str | None = "strict") -> tuple[tuple[int, float], tuple[int, float]]:
        """``GetFastest``/``GetSecondFastest`` over distinct thread counts.

        Returns ``((best_threads, best_time), (second_threads, second_time))``;
        raises if fewer than two thread counts have been explored.
        """
        per = self.best_time_per_thread_count(policy)
        if len(per) < 2:
            raise ConfigurationError(
                f"need two explored thread counts, have {sorted(per)}"
            )
        ranked = sorted(per.items(), key=lambda kv: (kv[1], kv[0]))
        return ranked[0], ranked[1]

    def mean_time(self, key: ConfigKey) -> float | None:
        stats = self.entries.get(key)
        return stats.mean if stats is not None and stats.count else None

    def invalidate(self) -> None:
        """Drop every timing entry; the machine they describe is gone.

        Called by drift-triggered re-exploration (see
        :meth:`repro.core.moldability.MoldabilityController.note_settled_time`).
        The node-performance EMA is deliberately *kept*: it already adapts
        exponentially and seeds the re-exploration's node choice, whereas
        stale timing means would anchor Algorithm 1 to dead data.
        """
        self.entries.clear()
        self.generation += 1

    def fastest_node(self) -> int:
        """Node with the best observed throughput (falls back to node 0)."""
        perf = self.node_perf
        if np.all(np.isnan(perf)):
            return 0
        return int(np.nanargmax(perf))


class PerformanceTraceTable:
    """All per-taskloop PTTs of one scheduler instance."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self._tables: dict[str, TaskloopPTT] = {}

    def table(self, uid: str) -> TaskloopPTT:
        """PTT for taskloop ``uid``, created on first use."""
        t = self._tables.get(uid)
        if t is None:
            t = TaskloopPTT(num_nodes=self.num_nodes)
            self._tables[uid] = t
        return t

    def __contains__(self, uid: str) -> bool:
        return uid in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def uids(self) -> list[str]:
        return sorted(self._tables)

    def clear(self) -> None:
        self._tables.clear()
