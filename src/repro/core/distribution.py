"""Hierarchical task distribution (Section 3.3).

Chunks are deterministically mapped to the configuration's NUMA nodes by
contiguous iteration blocks ("tasks are deterministically mapped to
individual NUMA nodes based on logical loop iteration indices"), exploiting
the assumption that adjacent iterations share data.  All of a node's chunks
are enqueued on the node's primary thread, in iteration order; intra-node
work stealing spreads them to the node's workers.

Per node, the initial fraction of chunks is NUMA-strict — it can never
migrate to another node — while the remaining tail is stealable across
nodes (only exercised when the taskloop runs with ``steal_policy = full``
and a whole remote node has drained its queues).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.task import Chunk

__all__ = ["distribute_chunks", "DEFAULT_STRICT_FRACTION"]

DEFAULT_STRICT_FRACTION = 0.55


def distribute_chunks(
    chunks: list[Chunk],
    nodes: list[int],
    *,
    strict_fraction: float = DEFAULT_STRICT_FRACTION,
) -> dict[int, list[Chunk]]:
    """Assign ``chunks`` to ``nodes`` in contiguous blocks.

    Returns per-node chunk lists (iteration order preserved) and marks the
    per-node strict prefix.  Chunk ``home_node``/``strict`` fields are set
    in place.

    ``nodes`` is the node-mask selection in priority order; block *j* of
    the iteration space goes to ``nodes[j]``, so the fastest node gets the
    first block.
    """
    if not nodes:
        raise ConfigurationError("distribution needs at least one node")
    if len(set(nodes)) != len(nodes):
        raise ConfigurationError("duplicate nodes in distribution target")
    if not (0.0 <= strict_fraction <= 1.0):
        raise ConfigurationError(f"strict_fraction must lie in [0, 1], got {strict_fraction}")
    if not chunks:
        raise ConfigurationError("no chunks to distribute")

    n_nodes = len(nodes)
    n_chunks = len(chunks)
    per_node: dict[int, list[Chunk]] = {node: [] for node in nodes}
    for i, chunk in enumerate(chunks):
        # contiguous blocks: chunk i -> node index floor(i * n_nodes / n_chunks)
        idx = i * n_nodes // n_chunks
        node = nodes[idx]
        chunk.home_node = node
        per_node[node].append(chunk)

    for node, node_chunks in per_node.items():
        strict_count = int(strict_fraction * len(node_chunks))
        for j, chunk in enumerate(node_chunks):
            chunk.strict = j < strict_count
    return per_node
