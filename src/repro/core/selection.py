"""Algorithm 1: taskloop thread-count selection.

A binary-search-like exploration over thread counts at granularity ``g``.
The first execution uses ``m_max`` threads, the second ``m_max / 2``; from
the third on, this module picks the midpoint between the fastest and
second-fastest explored counts until they are within one granularity step.

The paper's pseudocode has one subtle special case at ``k = 3``: when the
half-machine configuration beat the full machine, the smallest possible
configuration (``g`` threads) is explored next so that small optima are
reachable; if ``g`` equals the already-explored ``m_max / 2`` there is
nothing new to run and the search finishes immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SelectionResult", "select_next_threads", "midpoint_threads", "initial_threads"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one Algorithm 1 step.

    ``threads`` is the thread count for the next execution; when
    ``search_finished`` is set it is the final (fastest) count.
    """

    threads: int
    search_finished: bool


def initial_threads(k: int, m_max: int, g: int) -> int:
    """Thread counts of the two bootstrap executions (k = 1, 2).

    k = 1 uses the whole machine; k = 2 uses half, rounded down to the
    granularity and floored at ``g``.
    """
    _check_params(m_max, g)
    if k == 1:
        return m_max
    if k == 2:
        return max(g, (m_max // 2) // g * g)
    raise ConfigurationError(f"initial_threads only defines k=1,2, got k={k}")


def midpoint_threads(best: int, second: int, g: int) -> int:
    """``lowerBound + floor((diff/2)/g) * g`` from the paper's pseudocode."""
    diff = abs(best - second)
    lower = min(best, second)
    return lower + int((diff / 2) // g) * g


def select_next_threads(
    best_per_threads: dict[int, float],
    cur_threads: int,
    k: int,
    g: int,
) -> SelectionResult:
    """One step of Algorithm 1.

    Parameters
    ----------
    best_per_threads:
        Fastest mean time per explored thread count (from the PTT).
    cur_threads:
        Thread count of the configuration that just executed.
    k:
        Index of the *upcoming* taskloop execution (the paper's iteration
        count); must be >= 3 — the bootstrap executions are handled by
        :func:`initial_threads`.
    g:
        Thread-count granularity (the NUMA node size in the paper).
    """
    if k < 3:
        raise ConfigurationError(f"Algorithm 1 requires k >= 3, got {k}")
    if g < 1:
        raise ConfigurationError(f"granularity must be >= 1, got {g}")
    if len(best_per_threads) < 2:
        raise ConfigurationError("Algorithm 1 needs at least two explored thread counts")

    ranked = sorted(best_per_threads.items(), key=lambda kv: (kv[1], kv[0]))
    best_threads = ranked[0][0]
    second_threads = ranked[1][0]
    threads_diff = abs(best_threads - second_threads)

    if k == 3 and best_threads < second_threads:
        # the smaller bootstrap config won: jump to the smallest possible
        # configuration so low-thread optima can be found
        if cur_threads == g:
            # m_max/2 == g: the smallest config already executed
            return SelectionResult(threads=best_threads, search_finished=True)
        return SelectionResult(threads=g, search_finished=False)

    if threads_diff <= g:
        # fastest and second fastest are within one granularity step:
        # the optimum is found
        return SelectionResult(threads=best_threads, search_finished=True)

    mid = midpoint_threads(best_threads, second_threads, g)
    if cur_threads == mid or mid in best_per_threads:
        # midpoint already executed: nothing between best and second left
        return SelectionResult(threads=best_threads, search_finished=True)
    return SelectionResult(threads=mid, search_finished=False)


def _check_params(m_max: int, g: int) -> None:
    if g < 1:
        raise ConfigurationError(f"granularity must be >= 1, got {g}")
    if m_max < g:
        raise ConfigurationError(f"m_max ({m_max}) must be >= granularity ({g})")
    if m_max % g:
        raise ConfigurationError(f"m_max ({m_max}) must be a multiple of granularity ({g})")
