"""``GetStealPolicy``: the one-shot inter-node stealing trial.

Section 3.2: "The ``steal_policy`` attribute is kept as *strict* ... until
the ``search_finished`` flag has been set.  Once the search is finished,
the steal policy is evaluated by allowing inter-node stealing
(``steal_policy = full``) for one execution.  After this, the
``steal_policy`` is kept as the policy that provided the highest
performance."
"""

from __future__ import annotations

from repro.core.config import StealPolicyMode
from repro.core.ptt import ConfigKey, TaskloopPTT

__all__ = ["evaluate_steal_policy"]


def evaluate_steal_policy(
    ptt: TaskloopPTT,
    threads: int,
    node_mask_bits: int,
) -> StealPolicyMode:
    """Pick the final policy after the full-stealing trial has executed.

    Compares the mean time of the settled configuration under ``strict``
    and ``full``; missing data (should not happen in a completed search)
    conservatively keeps ``strict``, the exploration default.
    """
    strict_key: ConfigKey = (threads, node_mask_bits, StealPolicyMode.STRICT.value)
    full_key: ConfigKey = (threads, node_mask_bits, StealPolicyMode.FULL.value)
    strict_time = ptt.mean_time(strict_key)
    full_time = ptt.mean_time(full_key)
    if strict_time is None and full_time is None:
        return StealPolicyMode.STRICT
    if full_time is None:
        return StealPolicyMode.STRICT
    if strict_time is None:
        return StealPolicyMode.FULL
    return StealPolicyMode.FULL if full_time < strict_time else StealPolicyMode.STRICT
