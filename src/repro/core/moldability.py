"""Per-taskloop moldability controller: the exploration state machine.

Drives one taskloop callsite through ILAN's lifecycle:

1. **warmup** — the very first encounter runs with the default
   configuration (all threads, strict) and is *not* recorded: it carries
   one-off first-touch/cold-cache costs that would otherwise bias the
   thread-count search (the paper likewise requires taskloops to execute
   "numerous times" before the optimum pays off);
2. **bootstrap** — executions k = 1 (``m_max`` threads) and k = 2
   (``m_max / 2``), both recorded;
3. **search** — Algorithm 1 picks midpoints until the fastest and
   second-fastest thread counts are within one granularity step;
4. **confirm** — if the settled (threads, mask) pair was never measured
   under ``strict`` (the mask can drift while performance data evolves),
   one strict execution fills the gap;
5. **trial** — one execution with ``steal_policy = full``;
6. **settled** — the winning configuration runs for the rest of the
   application.

When an ``allowed_nodes`` lease is set (multi-tenant service), the whole
lifecycle operates on the leased sub-machine: ``m_max`` is the lease's
core count and every node mask stays inside the lease.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.config import StealPolicyMode, TaskloopConfig
from repro.core.node_mask import get_numa_mask
from repro.core.ptt import ConfigKey, TaskloopPTT
from repro.core.selection import initial_threads, select_next_threads
from repro.core.steal_eval import evaluate_steal_policy
from repro.errors import ConfigurationError
from repro.topology.affinity import NodeMask
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology

__all__ = ["Phase", "MoldabilityController"]


class Phase(str, Enum):
    WARMUP = "warmup"
    BOOTSTRAP = "bootstrap"
    SEARCH = "search"
    CONFIRM = "confirm"
    TRIAL = "trial"
    SETTLED = "settled"


@dataclass
class MoldabilityController:
    """Exploration state for one taskloop callsite.

    Contract: each encounter calls :meth:`next_config` exactly once, runs
    the returned configuration, then calls :meth:`observe` with whether the
    execution was recorded into the PTT (warmup encounters are not).
    """

    topology: MachineTopology
    distances: DistanceMatrix
    granularity: int
    allowed_nodes: NodeMask | None = None
    phase: Phase = Phase.WARMUP
    k: int = 0  # recorded execution counter (the paper's iteration count)
    cur_threads: int = 0
    best_threads: int = 0
    settled_config: TaskloopConfig | None = None
    record_next: bool = field(default=True, init=False)
    # counter-driven shortcut (see repro.counters.hints): when set before
    # the second recorded execution, the thread-count search is skipped and
    # the full machine goes straight to the steal-policy trial
    skip_search: bool = False
    # drift-triggered re-exploration (dynamic asymmetry): once settled,
    # compare each measured time against the PTT mean for the settled
    # configuration; `drift_window` consecutive measurements more than
    # `drift_threshold` (relative) away — slower *or* faster, so the
    # machine recovering also re-learns — invalidate the table and restart
    # the lifecycle at BOOTSTRAP.  Off by default: the stock ILAN
    # scheduler keeps the paper's frozen-PTT behaviour.
    reexplore: bool = False
    drift_threshold: float = 0.3
    drift_window: int = 2
    drift_count: int = field(default=0, init=False)
    reexplorations: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.allowed_nodes is not None:
            if self.allowed_nodes.width != self.topology.num_nodes:
                raise ConfigurationError(
                    f"lease mask width {self.allowed_nodes.width} does not match "
                    f"machine with {self.topology.num_nodes} nodes"
                )
            if self.allowed_nodes.is_empty():
                raise ConfigurationError("lease mask must contain at least one node")
        g = self.granularity
        m_max = self.m_max
        if g < 1 or g > m_max:
            raise ConfigurationError(f"granularity {g} out of range for {m_max} cores")
        if m_max % g:
            raise ConfigurationError(
                f"machine size {m_max} must be a multiple of granularity {g}"
            )
        if self.drift_threshold <= 0:
            raise ConfigurationError("drift_threshold must be positive")
        if self.drift_window < 1:
            raise ConfigurationError("drift_window must be >= 1")

    # ------------------------------------------------------------------
    @property
    def m_max(self) -> int:
        """Widest explorable thread count: the (leased) machine's cores."""
        if self.allowed_nodes is None:
            return self.topology.num_cores
        return sum(
            len(self.topology.cores_of_node(n)) for n in self.allowed_nodes.indices()
        )

    def next_config(self, ptt: TaskloopPTT) -> TaskloopConfig:
        """Configuration for the upcoming encounter (mutates phase state)."""
        g = self.granularity
        m_max = self.m_max

        if self.phase is Phase.SETTLED:
            assert self.settled_config is not None
            return self.settled_config

        if self.phase is Phase.WARMUP:
            self.record_next = False
            self.cur_threads = m_max
            return self._config(m_max, ptt, StealPolicyMode.STRICT)

        self.record_next = True

        if self.phase is Phase.BOOTSTRAP:
            upcoming = self.k + 1
            if upcoming == 1:
                self.cur_threads = initial_threads(1, m_max, g)
                return self._config(self.cur_threads, ptt, StealPolicyMode.STRICT)
            if self.skip_search:
                # counters saw no contention at m_max: molding cannot pay,
                # settle the width immediately and only trial the policy
                self.best_threads = m_max
                self.phase = Phase.TRIAL
                return self._trial_config(ptt)
            second = initial_threads(2, m_max, g)
            if second == m_max:
                # the machine cannot be halved at this granularity: the
                # search space has one point, settle straight into the trial
                self.best_threads = m_max
                self.phase = Phase.TRIAL
                return self._trial_config(ptt)
            self.cur_threads = second
            self.phase = Phase.SEARCH
            return self._config(second, ptt, StealPolicyMode.STRICT)

        if self.phase is Phase.SEARCH:
            per = ptt.best_time_per_thread_count(policy=StealPolicyMode.STRICT.value)
            sel = select_next_threads(per, self.cur_threads, self.k + 1, g)
            if sel.search_finished:
                self.best_threads = sel.threads
                return self._enter_post_search(ptt)
            self.cur_threads = sel.threads
            return self._config(sel.threads, ptt, StealPolicyMode.STRICT)

        if self.phase is Phase.CONFIRM:
            return self._config(self.best_threads, ptt, StealPolicyMode.STRICT)

        if self.phase is Phase.TRIAL:
            return self._trial_config(ptt)

        raise ConfigurationError(f"unhandled phase {self.phase}")  # pragma: no cover

    def observe(self, recorded: bool) -> None:
        """Advance the state machine after an encounter completed."""
        if recorded:
            self.k += 1
        if self.phase is Phase.WARMUP:
            self.phase = Phase.BOOTSTRAP
        elif self.phase is Phase.CONFIRM:
            self.phase = Phase.TRIAL

    def note_settled_time(
        self, ptt: TaskloopPTT, key: ConfigKey, elapsed: float
    ) -> bool:
        """Drift check for one settled-phase measurement; True = re-explore.

        Called *before* the measurement is recorded, so a drifting machine
        cannot drag the settled mean along with it and mask its own drift.
        When ``drift_window`` consecutive measurements deviate from the
        PTT mean by more than ``drift_threshold`` (relative, either
        direction), the table is invalidated and the lifecycle restarts at
        BOOTSTRAP (the application is warm; no second WARMUP).  The
        triggering measurement is deliberately not recorded: it describes
        the machine the invalidation just declared dead.
        """
        if not self.reexplore or self.phase is not Phase.SETTLED:
            return False
        mean = ptt.mean_time(key)
        if mean is None or mean <= 0:
            return False
        if abs(elapsed - mean) / mean > self.drift_threshold:
            self.drift_count += 1
            if self.drift_count >= self.drift_window:
                self._reexplore(ptt)
                return True
        else:
            self.drift_count = 0
        return False

    def _reexplore(self, ptt: TaskloopPTT) -> None:
        """Invalidate the PTT and restart the exploration lifecycle."""
        ptt.invalidate()
        self.phase = Phase.BOOTSTRAP
        self.k = 0
        self.cur_threads = 0
        self.best_threads = 0
        self.settled_config = None
        self.skip_search = False
        self.drift_count = 0
        self.reexplorations += 1

    # ------------------------------------------------------------------
    # state export/restore (federation warm-state migration)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-safe snapshot of the exploration history.

        Everything the lifecycle learned that is not in the PTT itself:
        the phase, the recorded-execution count, the thread-search
        position, the settled configuration and the drift counters.
        Topology, distances and lease are *not* exported — they belong to
        the machine, and a restore target supplies its own.
        """
        settled = None
        if self.settled_config is not None:
            settled = {
                "threads": self.settled_config.num_threads,
                "mask_bits": self.settled_config.node_mask.bits,
                "policy": self.settled_config.steal_policy.value,
            }
        return {
            "phase": self.phase.value,
            "k": self.k,
            "cur_threads": self.cur_threads,
            "best_threads": self.best_threads,
            "skip_search": self.skip_search,
            "settled": settled,
            "drift_count": self.drift_count,
            "reexplorations": self.reexplorations,
        }

    def restore_state(self, doc: dict) -> None:
        """Resume the lifecycle from :meth:`export_state` output.

        The settled node mask is re-validated against *this* controller's
        machine and lease: a configuration that no longer fits (different
        node count, outside the lease) refuses to restore instead of
        producing an unrunnable plan.
        """
        try:
            phase = Phase(doc["phase"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed moldability state document: {exc}"
            ) from exc
        settled_doc = doc.get("settled")
        settled = None
        if settled_doc is not None:
            mask = NodeMask(int(settled_doc["mask_bits"]), self.topology.num_nodes)
            if self.allowed_nodes is not None and not mask.is_subset(
                self.allowed_nodes
            ):
                raise ConfigurationError(
                    f"settled mask {mask} escapes the lease {self.allowed_nodes}"
                )
            settled = TaskloopConfig(
                int(settled_doc["threads"]),
                mask,
                StealPolicyMode(settled_doc["policy"]),
            )
        if phase is Phase.SETTLED and settled is None:
            raise ConfigurationError(
                "settled phase requires a settled configuration"
            )
        self.phase = phase
        self.k = int(doc.get("k", 0))
        self.cur_threads = int(doc.get("cur_threads", 0))
        self.best_threads = int(doc.get("best_threads", 0))
        self.skip_search = bool(doc.get("skip_search", False))
        self.settled_config = settled
        self.drift_count = int(doc.get("drift_count", 0))
        self.reexplorations = int(doc.get("reexplorations", 0))
        self.record_next = phase is not Phase.WARMUP

    def finish_trial(self, ptt: TaskloopPTT) -> None:
        """After the full-stealing trial: fix the final configuration."""
        if self.phase is not Phase.TRIAL:
            raise ConfigurationError(f"finish_trial called in phase {self.phase}")
        mask = self._mask(self.best_threads, ptt)
        policy = evaluate_steal_policy(ptt, self.best_threads, mask.bits)
        self.settled_config = TaskloopConfig(self.best_threads, mask, policy)
        self.phase = Phase.SETTLED

    # ------------------------------------------------------------------
    def _mask(self, threads: int, ptt: TaskloopPTT) -> "NodeMask":
        return get_numa_mask(
            threads, ptt, self.topology, self.distances, allowed=self.allowed_nodes
        )

    def _enter_post_search(self, ptt: TaskloopPTT) -> TaskloopConfig:
        """Search finished: go to CONFIRM if the settled strict point is
        missing from the PTT, else straight to the TRIAL."""
        mask = self._mask(self.best_threads, ptt)
        strict_key = (self.best_threads, mask.bits, StealPolicyMode.STRICT.value)
        if ptt.mean_time(strict_key) is None:
            self.phase = Phase.CONFIRM
            self.cur_threads = self.best_threads
            return TaskloopConfig(self.best_threads, mask, StealPolicyMode.STRICT)
        self.phase = Phase.TRIAL
        self.cur_threads = self.best_threads
        return TaskloopConfig(self.best_threads, mask, StealPolicyMode.FULL)

    def _trial_config(self, ptt: TaskloopPTT) -> TaskloopConfig:
        mask = self._mask(self.best_threads, ptt)
        self.cur_threads = self.best_threads
        return TaskloopConfig(self.best_threads, mask, StealPolicyMode.FULL)

    def _config(
        self, threads: int, ptt: TaskloopPTT, policy: StealPolicyMode
    ) -> TaskloopConfig:
        return TaskloopConfig(threads, self._mask(threads, ptt), policy)
