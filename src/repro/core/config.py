"""Taskloop configurations: the triple ILAN tunes per taskloop.

Section 3.1 of the paper: "The execution of each taskloop is controlled by
three parameters: (1) the number of active threads ``num_threads``, (2) a
bitmap defining active NUMA nodes ``node_mask``, and (3) a task steal
policy ``steal_policy`` specifying whether inter-node stealing is permitted
(*full*) or restricted to intra-node stealing (*strict*)."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.topology.affinity import NodeMask

__all__ = ["StealPolicyMode", "TaskloopConfig"]


class StealPolicyMode(str, Enum):
    """Whether tasks may be stolen across NUMA nodes."""

    STRICT = "strict"  # intra-node stealing only
    FULL = "full"      # inter-node stealing permitted for stealable tasks


@dataclass(frozen=True)
class TaskloopConfig:
    """One point in ILAN's per-taskloop configuration space."""

    num_threads: int
    node_mask: NodeMask
    steal_policy: StealPolicyMode

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.node_mask.is_empty():
            raise ConfigurationError("node_mask must select at least one node")

    @property
    def key(self) -> tuple[int, int, str]:
        """Hashable PTT key: (threads, node mask bits, steal policy)."""
        return (self.num_threads, self.node_mask.bits, self.steal_policy.value)

    def with_policy(self, policy: StealPolicyMode) -> "TaskloopConfig":
        return TaskloopConfig(self.num_threads, self.node_mask, policy)

    def describe(self) -> str:
        return (
            f"threads={self.num_threads} nodes={self.node_mask} "
            f"steal={self.steal_policy.value}"
        )
