"""NPB LU (Lower-Upper Gauss-Seidel solver) workload model.

LU performs pipelined wavefront sweeps (SSOR): blocked access with decent
reuse, a triangular work profile from the wavefront ramp-up/drain, and
moderate memory pressure.  The paper reports a modest ILAN speedup and one
of the clearest variability reductions (Table 1: 0.0169 -> 0.0045).
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, RegionSpec, TaskloopSpec
from repro.workloads.npb.common import DEFAULT_TIMESTEPS, MIB

__all__ = ["make_lu"]


def make_lu(timesteps: int = DEFAULT_TIMESTEPS) -> Application:
    """The LU model: lower and upper triangular sweeps plus the RHS."""
    return Application(
        name="lu",
        regions=[RegionSpec("grid", 640 * MIB)],
        loops=[
            TaskloopSpec(
                name="lower_sweep",
                region="grid",
                work_seconds=0.35,
                mem_frac=0.40,
                pattern=AccessPattern.strided(0.85),
                reuse=0.20,
                gamma=0.50,
                imbalance="linear",
                imbalance_cv=0.15,
            ),
            TaskloopSpec(
                name="upper_sweep",
                region="grid",
                work_seconds=0.35,
                mem_frac=0.40,
                pattern=AccessPattern.strided(0.85),
                reuse=0.20,
                gamma=0.50,
                imbalance="linear",
                imbalance_cv=0.15,
            ),
            TaskloopSpec(
                name="rhs",
                region="grid",
                work_seconds=0.20,
                mem_frac=0.30,
                pattern=AccessPattern.blocked(),
                reuse=0.15,
                gamma=0.35,
                imbalance="uniform",
            ),
        ],
        timesteps=timesteps,
        serial_seconds=1.0e-4,
    )
