"""Shared construction helpers for the NAS Parallel Benchmark models.

The models follow the C++ NPB port of Löff et al. used by the paper
(class D inputs) with the iteration counts scaled down for simulation —
the paper runs 200 outer iterations of most codes; the models default to
50, which is still an order of magnitude more than ILAN's exploration
needs (see EXPERIMENTS.md for the scale-down table).
"""

from __future__ import annotations

from repro.workloads.base import MIB

__all__ = ["DEFAULT_TIMESTEPS", "MIB", "GIB_B"]

DEFAULT_TIMESTEPS = 50
GIB_B = 1024 * MIB
