"""NPB SP (Scalar Penta-diagonal solver) workload model.

SP streams many solution arrays per sweep with little arithmetic per byte:
the most bandwidth-hungry of the suite, with an irregular enough access
mix to pay a steep superlinear contention penalty when all 64 cores pile
onto the memory controllers.  This is the paper's headline moldability
result: ILAN molds the thread count down and gains +45.8% (Figure 2), and
most of that gain disappears in the no-moldability ablation (Figure 4).
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, RegionSpec, TaskloopSpec
from repro.workloads.npb.common import DEFAULT_TIMESTEPS, MIB

__all__ = ["make_sp"]


def make_sp(timesteps: int = DEFAULT_TIMESTEPS) -> Application:
    """The SP model: three directional sweeps, all bandwidth-bound."""
    loops = []
    for axis in ("x", "y", "z"):
        loops.append(
            TaskloopSpec(
                name=f"{axis}_sweep",
                region="fields",
                work_seconds=0.40,
                mem_frac=0.80,
                pattern=AccessPattern.strided(0.35),
                reuse=0.15,
                gamma=1.60,
                imbalance="linear",
                imbalance_cv=0.10,
            )
        )
    return Application(
        name="sp",
        regions=[RegionSpec("fields", 768 * MIB)],
        loops=loops,
        timesteps=timesteps,
        serial_seconds=1.2e-4,
    )
