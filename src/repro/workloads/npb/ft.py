"""NPB FT (3-D FFT) workload model.

FT alternates butterfly passes with good per-pencil locality and transpose
steps with extensive long-distance communication.  The workload is
perfectly balanced, so it scales to the full machine: the paper measures
ILAN keeping all 64 cores (Figure 3) and winning +12.3% purely from
hierarchical locality, while static work sharing — ideal for balanced
loops — beats even ILAN (Figure 6).
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, RegionSpec, TaskloopSpec
from repro.workloads.npb.common import DEFAULT_TIMESTEPS, GIB_B

__all__ = ["make_ft"]


def make_ft(timesteps: int = DEFAULT_TIMESTEPS) -> Application:
    """The FT model: FFT pencils plus the transpose step.

    The paper raises FT's iteration count from 25 to 200 to give the
    exploration room; the model keeps the default scaled timestep count.
    """
    return Application(
        name="ft",
        regions=[RegionSpec("grid", 1 * GIB_B)],
        loops=[
            TaskloopSpec(
                name="fft_pencils",
                region="grid",
                work_seconds=0.50,
                mem_frac=0.50,
                pattern=AccessPattern.strided(0.65),
                reuse=0.38,
                gamma=0.25,
                imbalance="uniform",
            ),
            TaskloopSpec(
                name="transpose",
                region="grid",
                work_seconds=0.30,
                mem_frac=0.65,
                pattern=AccessPattern.strided(0.30),
                reuse=0.25,
                gamma=0.30,
                imbalance="uniform",
            ),
        ],
        timesteps=timesteps,
        serial_seconds=1.0e-4,
    )
