"""NPB BT (Block Tri-diagonal solver) workload model.

BT sweeps the 3-D grid along each axis with dense 5x5 block operations:
strongly blocked access with substantial cache reuse between sweeps and a
mild structural imbalance.  The paper's largest locality-only win: +16.9%
with all 64 cores kept (no moldability engaged).
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, RegionSpec, TaskloopSpec
from repro.workloads.npb.common import DEFAULT_TIMESTEPS, MIB

__all__ = ["make_bt"]


def make_bt(timesteps: int = DEFAULT_TIMESTEPS) -> Application:
    """The BT model: x/y/z solve sweeps over the structured grid."""
    loops = []
    for axis in ("x", "y", "z"):
        loops.append(
            TaskloopSpec(
                name=f"{axis}_solve",
                region="grid",
                work_seconds=0.35,
                mem_frac=0.40,
                # the z sweep strides across pencils: less blocked than x/y
                pattern=AccessPattern.strided(0.9 if axis != "z" else 0.7),
                reuse=0.40,
                gamma=0.30,
                imbalance="linear",
                imbalance_cv=0.15,
            )
        )
    return Application(
        name="bt",
        regions=[RegionSpec("grid", 768 * MIB)],
        loops=loops,
        timesteps=timesteps,
        serial_seconds=1.2e-4,
    )
