"""NAS Parallel Benchmark workload models (CG, FT, BT, SP, LU)."""

from repro.workloads.npb.bt import make_bt
from repro.workloads.npb.cg import make_cg
from repro.workloads.npb.common import DEFAULT_TIMESTEPS
from repro.workloads.npb.ft import make_ft
from repro.workloads.npb.lu import make_lu
from repro.workloads.npb.sp import make_sp

__all__ = ["make_bt", "make_cg", "make_ft", "make_lu", "make_sp", "DEFAULT_TIMESTEPS"]
