"""NPB CG (Conjugate Gradient) workload model.

CG's core is a sparse matrix-vector product over an unstructured matrix:
indirect indexing makes its memory accesses effectively uniform over the
data (no placement helps), strongly memory-bound, with a superlinear
contention penalty (row-buffer thrash under irregular streams), and an
imbalanced row distribution (nonzeros per row vary widely).

Expected behaviour under the schedulers (paper Sections 5.2/5.3/5.6):
moldability pays off — ILAN settles at ~25 of 64 cores for a +8% win;
hierarchical-only ILAN *loses* to the baseline (strict placement fights
the imbalance the baseline's random stealing absorbs); static work
sharing suffers the imbalance most.
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, RegionSpec, TaskloopSpec
from repro.workloads.npb.common import DEFAULT_TIMESTEPS, MIB

__all__ = ["make_cg"]


def make_cg(timesteps: int = DEFAULT_TIMESTEPS) -> Application:
    """The CG model: sparse matvec plus the dot-product/axpy phase."""
    return Application(
        name="cg",
        regions=[RegionSpec("matrix", 512 * MIB)],
        loops=[
            TaskloopSpec(
                name="spmv",
                region="matrix",
                work_seconds=0.40,
                mem_frac=0.75,
                pattern=AccessPattern.uniform(),
                reuse=0.10,
                gamma=1.30,
                imbalance="clustered",
                imbalance_cv=0.80,
            ),
            TaskloopSpec(
                name="axpy_dot",
                region="matrix",
                work_seconds=0.12,
                mem_frac=0.55,
                pattern=AccessPattern.uniform(),
                reuse=0.10,
                gamma=0.80,
                imbalance="irregular",
                imbalance_cv=0.50,
            ),
        ],
        timesteps=timesteps,
        serial_seconds=1.5e-4,
    )
