"""Benchmark workload models and the workload-construction toolkit.

The seven paper benchmarks (NPB CG/FT/BT/SP/LU, LULESH, Matmul) are
calibrated models exposing the properties the evaluation depends on; the
synthetic generator and the for->taskloop converter support custom
workloads and the ablation studies.
"""

from repro.workloads.base import (
    Application,
    RegionSpec,
    TaskloopSpec,
    imbalance_profile,
)
from repro.workloads.convert import (
    ParallelFor,
    Program,
    Taskloop,
    convert_for_to_taskloop,
    program_to_application,
)
from repro.workloads.lulesh import make_lulesh
from repro.workloads.matmul import make_matmul
from repro.workloads.npb import make_bt, make_cg, make_ft, make_lu, make_sp
from repro.workloads.serialize import (
    application_from_dict,
    application_to_dict,
    load_application,
    save_application,
)
from repro.workloads.registry import (
    BENCHMARKS,
    PAPER_ORDER,
    benchmark_names,
    make_benchmark,
)
from repro.workloads.synthetic import make_mixed, make_synthetic

__all__ = [
    "application_from_dict",
    "application_to_dict",
    "load_application",
    "save_application",
    "Application",
    "RegionSpec",
    "TaskloopSpec",
    "imbalance_profile",
    "ParallelFor",
    "Program",
    "Taskloop",
    "convert_for_to_taskloop",
    "program_to_application",
    "make_lulesh",
    "make_matmul",
    "make_bt",
    "make_cg",
    "make_ft",
    "make_lu",
    "make_sp",
    "BENCHMARKS",
    "PAPER_ORDER",
    "benchmark_names",
    "make_benchmark",
    "make_mixed",
    "make_synthetic",
]
