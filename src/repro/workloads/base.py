"""Workload model: declarative applications made of recurring taskloops.

The paper's benchmarks are real codes; here each benchmark is a calibrated
*model* capturing the properties the evaluation depends on:

* taskloop structure (how many loops per timestep, trip counts, task
  counts) — drives scheduling decisions and overhead;
* memory intensity (``mem_frac``) and access pattern (blocked / strided /
  uniform) — drives locality sensitivity;
* contention exponent ``gamma`` — drives interference sensitivity (the
  superlinear penalty of irregular access under bandwidth saturation);
* cache-reuse potential — drives the benefit of re-running iterations on
  the node that touched their data last;
* load-imbalance profile — drives the value of dynamic load balancing.

Imbalance profiles are *program properties*: they are derived
deterministically from the application/loop names, never from the run
seed, so every scheduler sees the same work distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.memory.access import AccessPattern
from repro.memory.allocator import AllocPolicy
from repro.runtime.context import RunContext
from repro.runtime.task import SerialPhase, TaskloopWork
from repro.sim.rng import stream

__all__ = [
    "RegionSpec",
    "TaskloopSpec",
    "Application",
    "imbalance_profile",
    "PROFILE_CELLS",
    "CLUSTER_BLOCKS",
    "MIB",
]

MIB = 1024 * 1024
PROFILE_CELLS = 512
CLUSTER_BLOCKS = 16
_PROFILE_SEED = 0x11A7  # stable, independent of run seeds


def imbalance_profile(kind: str, cv: float, *, key: str, cells: int = PROFILE_CELLS) -> np.ndarray:
    """Normalised work-density profile over the iteration space.

    Kinds:

    * ``uniform`` — perfectly balanced (``cv`` ignored);
    * ``linear`` — work ramps linearly along the iteration space (typical
      of triangular loop nests); ``cv`` sets the ramp steepness;
    * ``irregular`` — per-cell lognormal weights with coefficient of
      variation ``cv`` (sparse/indirect workloads such as CG), drawn from
      a stream keyed by ``key`` so the profile is a stable property of the
      program;
    * ``clustered`` — lognormal weights drawn per *block* of adjacent
      cells (``CLUSTER_BLOCKS`` blocks over the iteration space).  Sparse
      matrices have spatially correlated row densities, so whole regions
      of the iteration space are heavy: this is the imbalance static/
      strict placement cannot absorb, while per-cell noise averages out
      over any placement.
    """
    if cells < 2:
        raise WorkloadError(f"profile needs at least 2 cells, got {cells}")
    if cv < 0:
        raise WorkloadError(f"cv must be non-negative, got {cv}")
    if kind == "uniform":
        w = np.ones(cells)
    elif kind == "linear":
        # slope chosen so std/mean == cv for the ramp a*(x - 1/2) + 1
        slope = min(cv * np.sqrt(12.0), 1.99)
        x = (np.arange(cells) + 0.5) / cells
        w = 1.0 + slope * (x - 0.5)
    elif kind == "irregular":
        if cv == 0:
            w = np.ones(cells)
        else:
            sigma2 = np.log(1.0 + cv * cv)
            rng = stream(_PROFILE_SEED, "profile", key)
            w = rng.lognormal(mean=-sigma2 / 2.0, sigma=np.sqrt(sigma2), size=cells)
    elif kind == "clustered":
        if cv == 0:
            w = np.ones(cells)
        else:
            sigma2 = np.log(1.0 + cv * cv)
            rng = stream(_PROFILE_SEED, "profile", key)
            blocks = rng.lognormal(
                mean=-sigma2 / 2.0, sigma=np.sqrt(sigma2), size=CLUSTER_BLOCKS
            )
            w = np.repeat(blocks, -(-cells // CLUSTER_BLOCKS))[:cells]
    else:
        raise WorkloadError(f"unknown imbalance kind {kind!r}")
    if np.any(w <= 0):
        w = np.maximum(w, 1e-9)
    return w / w.sum()


@dataclass(frozen=True)
class RegionSpec:
    """A named data allocation of the application."""

    name: str
    num_bytes: int
    policy: AllocPolicy = AllocPolicy.FIRST_TOUCH

    def __post_init__(self) -> None:
        if self.num_bytes <= 0:
            raise WorkloadError(f"region {self.name!r} must have positive size")


@dataclass(frozen=True)
class TaskloopSpec:
    """One taskloop callsite of the application, executed every timestep."""

    name: str
    region: str
    work_seconds: float
    mem_frac: float
    pattern: AccessPattern
    reuse: float = 0.0
    gamma: float = 0.0
    num_tasks: int = 256
    total_iters: int = 4096
    imbalance: str = "uniform"
    imbalance_cv: float = 0.0
    repeat: int = 1
    working_set_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.work_seconds <= 0:
            raise WorkloadError(f"loop {self.name!r}: work_seconds must be positive")
        if not (0.0 <= self.mem_frac <= 1.0):
            raise WorkloadError(f"loop {self.name!r}: mem_frac must lie in [0, 1]")
        if not (0.0 <= self.reuse <= 1.0):
            raise WorkloadError(f"loop {self.name!r}: reuse must lie in [0, 1]")
        if self.gamma < 0:
            raise WorkloadError(f"loop {self.name!r}: gamma must be non-negative")
        if self.num_tasks < 1 or self.total_iters < self.num_tasks:
            raise WorkloadError(f"loop {self.name!r}: bad task/iteration counts")
        if self.repeat < 1:
            raise WorkloadError(f"loop {self.name!r}: repeat must be >= 1")


@dataclass
class Application:
    """A runnable benchmark model (satisfies the runtime's app protocol)."""

    name: str
    regions: list[RegionSpec]
    loops: list[TaskloopSpec]
    timesteps: int = 50
    serial_seconds: float = 0.0
    _profiles: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.timesteps < 1:
            raise WorkloadError("timesteps must be >= 1")
        if not self.loops:
            raise WorkloadError("application needs at least one taskloop")
        region_names = {r.name for r in self.regions}
        if len(region_names) != len(self.regions):
            raise WorkloadError("duplicate region names")
        loop_names = [lp.name for lp in self.loops]
        if len(set(loop_names)) != len(loop_names):
            raise WorkloadError("duplicate taskloop names")
        for lp in self.loops:
            if lp.region not in region_names:
                raise WorkloadError(f"loop {lp.name!r} references unknown region {lp.region!r}")
        for lp in self.loops:
            self._profiles[lp.name] = imbalance_profile(
                lp.imbalance, lp.imbalance_cv, key=f"{self.name}.{lp.name}"
            )

    # ------------------------------------------------------------------
    # runtime application protocol
    # ------------------------------------------------------------------
    def setup(self, ctx: RunContext) -> None:
        """Allocate this application's data regions into the run context."""
        for spec in self.regions:
            ctx.mem.allocate(spec.name, spec.num_bytes, policy=spec.policy)

    def encounters(self, t: int, ctx: RunContext) -> Iterator[TaskloopWork | SerialPhase]:
        """Taskloop encounters of timestep ``t`` in program order."""
        if self.serial_seconds > 0:
            yield SerialPhase(self.serial_seconds)
        for spec in self.loops:
            region = ctx.mem.region(spec.region)
            for _ in range(spec.repeat):
                yield TaskloopWork(
                    uid=f"{self.name}.{spec.name}",
                    name=spec.name,
                    total_iters=spec.total_iters,
                    num_tasks=spec.num_tasks,
                    work_seconds=spec.work_seconds,
                    mem_frac=spec.mem_frac,
                    weights=self._profiles[spec.name],
                    region=region,
                    pattern=spec.pattern,
                    reuse=spec.reuse,
                    gamma=spec.gamma,
                    working_set_bytes=spec.working_set_bytes,
                )

    # ------------------------------------------------------------------
    def loop_uids(self) -> list[str]:
        return [f"{self.name}.{lp.name}" for lp in self.loops]

    def total_work_seconds(self) -> float:
        """Single-core work of one full run (sanity checks and scaling)."""
        per_step = sum(lp.work_seconds * lp.repeat for lp in self.loops)
        return self.timesteps * (per_step + self.serial_seconds)

    def with_timesteps(self, timesteps: int) -> "Application":
        """A copy of the application with a different outer trip count."""
        return Application(
            name=self.name,
            regions=list(self.regions),
            loops=list(self.loops),
            timesteps=timesteps,
            serial_seconds=self.serial_seconds,
        )


def iter_specs(apps: Iterable[Application]) -> Iterator[TaskloopSpec]:
    """All taskloop specs across ``apps`` (reporting helper)."""
    for app in apps:
        yield from app.loops
