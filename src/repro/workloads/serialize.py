"""Declarative workload definitions: Application <-> JSON.

Experiment campaigns often want workloads defined in data rather than
code (sweeps over model parameters, user-contributed workloads, archived
configurations next to results).  This module round-trips
:class:`~repro.workloads.base.Application` through plain dictionaries and
JSON files::

    {
      "name": "myapp",
      "timesteps": 50,
      "serial_seconds": 0.0001,
      "regions": [{"name": "grid", "mib": 512, "policy": "first_touch"}],
      "loops": [
        {"name": "sweep", "region": "grid", "work_seconds": 0.4,
         "mem_frac": 0.5, "blocked_fraction": 1.0, "reuse": 0.3,
         "gamma": 0.4, "imbalance": "linear", "imbalance_cv": 0.2}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import WorkloadError
from repro.memory.access import AccessPattern
from repro.memory.allocator import AllocPolicy
from repro.workloads.base import MIB, Application, RegionSpec, TaskloopSpec

__all__ = [
    "application_to_dict",
    "application_from_dict",
    "save_application",
    "load_application",
]


def application_to_dict(app: Application) -> dict[str, Any]:
    """Serialise an application model to a JSON-ready dictionary."""
    return {
        "name": app.name,
        "timesteps": app.timesteps,
        "serial_seconds": app.serial_seconds,
        "regions": [
            {
                "name": r.name,
                "mib": r.num_bytes / MIB,
                "policy": r.policy.value,
            }
            for r in app.regions
        ],
        "loops": [
            {
                "name": lp.name,
                "region": lp.region,
                "work_seconds": lp.work_seconds,
                "mem_frac": lp.mem_frac,
                "blocked_fraction": lp.pattern.blocked_fraction,
                "reuse": lp.reuse,
                "gamma": lp.gamma,
                "num_tasks": lp.num_tasks,
                "total_iters": lp.total_iters,
                "imbalance": lp.imbalance,
                "imbalance_cv": lp.imbalance_cv,
                "repeat": lp.repeat,
            }
            for lp in app.loops
        ],
    }


def application_from_dict(data: dict[str, Any]) -> Application:
    """Build an application model from a dictionary (inverse of the above)."""
    try:
        regions = [
            RegionSpec(
                name=r["name"],
                num_bytes=int(r["mib"] * MIB),
                policy=AllocPolicy(r.get("policy", "first_touch")),
            )
            for r in data["regions"]
        ]
        loops = [
            TaskloopSpec(
                name=lp["name"],
                region=lp["region"],
                work_seconds=lp["work_seconds"],
                mem_frac=lp["mem_frac"],
                pattern=AccessPattern.strided(lp.get("blocked_fraction", 1.0)),
                reuse=lp.get("reuse", 0.0),
                gamma=lp.get("gamma", 0.0),
                num_tasks=lp.get("num_tasks", 256),
                total_iters=lp.get("total_iters", 4096),
                imbalance=lp.get("imbalance", "uniform"),
                imbalance_cv=lp.get("imbalance_cv", 0.0),
                repeat=lp.get("repeat", 1),
            )
            for lp in data["loops"]
        ]
        return Application(
            name=data["name"],
            regions=regions,
            loops=loops,
            timesteps=data.get("timesteps", 50),
            serial_seconds=data.get("serial_seconds", 0.0),
        )
    except KeyError as exc:
        raise WorkloadError(f"workload definition missing field {exc}") from exc
    except ValueError as exc:
        raise WorkloadError(f"invalid workload definition: {exc}") from exc


def save_application(app: Application, path: str | Path) -> Path:
    """Write the application definition as JSON."""
    path = Path(path)
    path.write_text(json.dumps(application_to_dict(app), indent=2) + "\n")
    return path


def load_application(path: str | Path) -> Application:
    """Load an application definition from a JSON file."""
    return application_from_dict(json.loads(Path(path).read_text()))
