"""Synthetic workload generator: parameterised applications for studies.

Beyond the seven paper benchmarks, the ablation benches and property tests
need workloads with *controlled* characteristics — e.g. "memory-bound,
uniform access, gamma swept from 0 to 2".  :func:`make_synthetic` builds a
single-loop application from explicit knobs; :func:`make_mixed` composes
several loops with contrasting characters into one app (per-taskloop
moldability stress test).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.memory.access import AccessPattern
from repro.workloads.base import Application, MIB, RegionSpec, TaskloopSpec

__all__ = ["make_synthetic", "make_mixed"]


def make_synthetic(
    *,
    name: str = "synthetic",
    work_seconds: float = 0.4,
    mem_frac: float = 0.5,
    blocked_fraction: float = 1.0,
    reuse: float = 0.3,
    gamma: float = 0.5,
    imbalance: str = "uniform",
    imbalance_cv: float = 0.0,
    num_tasks: int = 128,
    total_iters: int = 4096,
    region_mib: int = 512,
    timesteps: int = 20,
) -> Application:
    """One-loop application with every model knob exposed."""
    if region_mib <= 0:
        raise WorkloadError(f"region_mib must be positive, got {region_mib}")
    return Application(
        name=name,
        regions=[RegionSpec("data", region_mib * MIB)],
        loops=[
            TaskloopSpec(
                name="loop",
                region="data",
                work_seconds=work_seconds,
                mem_frac=mem_frac,
                pattern=AccessPattern.strided(blocked_fraction),
                reuse=reuse,
                gamma=gamma,
                num_tasks=num_tasks,
                total_iters=total_iters,
                imbalance=imbalance,
                imbalance_cv=imbalance_cv,
            )
        ],
        timesteps=timesteps,
    )


def make_mixed(*, timesteps: int = 20, name: str = "mixed") -> Application:
    """Two contrasting loops in one app: one compute-bound and balanced,
    one memory-bound and irregular.

    A per-taskloop scheduler should settle different configurations for
    the two loops (full machine vs. molded-down), which the moldability
    integration tests assert.
    """
    return Application(
        name=name,
        regions=[RegionSpec("dense", 256 * MIB), RegionSpec("sparse", 512 * MIB)],
        loops=[
            TaskloopSpec(
                name="compute",
                region="dense",
                work_seconds=0.5,
                mem_frac=0.08,
                pattern=AccessPattern.blocked(),
                reuse=0.7,
                gamma=0.0,
                imbalance="uniform",
            ),
            TaskloopSpec(
                name="memory",
                region="sparse",
                work_seconds=0.4,
                mem_frac=0.8,
                pattern=AccessPattern.uniform(),
                reuse=0.1,
                gamma=1.5,
                imbalance="irregular",
                imbalance_cv=0.4,
            ),
        ],
        timesteps=timesteps,
    )
