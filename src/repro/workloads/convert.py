"""``omp for`` -> ``omp taskloop`` conversion tool.

The paper's benchmarks are data-parallel codes written with work-sharing
loops; the authors "developed a simple tool to convert ``omp for``
constructs into ``omp taskloop``, used solely as an experimental
instrument".  This module is that instrument for the workload model: a
tiny program IR with both construct kinds and a mechanical rewriter.

A :class:`Program` is an ordered list of parallel constructs; work-sharing
programs (all :class:`ParallelFor`) are what the ``worksharing`` scheduler
conceptually executes, and :func:`convert_for_to_taskloop` produces the
taskloop program the tasking schedulers need — preserving every workload
property and choosing a task count (``num_tasks``) the way the LLVM
runtime would (a fixed multiple of the thread count, capped by the trip
count).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.memory.access import AccessPattern
from repro.workloads.base import Application, RegionSpec, TaskloopSpec

__all__ = [
    "ParallelFor",
    "Taskloop",
    "Program",
    "convert_for_to_taskloop",
    "program_to_application",
    "DEFAULT_TASKS_PER_THREAD",
]

DEFAULT_TASKS_PER_THREAD = 2


@dataclass(frozen=True)
class ParallelFor:
    """An ``#pragma omp parallel for`` loop nest."""

    name: str
    region: str
    trip_count: int
    work_seconds: float
    mem_frac: float = 0.5
    pattern: AccessPattern = AccessPattern.blocked()
    reuse: float = 0.0
    gamma: float = 0.0
    imbalance: str = "uniform"
    imbalance_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise WorkloadError(f"loop {self.name!r}: trip_count must be >= 1")


@dataclass(frozen=True)
class Taskloop:
    """An ``#pragma omp taskloop`` with an explicit ``num_tasks`` clause."""

    name: str
    region: str
    trip_count: int
    num_tasks: int
    work_seconds: float
    mem_frac: float = 0.5
    pattern: AccessPattern = AccessPattern.blocked()
    reuse: float = 0.0
    gamma: float = 0.0
    imbalance: str = "uniform"
    imbalance_cv: float = 0.0


@dataclass(frozen=True)
class Program:
    """An ordered list of parallel constructs plus the data regions."""

    name: str
    regions: tuple[RegionSpec, ...]
    constructs: tuple[ParallelFor | Taskloop, ...]
    timesteps: int = 50

    def is_taskloop_program(self) -> bool:
        return all(isinstance(c, Taskloop) for c in self.constructs)

    def is_worksharing_program(self) -> bool:
        return all(isinstance(c, ParallelFor) for c in self.constructs)


def convert_for_to_taskloop(
    program: Program,
    *,
    num_threads: int = 64,
    tasks_per_thread: int = DEFAULT_TASKS_PER_THREAD,
) -> Program:
    """Rewrite every :class:`ParallelFor` into a :class:`Taskloop`.

    ``num_tasks`` is ``tasks_per_thread * num_threads`` capped by the trip
    count, mirroring how the experimental tool sized tasks for the 64-core
    platform.  Already-converted constructs pass through unchanged.
    """
    if num_threads < 1 or tasks_per_thread < 1:
        raise WorkloadError("num_threads and tasks_per_thread must be >= 1")
    converted: list[ParallelFor | Taskloop] = []
    for c in program.constructs:
        if isinstance(c, Taskloop):
            converted.append(c)
            continue
        num_tasks = min(c.trip_count, tasks_per_thread * num_threads)
        converted.append(
            Taskloop(
                name=c.name,
                region=c.region,
                trip_count=c.trip_count,
                num_tasks=num_tasks,
                work_seconds=c.work_seconds,
                mem_frac=c.mem_frac,
                pattern=c.pattern,
                reuse=c.reuse,
                gamma=c.gamma,
                imbalance=c.imbalance,
                imbalance_cv=c.imbalance_cv,
            )
        )
    return replace(program, constructs=tuple(converted))


def program_to_application(program: Program) -> Application:
    """Lower a (fully converted) taskloop program to a runnable application."""
    if not program.is_taskloop_program():
        raise WorkloadError(
            "program still contains ParallelFor constructs; run "
            "convert_for_to_taskloop first"
        )
    loops = [
        TaskloopSpec(
            name=c.name,
            region=c.region,
            work_seconds=c.work_seconds,
            mem_frac=c.mem_frac,
            pattern=c.pattern,
            reuse=c.reuse,
            gamma=c.gamma,
            num_tasks=c.num_tasks,
            total_iters=c.trip_count,
            imbalance=c.imbalance,
            imbalance_cv=c.imbalance_cv,
        )
        for c in program.constructs
        if isinstance(c, Taskloop)
    ]
    return Application(
        name=program.name,
        regions=list(program.regions),
        loops=loops,
        timesteps=program.timesteps,
    )
