"""Benchmark registry: the paper's seven workloads by name."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.base import Application
from repro.workloads.lulesh import make_lulesh
from repro.workloads.matmul import make_matmul
from repro.workloads.npb.bt import make_bt
from repro.workloads.npb.cg import make_cg
from repro.workloads.npb.ft import make_ft
from repro.workloads.npb.lu import make_lu
from repro.workloads.npb.sp import make_sp

__all__ = ["BENCHMARKS", "PAPER_ORDER", "make_benchmark", "benchmark_names"]

BENCHMARKS: dict[str, Callable[..., Application]] = {
    "ft": make_ft,
    "bt": make_bt,
    "cg": make_cg,
    "lu": make_lu,
    "sp": make_sp,
    "matmul": make_matmul,
    "lulesh": make_lulesh,
}

# order used in the paper's figures and tables
PAPER_ORDER = ["ft", "bt", "cg", "lu", "sp", "matmul", "lulesh"]


def make_benchmark(name: str, *, timesteps: int | None = None) -> Application:
    """Instantiate a paper benchmark model by name."""
    try:
        factory = BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(BENCHMARKS))}"
        ) from None
    return factory() if timesteps is None else factory(timesteps=timesteps)


def benchmark_names() -> list[str]:
    return list(PAPER_ORDER)
