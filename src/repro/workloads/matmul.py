"""Matrix-multiplication kernel workload model.

The paper's compute-bound control case: O(n^3) arithmetic over O(n^2)
data gives very high arithmetic intensity, tiled access with excellent
cache reuse, and perfect balance.  It "scales exceedingly well with
increased parallelism, making moldability ineffective and hierarchical
scheduling unnecessary" — ILAN shows a slight *slowdown* (exploration cost
plus scheduling overhead), the one benchmark where the baseline wins.

Paper configuration: loop size 3500, 200 iterations.
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, MIB, RegionSpec, TaskloopSpec

__all__ = ["make_matmul"]


def make_matmul(timesteps: int = 50) -> Application:
    """The Matmul model: one perfectly balanced compute-bound taskloop."""
    return Application(
        name="matmul",
        regions=[RegionSpec("abc", 300 * MIB)],
        loops=[
            TaskloopSpec(
                name="tile_gemm",
                region="abc",
                work_seconds=0.80,
                mem_frac=0.03,
                pattern=AccessPattern.blocked(),
                reuse=0.50,
                gamma=0.0,
                imbalance="uniform",
            ),
        ],
        timesteps=timesteps,
        serial_seconds=0.5e-4,
    )
