"""LULESH workload model.

LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics) is
the paper's representative hydrodynamics proxy app: each timestep runs a
*diverse* set of loops — dense element-centred kernels with good locality
next to gather/scatter node-centred kernels with indirect access.  The mix
means no single configuration is ideal, which is exactly what per-taskloop
moldability exploits; the paper reports a solid overall ILAN gain with a
small variance increase.

Run configuration in the paper: problem size 400^3, 200 iterations
(scaled down here; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.memory.access import AccessPattern
from repro.workloads.base import Application, MIB, RegionSpec, TaskloopSpec

__all__ = ["make_lulesh"]


def make_lulesh(timesteps: int = 50) -> Application:
    """The LULESH model: five representative loops per timestep."""
    return Application(
        name="lulesh",
        regions=[RegionSpec("mesh", 1536 * MIB)],
        loops=[
            TaskloopSpec(
                name="calc_stress",
                region="mesh",
                work_seconds=0.45,
                mem_frac=0.35,
                pattern=AccessPattern.blocked(),
                reuse=0.10,
                gamma=0.30,
                imbalance="uniform",
            ),
            TaskloopSpec(
                name="hourglass",
                region="mesh",
                work_seconds=0.55,
                mem_frac=0.40,
                pattern=AccessPattern.strided(0.85),
                reuse=0.10,
                gamma=0.40,
                imbalance="linear",
                imbalance_cv=0.10,
            ),
            TaskloopSpec(
                name="pos_vel",
                region="mesh",
                work_seconds=0.20,
                mem_frac=0.60,
                pattern=AccessPattern.blocked(),
                reuse=0.08,
                gamma=0.60,
                imbalance="uniform",
            ),
            TaskloopSpec(
                name="material_eos",
                region="mesh",
                work_seconds=0.25,
                mem_frac=0.60,
                pattern=AccessPattern.uniform(),
                reuse=0.10,
                gamma=0.80,
                imbalance="irregular",
                imbalance_cv=0.50,
            ),
            TaskloopSpec(
                name="time_constraints",
                region="mesh",
                work_seconds=0.10,
                mem_frac=0.50,
                pattern=AccessPattern.uniform(),
                reuse=0.05,
                gamma=0.50,
                imbalance="uniform",
            ),
        ],
        timesteps=timesteps,
        serial_seconds=2.0e-4,
    )
