"""Interference layer: slowdown computation and external noise injection."""

from repro.interference.model import InterferenceModel
from repro.interference.noise import NoiseParams, NoiseProcess

__all__ = ["InterferenceModel", "NoiseParams", "NoiseProcess"]
