"""Interference layer: slowdown computation, external noise, and seeded
dynamic-asymmetry timelines."""

from repro.interference.model import InterferenceModel
from repro.interference.noise import NoiseParams, NoiseProcess
from repro.interference.timeline import (
    ASYMMETRY_PRESETS,
    AsymmetrySpec,
    AsymmetryTimeline,
)

__all__ = [
    "InterferenceModel",
    "NoiseParams",
    "NoiseProcess",
    "AsymmetrySpec",
    "AsymmetryTimeline",
    "ASYMMETRY_PRESETS",
]
