"""The interference model: per-core slowdowns from the machine state.

This is where data locality and resource contention — the two effects the
ILAN scheduler manages — turn into execution rates:

* **locality**: a chunk's memory time is scaled by the distance-weighted
  latency factor between the executing core's NUMA node and the home nodes
  of its pages (precomputed ``(cores, nodes)`` matrix ``L``);
* **contention**: per-node demand vs. capacity with a superlinear penalty
  (:func:`repro.memory.bandwidth.contention_slowdown`), applied with the
  running task's own contention exponent.

For a task whose body is ``mem_frac`` memory-bound, the body slowdown is::

    s = (1 - mem_frac) + mem_frac * sum_n w_n * L[c, n] * r_n ** (1 + gamma)

with ``r_n = max(1, D_n / B_n)`` the node's saturation ratio.  ``s = 1``
for pure-compute tasks, for perfectly local uncontended memory tasks, and
for idle cores.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.memory.bandwidth import BandwidthModel
from repro.sim.progress import CoreStates
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology

__all__ = ["InterferenceModel"]


class InterferenceModel:
    """Precomputed machine parameters + the slowdown computation."""

    __slots__ = ("bandwidth", "latency", "node_of_core", "_num_cores", "_num_nodes")

    def __init__(
        self,
        topology: MachineTopology,
        distances: DistanceMatrix,
        bandwidth: BandwidthModel,
    ):
        if distances.num_nodes != topology.num_nodes:
            raise SimulationError("distance matrix does not match topology node count")
        if bandwidth.num_nodes != topology.num_nodes:
            raise SimulationError("bandwidth model does not match topology node count")
        self.bandwidth = bandwidth
        self._num_cores = topology.num_cores
        self._num_nodes = topology.num_nodes
        self.node_of_core = np.array(
            [topology.node_of_core(c) for c in topology.core_ids()], dtype=np.int64
        )
        # L[c, n]: latency factor from core c's node to memory node n
        self.latency = (distances.matrix / 10.0)[self.node_of_core, :]

    # ------------------------------------------------------------------
    def node_demand(self, states: CoreStates) -> np.ndarray:
        """Aggregate demanded bandwidth per node, bytes/s.

        An offline core's task is frozen — it issues no memory traffic —
        so offline cores are excluded from demand.  Their *slowdown* rows
        are still computed like any active core's (they are meaningless
        while frozen: the executor pins their completion time to ``inf``).
        """
        a = states.active
        if states.any_offline:
            a = a & states.online
        if not a.any():
            return np.zeros(self._num_nodes)
        w = states.weights[a]
        mf = states.mem_frac[a]
        return self.bandwidth.core_bandwidth * (mf[:, None] * w).sum(axis=0)

    def slowdowns(self, states: CoreStates) -> np.ndarray:
        """Per-core body slowdown vector (1.0 for idle cores)."""
        if states.num_cores != self._num_cores or states.num_nodes != self._num_nodes:
            raise SimulationError("core states do not match this machine")
        s = np.ones(self._num_cores)
        a = states.active
        if not a.any():
            return s
        demand = self.node_demand(states)
        ratio = np.maximum(demand / self.bandwidth.node_bandwidth, 1.0)
        cores = np.flatnonzero(a)
        if np.all(ratio == 1.0):
            # fast path: no node saturated, only locality matters
            mem_mult = (states.weights[cores] * self.latency[cores]).sum(axis=1)
        else:
            log_r = np.log(ratio)
            # per-task superlinear penalty: ratio ** (1 + gamma_task)
            penalty = np.exp(np.outer(1.0 + states.gamma[cores], log_r))
            mem_mult = (states.weights[cores] * self.latency[cores] * penalty).sum(axis=1)
        mf = states.mem_frac[cores]
        s[cores] = (1.0 - mf) + mf * mem_mult
        return s

    def saturation(self, states: CoreStates) -> np.ndarray:
        """Per-node saturation ratio ``D_n / B_n`` (diagnostics)."""
        return self.node_demand(states) / self.bandwidth.node_bandwidth

    def slowdowns_and_saturation(self, states: CoreStates) -> tuple[np.ndarray, np.ndarray]:
        """Both per-core slowdowns and per-node saturation in one pass.

        Used by the executor when performance counters are enabled, to
        avoid recomputing the demand vector per step.
        """
        if states.num_cores != self._num_cores or states.num_nodes != self._num_nodes:
            raise SimulationError("core states do not match this machine")
        s = np.ones(self._num_cores)
        sat = np.zeros(self._num_nodes)
        a = states.active
        if not a.any():
            return s, sat
        demand = self.node_demand(states)
        sat = demand / self.bandwidth.node_bandwidth
        ratio = np.maximum(sat, 1.0)
        cores = np.flatnonzero(a)
        if np.all(ratio == 1.0):
            mem_mult = (states.weights[cores] * self.latency[cores]).sum(axis=1)
        else:
            log_r = np.log(ratio)
            penalty = np.exp(np.outer(1.0 + states.gamma[cores], log_r))
            mem_mult = (states.weights[cores] * self.latency[cores] * penalty).sum(axis=1)
        mf = states.mem_frac[cores]
        s[cores] = (1.0 - mf) + mf * mem_mult
        return s, sat
