"""External system noise: dynamic performance asymmetry beyond the app.

The paper attributes part of the run-to-run variability (e.g. the single
BT outlier) to effects outside the scheduler's control — OS daemons,
frequency scaling, other tenants.  :class:`NoiseProcess` models these as a
renewal process: at exponentially distributed intervals a random subset of
cores is slowed by a fixed factor for an exponentially distributed
duration.  Events are self-scheduling on the simulator's event queue, so no
horizon needs to be known in advance.

Noise is disabled by default; experiments opt in per run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.progress import CoreStates

__all__ = ["NoiseParams", "NoiseProcess"]


@dataclass(frozen=True)
class NoiseParams:
    """Configuration of the external-noise renewal process.

    Attributes
    ----------
    mean_interval:
        Mean seconds between noise onsets (exponential); ``None`` disables.
    mean_duration:
        Mean seconds one noise episode lasts (exponential).
    slow_factor:
        Speed multiplier applied to affected cores (0 < f < 1).
    cores_fraction:
        Fraction of cores hit by each episode.
    """

    mean_interval: float | None = None
    mean_duration: float = 0.01
    slow_factor: float = 0.5
    cores_fraction: float = 0.125

    def __post_init__(self) -> None:
        if self.mean_interval is not None and self.mean_interval <= 0:
            raise SimulationError("mean_interval must be positive or None")
        if self.mean_duration <= 0:
            raise SimulationError("mean_duration must be positive")
        if not (0.0 < self.slow_factor < 1.0):
            raise SimulationError("slow_factor must lie in (0, 1)")
        if not (0.0 < self.cores_fraction <= 1.0):
            raise SimulationError("cores_fraction must lie in (0, 1]")

    @property
    def enabled(self) -> bool:
        return self.mean_interval is not None


class NoiseProcess:
    """Self-scheduling noise injector over a run's :class:`CoreStates`.

    Multiple overlapping episodes compose multiplicatively per core.
    """

    def __init__(
        self,
        sim: Simulator,
        states: CoreStates,
        params: NoiseParams,
        rng: np.random.Generator,
    ):
        self.sim = sim
        self.states = states
        self.params = params
        self.rng = rng
        self._factors = np.ones(states.num_cores)
        self.episodes = 0

    def start(self) -> None:
        """Arm the process (no-op when noise is disabled)."""
        if self.params.enabled:
            self._schedule_next_onset()

    # ------------------------------------------------------------------
    def _schedule_next_onset(self) -> None:
        assert self.params.mean_interval is not None
        gap = float(self.rng.exponential(self.params.mean_interval))
        self.sim.schedule_in(gap, self._onset, tag="noise-onset")

    def _onset(self) -> None:
        p = self.params
        n = self.states.num_cores
        k = max(1, int(round(p.cores_fraction * n)))
        cores = self.rng.choice(n, size=k, replace=False)
        self._factors[cores] *= p.slow_factor
        self._apply()
        self.episodes += 1
        duration = float(self.rng.exponential(p.mean_duration))
        self.sim.schedule_in(duration, lambda c=cores: self._offset(c), tag="noise-offset")
        self._schedule_next_onset()

    def _offset(self, cores: np.ndarray) -> None:
        self._factors[cores] /= self.params.slow_factor
        self._apply()

    def _apply(self) -> None:
        self.states.set_speed_layer("noise", self._factors)

    @property
    def factors(self) -> np.ndarray:
        """Current per-core noise factors (1.0 = unaffected)."""
        return self._factors.copy()
