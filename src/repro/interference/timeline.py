"""Seeded dynamic-asymmetry timelines: the machine misbehaving on purpose.

The static interference model plus :class:`NoiseProcess` covers transient
co-located slowdowns, but real machines also shift *regimes* under the
scheduler: DVFS drops a socket to a lower P-state for seconds, thermal
throttling ramps a package down and back in steps, a co-tenant lands on a
few cores, an operator (or the kernel) takes a core offline entirely.
:class:`AsymmetryTimeline` drives all four as self-scheduling simulation
events drawn from one injected generator (``stream(seed, "asym")`` at the
run-context layer), so a run's asymmetry is part of its seed and replays
byte-identically.

Every mutation flows through the :class:`~repro.sim.progress.CoreStates`
choke point — speed factors through ``set_speed_layer("asym", ...)``
(composing with the noise layer), availability through ``set_online`` —
so the reference and incremental engines observe identical state and the
stale-prediction guard covers every event.

Mechanisms
----------
DVFS step
    At exponential intervals one random node's cores drop to a uniform
    factor in ``[dvfs_low, dvfs_high]`` for an exponential duration, then
    revert.  A node holds one P-state at a time: onsets landing on a node
    already stepped down are skipped (the next onset is still scheduled),
    so long-duration specs model persistent per-node steps rather than
    unboundedly stacking slowdowns.
Thermal-throttle ramp
    One episode at a time, machine-wide arbitration: a random node ramps
    down to ``throttle_floor`` in ``throttle_steps`` equal steps, holds,
    and ramps back up.  Step values are assigned absolutely (never
    accumulated), so the ramp ends at exactly ``1.0`` — no float drift
    across episodes.
Transient co-tenant
    A random core subset is slowed by ``cotenant_factor`` for an
    exponential duration — like noise, but configured on the asymmetry
    axis so experiments can separate the two.
Core offline/online
    A random currently-online core goes offline for an exponential
    duration, freezing any task it was running (resumed in place on
    return; no migration).  At most ``max_offline_fraction`` of cores are
    offline concurrently, and every offline event schedules its own
    online event, so the machine always recovers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.progress import CoreStates

__all__ = ["AsymmetrySpec", "AsymmetryTimeline", "ASYMMETRY_PRESETS"]


@dataclass(frozen=True)
class AsymmetrySpec:
    """Configuration of the asymmetry timeline; all mechanisms off by default.

    Intervals are mean seconds between onsets (exponential); ``None``
    disables that mechanism.  Durations are mean seconds (exponential)
    except the throttle ramp, whose shape is deterministic per episode.
    """

    dvfs_interval: float | None = None
    dvfs_low: float = 0.4
    dvfs_high: float = 0.7
    dvfs_duration: float = 0.5
    #: cap on concurrently stepped-down nodes (None = no cap); with a
    #: long ``dvfs_duration`` and ``dvfs_max_nodes=1`` the timeline is a
    #: persistent single-node DVFS *step*, the canonical re-exploration
    #: experiment
    dvfs_max_nodes: int | None = None

    throttle_interval: float | None = None
    throttle_floor: float = 0.5
    throttle_steps: int = 4
    throttle_step_time: float = 0.02
    throttle_hold: float = 0.3

    cotenant_interval: float | None = None
    cotenant_factor: float = 0.6
    cotenant_fraction: float = 0.25
    cotenant_duration: float = 0.2

    offline_interval: float | None = None
    offline_duration: float = 0.4
    max_offline_fraction: float = 0.25

    def __post_init__(self) -> None:
        for name in ("dvfs_interval", "throttle_interval",
                     "cotenant_interval", "offline_interval"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SimulationError(f"{name} must be positive or None")
        if not (0.0 < self.dvfs_low <= self.dvfs_high <= 1.0):
            raise SimulationError("need 0 < dvfs_low <= dvfs_high <= 1")
        if self.dvfs_duration <= 0:
            raise SimulationError("dvfs_duration must be positive")
        if self.dvfs_max_nodes is not None and self.dvfs_max_nodes < 1:
            raise SimulationError("dvfs_max_nodes must be >= 1 or None")
        if not (0.0 < self.throttle_floor < 1.0):
            raise SimulationError("throttle_floor must lie in (0, 1)")
        if self.throttle_steps < 1:
            raise SimulationError("throttle_steps must be >= 1")
        if self.throttle_step_time <= 0 or self.throttle_hold < 0:
            raise SimulationError("throttle ramp times must be positive (hold >= 0)")
        if not (0.0 < self.cotenant_factor < 1.0):
            raise SimulationError("cotenant_factor must lie in (0, 1)")
        if not (0.0 < self.cotenant_fraction <= 1.0):
            raise SimulationError("cotenant_fraction must lie in (0, 1]")
        if self.offline_duration <= 0:
            raise SimulationError("offline_duration must be positive")
        if not (0.0 < self.max_offline_fraction < 1.0):
            raise SimulationError("max_offline_fraction must lie in (0, 1)")

    @property
    def enabled(self) -> bool:
        return any(
            getattr(self, name) is not None
            for name in ("dvfs_interval", "throttle_interval",
                         "cotenant_interval", "offline_interval")
        )

    def describe(self) -> str:
        """Canonical ``key=value`` form of the non-default fields.

        Stable across parse spellings, so it is what enters experiment
        cache keys; the all-default spec describes to ``"none"``.
        """
        default = _DEFAULT_SPEC
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != getattr(default, f.name):
                parts.append(f"{f.name}={value:g}" if isinstance(value, float)
                             else f"{f.name}={value}")
        return ",".join(parts) if parts else "none"

    @classmethod
    def parse(cls, text: str) -> "AsymmetrySpec":
        """Parse a spec string: presets, overrides, or both.

        Grammar: ``preset[+preset...][:key=value[,key=value...]]`` or a
        bare ``key=value[,...]`` list.  Presets (:data:`ASYMMETRY_PRESETS`)
        compose left to right; overrides apply last.  ``"none"`` and
        ``""`` give the disabled spec.
        """
        text = text.strip()
        if not text or text == "none":
            return cls()
        head, _, tail = text.partition(":")
        if "=" in head:
            head, tail = "", text
        merged: dict[str, object] = {}
        for preset in filter(None, head.split("+")):
            try:
                base = ASYMMETRY_PRESETS[preset]
            except KeyError:
                known = ", ".join(sorted(ASYMMETRY_PRESETS))
                raise SimulationError(
                    f"unknown asymmetry preset {preset!r} (known: {known})"
                ) from None
            for f in fields(cls):
                value = getattr(base, f.name)
                if value != getattr(_DEFAULT_SPEC, f.name):
                    merged[f.name] = value
        valid = {f.name: f for f in fields(cls)}
        for item in filter(None, tail.split(",")):
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or key not in valid:
                raise SimulationError(
                    f"bad asymmetry override {item!r} (expected key=value "
                    f"with a known AsymmetrySpec field)"
                )
            merged[key] = _parse_value(key, raw.strip())
        return replace(cls(), **merged)  # type: ignore[arg-type]


def _parse_value(key: str, raw: str) -> object:
    if raw.lower() == "none":
        return None
    if key in ("throttle_steps", "dvfs_max_nodes"):
        return int(raw)
    try:
        return float(raw)
    except ValueError:
        raise SimulationError(f"bad value {raw!r} for {key}") from None


_DEFAULT_SPEC = AsymmetrySpec()

#: Named starting points for ``--asym-spec``; chosen so a default-noise
#: campaign sees genuine regime shifts (long episodes, deep factors), the
#: setting where PTT re-exploration matters.
ASYMMETRY_PRESETS: dict[str, AsymmetrySpec] = {
    "dvfs": AsymmetrySpec(dvfs_interval=0.2),
    "throttle": AsymmetrySpec(throttle_interval=0.3),
    "cotenant": AsymmetrySpec(cotenant_interval=0.1),
    "offline": AsymmetrySpec(offline_interval=0.25),
    "mix": AsymmetrySpec(dvfs_interval=0.3, cotenant_interval=0.15,
                         offline_interval=0.4),
    "harsh": AsymmetrySpec(dvfs_interval=0.15, dvfs_low=0.3, dvfs_high=0.5,
                           throttle_interval=0.4, cotenant_interval=0.1,
                           offline_interval=0.3, max_offline_fraction=0.4),
}


class AsymmetryTimeline:
    """Self-scheduling asymmetry injector over a run's :class:`CoreStates`.

    All randomness comes from the injected generator, drawn inside event
    callbacks in event-queue order, so a (seed, spec) pair fully
    determines the timeline.
    """

    def __init__(
        self,
        sim: Simulator,
        states: CoreStates,
        spec: AsymmetrySpec,
        rng: np.random.Generator,
        node_of_core: np.ndarray,
    ):
        if node_of_core.shape != (states.num_cores,):
            raise SimulationError("node_of_core must have one entry per core")
        self.sim = sim
        self.states = states
        self.spec = spec
        self.rng = rng
        self.node_of_core = np.asarray(node_of_core)
        self.num_nodes = int(self.node_of_core.max()) + 1 if states.num_cores else 0
        n = states.num_cores
        # per-mechanism factor vectors, composed into one "asym" layer
        self._dvfs = np.ones(n)
        self._throttle = np.ones(n)
        self._cotenant = np.ones(n)
        self._offline_mask = np.zeros(n, dtype=bool)
        self._throttle_active = False
        self._dvfs_node_active = np.zeros(self.num_nodes, dtype=bool)
        self.dvfs_episodes = 0
        self.dvfs_skipped = 0
        self.throttle_episodes = 0
        self.cotenant_episodes = 0
        self.offline_episodes = 0
        self.offline_skipped = 0

    def start(self) -> None:
        """Arm every enabled mechanism (no-op for a disabled spec)."""
        s = self.spec
        if s.dvfs_interval is not None:
            self._schedule(s.dvfs_interval, self._dvfs_onset, "asym-dvfs-onset")
        if s.throttle_interval is not None:
            self._schedule(s.throttle_interval, self._throttle_onset,
                           "asym-throttle-onset")
        if s.cotenant_interval is not None:
            self._schedule(s.cotenant_interval, self._cotenant_onset,
                           "asym-cotenant-onset")
        if s.offline_interval is not None:
            self._schedule(s.offline_interval, self._offline_onset,
                           "asym-offline-onset")

    # ------------------------------------------------------------------
    def _schedule(self, mean: float, action, tag: str) -> None:
        gap = float(self.rng.exponential(mean))
        self.sim.schedule_in(gap, action, tag=tag)

    def _apply_factors(self) -> None:
        combined = self._dvfs * self._throttle * self._cotenant
        self.states.set_speed_layer("asym", combined)

    def _node_cores(self, node: int) -> np.ndarray:
        return np.flatnonzero(self.node_of_core == node)

    # -- DVFS ----------------------------------------------------------
    def _dvfs_onset(self) -> None:
        s = self.spec
        assert s.dvfs_interval is not None
        self._schedule(s.dvfs_interval, self._dvfs_onset, "asym-dvfs-onset")
        if (
            s.dvfs_max_nodes is not None
            and int(self._dvfs_node_active.sum()) >= s.dvfs_max_nodes
        ):
            self.dvfs_skipped += 1
            return
        node = int(self.rng.integers(self.num_nodes))
        if self._dvfs_node_active[node]:
            # the node already sits in a lowered P-state: one step at a
            # time per node, never stacked (stacking would compound the
            # factor without bound under long-duration specs)
            self.dvfs_skipped += 1
            return
        self._dvfs_node_active[node] = True
        factor = float(self.rng.uniform(s.dvfs_low, s.dvfs_high))
        cores = self._node_cores(node)
        self._dvfs[cores] = factor
        self._apply_factors()
        self.dvfs_episodes += 1
        duration = float(self.rng.exponential(s.dvfs_duration))
        self.sim.schedule_in(
            duration,
            lambda n=node, c=cores: self._dvfs_offset(n, c),
            tag="asym-dvfs-offset",
        )

    def _dvfs_offset(self, node: int, cores: np.ndarray) -> None:
        self._dvfs[cores] = 1.0
        self._dvfs_node_active[node] = False
        self._apply_factors()

    # -- thermal throttle ----------------------------------------------
    def _throttle_onset(self) -> None:
        s = self.spec
        assert s.throttle_interval is not None
        self._schedule(s.throttle_interval, self._throttle_onset,
                       "asym-throttle-onset")
        if self._throttle_active:
            return
        self._throttle_active = True
        self.throttle_episodes += 1
        node = int(self.rng.integers(self.num_nodes))
        cores = self._node_cores(node)
        # ramp values, each assigned absolutely: down to the floor in
        # `throttle_steps` equal steps, hold, back up ending at exactly 1.0
        k, floor = s.throttle_steps, s.throttle_floor
        down = [1.0 - (1.0 - floor) * i / k for i in range(1, k + 1)]
        up = [floor + (1.0 - floor) * i / k for i in range(1, k + 1)]
        self._throttle_step(cores, down, up)

    def _throttle_step(
        self, cores: np.ndarray, down: list[float], up: list[float]
    ) -> None:
        s = self.spec
        if down:
            value, rest = down[0], down[1:]
            self._throttle[cores] = value
            self._apply_factors()
            if rest:
                self.sim.schedule_in(
                    s.throttle_step_time,
                    lambda: self._throttle_step(cores, rest, up),
                    tag="asym-throttle-step",
                )
            else:
                self.sim.schedule_in(
                    s.throttle_step_time + s.throttle_hold,
                    lambda: self._throttle_step(cores, [], up),
                    tag="asym-throttle-hold",
                )
            return
        value, rest = up[0], up[1:]
        self._throttle[cores] = value
        self._apply_factors()
        if rest:
            self.sim.schedule_in(
                s.throttle_step_time,
                lambda: self._throttle_step(cores, [], rest),
                tag="asym-throttle-step",
            )
        else:
            self._throttle_active = False

    # -- transient co-tenant -------------------------------------------
    def _cotenant_onset(self) -> None:
        s = self.spec
        assert s.cotenant_interval is not None
        n = self.states.num_cores
        k = max(1, int(round(s.cotenant_fraction * n)))
        cores = self.rng.choice(n, size=k, replace=False)
        self._cotenant[cores] *= s.cotenant_factor
        self._apply_factors()
        self.cotenant_episodes += 1
        duration = float(self.rng.exponential(s.cotenant_duration))
        self.sim.schedule_in(
            duration,
            lambda c=cores: self._cotenant_offset(c),
            tag="asym-cotenant-offset",
        )
        self._schedule(s.cotenant_interval, self._cotenant_onset,
                       "asym-cotenant-onset")

    def _cotenant_offset(self, cores: np.ndarray) -> None:
        self._cotenant[cores] /= self.spec.cotenant_factor
        self._apply_factors()

    # -- core offline/online -------------------------------------------
    def _offline_onset(self) -> None:
        s = self.spec
        assert s.offline_interval is not None
        self._schedule(s.offline_interval, self._offline_onset,
                       "asym-offline-onset")
        n = self.states.num_cores
        cap = max(1, int(math.floor(s.max_offline_fraction * n)))
        if int(self._offline_mask.sum()) >= cap:
            self.offline_skipped += 1
            return
        candidates = np.flatnonzero(~self._offline_mask)
        core = int(self.rng.choice(candidates))
        self._offline_mask[core] = True
        self.states.set_online(~self._offline_mask)
        self.offline_episodes += 1
        duration = float(self.rng.exponential(s.offline_duration))
        self.sim.schedule_in(
            duration,
            lambda c=core: self._offline_end(c),
            tag="asym-online",
        )

    def _offline_end(self, core: int) -> None:
        self._offline_mask[core] = False
        self.states.set_online(~self._offline_mask)

    # ------------------------------------------------------------------
    @property
    def factors(self) -> np.ndarray:
        """Current combined per-core asymmetry factors (1.0 = nominal)."""
        return self._dvfs * self._throttle * self._cotenant

    @property
    def offline_cores(self) -> list[int]:
        return [int(c) for c in np.flatnonzero(self._offline_mask)]
