"""Data regions and allocation policies.

A :class:`DataRegion` is a named, contiguous virtual allocation (an array,
a grid, a sparse matrix...) whose pages live in a :class:`PageState`.  The
:class:`MemoryMap` owns all regions of one simulated application run.

Three placement policies mirror what Linux/libnuma offer:

* ``first_touch`` — pages are homed by whichever node touches them first
  (the Linux default; what the paper's benchmarks rely on);
* ``interleave`` — pages are spread round-robin over a node set at
  allocation time (``numactl --interleave``);
* ``bind`` — all pages are homed on a single node.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import numpy as np

from repro.errors import MemoryModelError
from repro.memory.pages import DEFAULT_PAGE_BYTES, PageState

__all__ = ["AllocPolicy", "DataRegion", "MemoryMap"]


class AllocPolicy(str, Enum):
    """Placement policy applied when a region is allocated."""

    FIRST_TOUCH = "first_touch"
    INTERLEAVE = "interleave"
    BIND = "bind"


@dataclass
class DataRegion:
    """A named allocation plus its page-level NUMA state.

    ``last_share`` is the region-level aggregate used by irregular
    (uniform-access) tasks: the distribution over nodes of "who most
    recently pulled this region's data".  It is an exponential blend
    updated by :meth:`blend_last_share`, cheap enough to maintain per task.
    """

    name: str
    num_bytes: int
    pages: PageState
    policy: AllocPolicy
    last_share: np.ndarray

    @property
    def num_pages(self) -> int:
        return self.pages.num_pages

    @property
    def page_bytes(self) -> int:
        return self.pages.page_bytes

    def page_span(self, lo_frac: float, hi_frac: float) -> tuple[int, int]:
        """Page range covering the fractional span ``[lo_frac, hi_frac)``.

        Non-empty for any non-empty span; adjacent spans tile the region
        without gaps.  When the span is thinner than one page the single
        covering page is returned, so very fine chunkings share pages —
        which is exactly what happens physically.
        """
        if not (0.0 <= lo_frac < hi_frac <= 1.0 + 1e-12):
            raise MemoryModelError(f"bad span [{lo_frac}, {hi_frac})")
        n = self.num_pages
        start = min(int(lo_frac * n), n - 1)
        stop = n if hi_frac >= 1.0 else int(hi_frac * n)
        stop = max(stop, start + 1)
        return start, min(stop, n)

    def blend_last_share(self, node: int, fraction: float) -> None:
        """Fold "``fraction`` of the region was just touched by ``node``"
        into the aggregate last-touch distribution."""
        if not (0 <= node < self.last_share.shape[0]):
            raise MemoryModelError(f"unknown node {node}")
        fraction = min(max(fraction, 0.0), 1.0)
        self.last_share *= 1.0 - fraction
        self.last_share[node] += fraction


class MemoryMap:
    """All data regions of one simulated application run."""

    def __init__(self, num_nodes: int, page_bytes: int = DEFAULT_PAGE_BYTES):
        if num_nodes < 1:
            raise MemoryModelError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes
        self.page_bytes = page_bytes
        self._regions: dict[str, DataRegion] = {}

    def allocate(
        self,
        name: str,
        num_bytes: int,
        *,
        policy: AllocPolicy = AllocPolicy.FIRST_TOUCH,
        nodes: Iterable[int] | None = None,
        min_pages: int = 8,
    ) -> DataRegion:
        """Create a region of ``num_bytes`` under ``policy``.

        ``nodes`` selects the target node set for ``interleave`` (defaults
        to every node) or the single target node for ``bind``.
        ``min_pages`` floors the page count so small regions still expose
        placement structure.
        """
        if name in self._regions:
            raise MemoryModelError(f"region {name!r} already allocated")
        if num_bytes <= 0:
            raise MemoryModelError(f"region size must be positive, got {num_bytes}")
        num_pages = max(min_pages, -(-num_bytes // self.page_bytes))
        pages = PageState(num_pages, self.num_nodes, self.page_bytes)
        region = DataRegion(
            name=name,
            num_bytes=num_bytes,
            pages=pages,
            policy=policy,
            last_share=np.zeros(self.num_nodes),
        )
        if policy is AllocPolicy.INTERLEAVE:
            node_list = list(nodes) if nodes is not None else list(range(self.num_nodes))
            pages.interleave(0, num_pages, node_list)
        elif policy is AllocPolicy.BIND:
            node_list = list(nodes) if nodes is not None else [0]
            if len(node_list) != 1:
                raise MemoryModelError("bind policy requires exactly one node")
            pages.bind(0, num_pages, node_list[0])
        elif nodes is not None:
            raise MemoryModelError("first_touch policy does not take a node list")
        self._regions[name] = region
        return region

    def region(self, name: str) -> DataRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryModelError(f"unknown region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __iter__(self):
        return iter(self._regions.values())

    def __len__(self) -> int:
        return len(self._regions)

    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self._regions.values())
