"""Cache-reuse model: how much memory traffic locality can save.

The simulator does not model individual cache lines.  Instead each
taskloop declares a *reuse potential* ``r`` in ``[0, 1]``: the fraction of
its memory traffic that hits in the node-level cache hierarchy (L3 of the
CCDs plus hot DRAM pages) when a chunk re-executes on the node that touched
its data last.  The achieved saving scales with the measured last-touch
locality of the chunk (see :mod:`repro.memory.access`):

    effective_bytes = bytes * (1 - r * last_touch_fraction)

A capacity correction discounts ``r`` when the chunk's working set exceeds
the node's aggregate L3: caches cannot hold what does not fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.topology.machine import MachineTopology

__all__ = ["CacheModel"]


@dataclass(frozen=True)
class CacheModel:
    """Per-node aggregate cache capacity and the reuse computation.

    Attributes
    ----------
    node_l3_bytes:
        Aggregate L3 capacity per NUMA node (sum over the node's CCDs).
    """

    node_l3_bytes: tuple[int, ...]

    @staticmethod
    def from_topology(topology: MachineTopology) -> "CacheModel":
        per_node = []
        for node in topology.nodes:
            per_node.append(sum(topology.ccds[c].l3_bytes for c in node.ccd_ids))
        return CacheModel(node_l3_bytes=tuple(per_node))

    @property
    def num_nodes(self) -> int:
        return len(self.node_l3_bytes)

    def capacity_factor(self, node: int, working_set_bytes: float) -> float:
        """Fraction of the working set that fits in the node's caches.

        1.0 when it fits entirely, ``capacity / working_set`` otherwise.
        """
        if not (0 <= node < self.num_nodes):
            raise MemoryModelError(f"unknown node {node}")
        if working_set_bytes < 0:
            raise MemoryModelError("working set must be non-negative")
        if working_set_bytes == 0:
            return 1.0
        return min(1.0, self.node_l3_bytes[node] / working_set_bytes)

    def effective_reuse(
        self,
        node: int,
        reuse_potential: float,
        last_touch_fraction: float,
        working_set_bytes: float,
    ) -> float:
        """Achieved reuse fraction for a chunk executing on ``node``.

        Combines the workload's declared reuse potential, the measured
        last-touch locality of the chunk's pages, and the cache-capacity
        discount.  Result lies in ``[0, reuse_potential]``.
        """
        if not (0.0 <= reuse_potential <= 1.0):
            raise MemoryModelError(f"reuse potential must lie in [0, 1], got {reuse_potential}")
        if not (0.0 <= last_touch_fraction <= 1.0 + 1e-9):
            raise MemoryModelError(
                f"last-touch fraction must lie in [0, 1], got {last_touch_fraction}"
            )
        cap = self.capacity_factor(node, working_set_bytes)
        return reuse_potential * min(last_touch_fraction, 1.0) * cap

    def effective_bytes(
        self,
        node: int,
        num_bytes: float,
        reuse_potential: float,
        last_touch_fraction: float,
        working_set_bytes: float | None = None,
    ) -> float:
        """Memory traffic after cache filtering for a chunk on ``node``."""
        ws = num_bytes if working_set_bytes is None else working_set_bytes
        r = self.effective_reuse(node, reuse_potential, last_touch_fraction, ws)
        return num_bytes * (1.0 - r)
