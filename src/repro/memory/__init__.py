"""Memory-system substrate: pages, placement policies, bandwidth, caches.

This package models the NUMA memory effects the ILAN scheduler reacts to:
first-touch page placement, local/remote access, shared per-node bandwidth
with a superlinear contention penalty, and cache reuse driven by last-touch
locality.
"""

from repro.memory.access import AccessPattern, ChunkAccess, chunk_access
from repro.memory.allocator import AllocPolicy, DataRegion, MemoryMap
from repro.memory.bandwidth import (
    DEFAULT_CORE_BANDWIDTH,
    BandwidthModel,
    contention_slowdown,
    node_demand,
)
from repro.memory.cache import CacheModel
from repro.memory.pages import DEFAULT_PAGE_BYTES, UNTOUCHED, PageState

__all__ = [
    "AccessPattern",
    "ChunkAccess",
    "chunk_access",
    "AllocPolicy",
    "DataRegion",
    "MemoryMap",
    "DEFAULT_CORE_BANDWIDTH",
    "BandwidthModel",
    "contention_slowdown",
    "node_demand",
    "CacheModel",
    "DEFAULT_PAGE_BYTES",
    "UNTOUCHED",
    "PageState",
]
