"""Access patterns: how a chunk of loop iterations maps onto region pages.

The workload models describe each taskloop's memory behaviour with one of
three patterns; the ILAN evaluation depends on exactly this distinction:

* ``BLOCKED`` — iteration *i* touches the pages at the matching relative
  offset of the region (dense stencils, grids, matmul tiles).  Adjacent
  iterations share pages, so placement determines locality: this is where
  hierarchical/deterministic distribution wins.
* ``UNIFORM`` — every iteration touches pages spread across the whole
  region (sparse matvec, indirect indexing, hash-ordered traversals).
  Placement barely changes locality, but every access competes for memory
  bandwidth: this is where moldability wins.
* ``STRIDED(alpha)`` — a mixture: fraction ``alpha`` of the traffic behaves
  blocked, the rest uniform (FFT transposes and similar long-distance
  communication steps).

``ChunkAccess`` is the per-task view the interference model consumes: a
weight vector over NUMA nodes (where the bytes come from) plus the fraction
of pages whose last touch was local (cache-reuse potential).  ``commit``
applies the side effects of actually running the chunk: first-touch homing
and last-touch updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryModelError
from repro.memory.allocator import DataRegion

__all__ = ["AccessPattern", "ChunkAccess", "chunk_access"]


@dataclass(frozen=True)
class AccessPattern:
    """Memory access pattern of a taskloop over its region.

    ``blocked_fraction`` is the share of traffic with blocked behaviour;
    1.0 is fully blocked, 0.0 fully uniform.  Use the constructors
    :meth:`blocked`, :meth:`uniform` and :meth:`strided`.
    """

    blocked_fraction: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.blocked_fraction <= 1.0):
            raise MemoryModelError(
                f"blocked_fraction must lie in [0, 1], got {self.blocked_fraction}"
            )

    @staticmethod
    def blocked() -> "AccessPattern":
        return AccessPattern(blocked_fraction=1.0)

    @staticmethod
    def uniform() -> "AccessPattern":
        return AccessPattern(blocked_fraction=0.0)

    @staticmethod
    def strided(alpha: float) -> "AccessPattern":
        return AccessPattern(blocked_fraction=alpha)

    @property
    def is_blocked(self) -> bool:
        return self.blocked_fraction == 1.0

    @property
    def is_uniform(self) -> bool:
        return self.blocked_fraction == 0.0


@dataclass
class ChunkAccess:
    """Resolved memory view of one chunk about to execute on ``exec_node``.

    Attributes
    ----------
    node_weights:
        Weights over NUMA nodes summing to 1: the fraction of this chunk's
        memory traffic served by each node's memory controller.
    reuse_fraction:
        Fraction of the chunk's pages whose last toucher is the executing
        node; scales the workload's cache-reuse potential.
    """

    region: DataRegion
    exec_node: int
    lo_frac: float
    hi_frac: float
    pattern: AccessPattern
    node_weights: np.ndarray
    reuse_fraction: float
    _page_span: tuple[int, int] | None

    def commit(self) -> None:
        """Apply the side effects of executing the chunk on ``exec_node``.

        Blocked part: first-touch any untouched pages of the chunk's span
        and mark the span as last touched by the executing node.  Uniform
        part: first-touch a proportional slice of still-untouched pages
        (scattered, matching how irregular first sweeps behave) and blend
        the region-level last-touch share.
        """
        bf = self.pattern.blocked_fraction
        span_frac = self.hi_frac - self.lo_frac
        pages = self.region.pages
        if bf > 0.0 and self._page_span is not None:
            start, stop = self._page_span
            pages.first_touch(start, stop, self.exec_node)
        if bf < 1.0:
            untouched = np.flatnonzero(pages.home == -1)
            if untouched.size:
                want = int(round(span_frac * pages.num_pages * (1.0 - bf)))
                if want > 0:
                    take = untouched[:: max(1, untouched.size // want)][:want]
                    for p in take:
                        pages.first_touch(int(p), int(p) + 1, self.exec_node)
            self.region.blend_last_share(self.exec_node, span_frac * (1.0 - bf))


def chunk_access(
    region: DataRegion,
    pattern: AccessPattern,
    lo_frac: float,
    hi_frac: float,
    exec_node: int,
) -> ChunkAccess:
    """Resolve where a chunk's memory traffic goes, given current page state.

    ``lo_frac``/``hi_frac`` position the chunk inside the taskloop's
    iteration space (and therefore inside the region for the blocked part).
    """
    if not (0.0 <= lo_frac < hi_frac <= 1.0 + 1e-12):
        raise MemoryModelError(f"bad chunk span [{lo_frac}, {hi_frac})")
    pages = region.pages
    num_nodes = pages.num_nodes
    if not (0 <= exec_node < num_nodes):
        raise MemoryModelError(f"unknown node {exec_node}")

    bf = pattern.blocked_fraction
    weights = np.zeros(num_nodes)
    reuse = 0.0
    span: tuple[int, int] | None = None

    if bf > 0.0:
        start, stop = region.page_span(lo_frac, min(hi_frac, 1.0))
        span = (start, stop)
        counts, untouched = pages.home_histogram(start, stop)
        # untouched pages will be first-touched by the executing node
        counts[exec_node] += untouched
        total = counts.sum()
        weights += bf * counts / total
        reuse += bf * pages.last_touch_fraction(start, stop, exec_node)

    if bf < 1.0:
        home_w = pages.region_home_weights()
        untouched_frac = pages.untouched_fraction()
        uni = home_w * (1.0 - untouched_frac)
        uni[exec_node] += untouched_frac
        total = uni.sum()
        if total <= 0.0:
            uni = np.zeros(num_nodes)
            uni[exec_node] = 1.0
            total = 1.0
        weights += (1.0 - bf) * uni / total
        reuse += (1.0 - bf) * float(region.last_share[exec_node])

    return ChunkAccess(
        region=region,
        exec_node=exec_node,
        lo_frac=lo_frac,
        hi_frac=hi_frac,
        pattern=pattern,
        node_weights=weights,
        reuse_fraction=reuse,
        _page_span=span,
    )
