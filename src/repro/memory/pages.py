"""Page-granular memory state: home nodes (placement) and last-touch nodes.

The simulator tracks two per-page facts the ILAN evaluation hinges on:

* **home node** — where the page's backing frame lives.  Linux homes a page
  on the NUMA node of the core that first touches it (*first touch*), which
  is why deterministic task placement also determines data placement.
  ``-1`` means the page has not been touched yet.
* **last-touch node** — the NUMA node whose caches most recently pulled the
  page.  Re-running an iteration block on the node that touched its pages
  last gives cache reuse; running it elsewhere incurs coherence traffic and
  cold misses.

Pages are deliberately coarse (default 2 MiB, like transparent huge pages)
so that region state stays small and numpy-friendly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryModelError

__all__ = ["PageState", "DEFAULT_PAGE_BYTES", "UNTOUCHED"]

DEFAULT_PAGE_BYTES = 2 * 1024 * 1024
UNTOUCHED = -1


class PageState:
    """Mutable per-page home/last-touch state for one data region.

    Parameters
    ----------
    num_pages:
        Number of pages in the region (>= 1).
    num_nodes:
        Number of NUMA nodes in the machine the region lives on.
    page_bytes:
        Size of one page in bytes.
    """

    __slots__ = ("num_pages", "num_nodes", "page_bytes", "home", "last", "_home_counts", "_last_counts")

    def __init__(self, num_pages: int, num_nodes: int, page_bytes: int = DEFAULT_PAGE_BYTES):
        if num_pages < 1:
            raise MemoryModelError(f"num_pages must be >= 1, got {num_pages}")
        if num_nodes < 1:
            raise MemoryModelError(f"num_nodes must be >= 1, got {num_nodes}")
        if page_bytes <= 0:
            raise MemoryModelError(f"page_bytes must be positive, got {page_bytes}")
        self.num_pages = num_pages
        self.num_nodes = num_nodes
        self.page_bytes = page_bytes
        self.home = np.full(num_pages, UNTOUCHED, dtype=np.int32)
        self.last = np.full(num_pages, UNTOUCHED, dtype=np.int32)
        # cached histograms; index 0..num_nodes-1 per node, kept in sync by
        # the mutation helpers below.
        self._home_counts = np.zeros(num_nodes, dtype=np.int64)
        self._last_counts = np.zeros(num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def first_touch(self, start: int, stop: int, node: int) -> int:
        """First-touch pages ``[start, stop)`` from ``node``.

        Only pages still untouched get homed; returns how many were homed.
        Also records the touch as the pages' last touch.
        """
        self._check_range(start, stop)
        self._check_node(node)
        sl = self.home[start:stop]
        mask = sl == UNTOUCHED
        homed = int(mask.sum())
        if homed:
            sl[mask] = node
            self._home_counts[node] += homed
        self.record_touch(start, stop, node)
        return homed

    def bind(self, start: int, stop: int, node: int) -> None:
        """Force pages ``[start, stop)`` onto ``node`` (``numactl --membind``)."""
        self._check_range(start, stop)
        self._check_node(node)
        old = self.home[start:stop]
        touched = old[old != UNTOUCHED]
        if touched.size:
            np.subtract.at(self._home_counts, touched, 1)
        self.home[start:stop] = node
        self._home_counts[node] += stop - start

    def interleave(self, start: int, stop: int, nodes: list[int]) -> None:
        """Home pages ``[start, stop)`` round-robin over ``nodes``."""
        self._check_range(start, stop)
        if not nodes:
            raise MemoryModelError("interleave requires at least one node")
        for n in nodes:
            self._check_node(n)
        old = self.home[start:stop]
        touched = old[old != UNTOUCHED]
        if touched.size:
            np.subtract.at(self._home_counts, touched, 1)
        pattern = np.asarray(nodes, dtype=np.int32)
        assignment = pattern[np.arange(start, stop) % len(nodes)]
        self.home[start:stop] = assignment
        np.add.at(self._home_counts, assignment, 1)

    def record_touch(self, start: int, stop: int, node: int) -> None:
        """Update last-touch state for pages ``[start, stop)``."""
        self._check_range(start, stop)
        self._check_node(node)
        sl = self.last[start:stop]
        old = sl[sl != UNTOUCHED]
        if old.size:
            np.subtract.at(self._last_counts, old, 1)
        sl[:] = node
        self._last_counts[node] += stop - start

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def home_histogram(self, start: int, stop: int) -> tuple[np.ndarray, int]:
        """Per-node home counts for ``[start, stop)`` plus untouched count."""
        self._check_range(start, stop)
        sl = self.home[start:stop]
        touched = sl[sl != UNTOUCHED]
        counts = np.bincount(touched, minlength=self.num_nodes).astype(np.float64)
        return counts, int((stop - start) - touched.size)

    def last_touch_fraction(self, start: int, stop: int, node: int) -> float:
        """Fraction of pages ``[start, stop)`` last touched by ``node``."""
        self._check_range(start, stop)
        self._check_node(node)
        sl = self.last[start:stop]
        return float((sl == node).sum()) / (stop - start)

    def region_home_weights(self) -> np.ndarray:
        """Region-wide home distribution as weights over nodes.

        Untouched pages contribute nothing; callers must handle the
        untouched fraction (see :meth:`untouched_fraction`).
        """
        total = self._home_counts.sum()
        if total == 0:
            return np.zeros(self.num_nodes)
        return self._home_counts / total

    def region_last_weights(self) -> np.ndarray:
        """Region-wide last-touch distribution as weights over nodes."""
        total = self._last_counts.sum()
        if total == 0:
            return np.zeros(self.num_nodes)
        return self._last_counts / total

    def untouched_fraction(self) -> float:
        return 1.0 - self._home_counts.sum() / self.num_pages

    def home_counts(self) -> np.ndarray:
        """Copy of the cached per-node home-page counts."""
        return self._home_counts.copy()

    # ------------------------------------------------------------------
    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start < stop <= self.num_pages):
            raise MemoryModelError(
                f"bad page range [{start}, {stop}) for region of {self.num_pages} pages"
            )

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise MemoryModelError(f"unknown node {node} (machine has {self.num_nodes})")
