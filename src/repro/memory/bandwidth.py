"""Per-node memory bandwidth sharing with a superlinear contention penalty.

Each NUMA node's memory controller has a peak bandwidth ``B_n``.  Running
tasks *demand* bandwidth: a memory phase running alone streams at the
single-core bandwidth ``bw_core``; its demand is split over nodes by the
chunk's home-node weights.  When the total demand ``D_n`` on a node exceeds
``B_n``, every accessor of that node slows down by

    slowdown_n = (D_n / B_n) ** (1 + gamma)

``gamma = 0`` is ideal fair sharing (aggregate throughput stays at peak).
``gamma > 0`` models the superlinear penalty real memory systems exhibit
under irregular access — DRAM row-buffer thrashing, queueing delay in the
memory controller, and coherence storms — which is precisely the
interference ILAN's moldability exploits: beyond the saturation point,
*adding cores reduces aggregate throughput*, so running a memory-bound
irregular taskloop on fewer cores finishes sooner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryModelError
from repro.topology.machine import GIB, MachineTopology

__all__ = ["BandwidthModel", "node_demand", "contention_slowdown"]

DEFAULT_CORE_BANDWIDTH = 12.0 * GIB


@dataclass(frozen=True)
class BandwidthModel:
    """Static bandwidth parameters of a machine.

    Attributes
    ----------
    node_bandwidth:
        Peak DRAM bandwidth per NUMA node, bytes/s, shape ``(num_nodes,)``.
    core_bandwidth:
        Streaming bandwidth one core can pull on an uncontended local node,
        bytes/s.  With 8 cores/node at 12 GB/s against a 40 GB/s node, full
        occupancy oversubscribes a node 2.4x — matching the saturation
        behaviour of the Zen 4 platform.
    """

    node_bandwidth: np.ndarray
    core_bandwidth: float = DEFAULT_CORE_BANDWIDTH

    def __post_init__(self) -> None:
        if self.node_bandwidth.ndim != 1 or self.node_bandwidth.size == 0:
            raise MemoryModelError("node_bandwidth must be a non-empty vector")
        if np.any(self.node_bandwidth <= 0):
            raise MemoryModelError("node bandwidths must be positive")
        if self.core_bandwidth <= 0:
            raise MemoryModelError("core bandwidth must be positive")
        self.node_bandwidth.setflags(write=False)

    @staticmethod
    def from_topology(
        topology: MachineTopology, *, core_bandwidth: float = DEFAULT_CORE_BANDWIDTH
    ) -> "BandwidthModel":
        """Read per-node peak bandwidths from the topology description."""
        bw = np.array([n.mem_bandwidth for n in topology.nodes], dtype=np.float64)
        return BandwidthModel(node_bandwidth=bw, core_bandwidth=core_bandwidth)

    @property
    def num_nodes(self) -> int:
        return int(self.node_bandwidth.size)


def node_demand(
    weights: np.ndarray, mem_intensity: np.ndarray, core_bandwidth: float
) -> np.ndarray:
    """Aggregate bandwidth demand per node.

    Parameters
    ----------
    weights:
        ``(num_running, num_nodes)`` home-node weights of each running
        chunk (rows sum to 1 for pure memory phases).
    mem_intensity:
        ``(num_running,)`` fraction of each chunk's time that is memory
        bound; scales how much of ``core_bandwidth`` the chunk demands.
    core_bandwidth:
        Solo streaming bandwidth of one core.

    Returns
    -------
    ``(num_nodes,)`` total demanded bytes/s per node.
    """
    if weights.ndim != 2:
        raise MemoryModelError("weights must be 2-D (tasks x nodes)")
    if mem_intensity.shape != (weights.shape[0],):
        raise MemoryModelError("mem_intensity length must match the number of tasks")
    return core_bandwidth * (mem_intensity[:, None] * weights).sum(axis=0)


def contention_slowdown(
    demand: np.ndarray, capacity: np.ndarray, gamma: float | np.ndarray = 0.0
) -> np.ndarray:
    """Per-node slowdown factors ``max(1, D/B)^(1+gamma)``.

    ``gamma`` may be scalar (node-independent penalty) or per-node.
    Values are always >= 1; a node below saturation contributes no
    slowdown.
    """
    if demand.shape != capacity.shape:
        raise MemoryModelError("demand and capacity must have the same shape")
    g = np.asarray(gamma, dtype=np.float64)
    if np.any(g < 0):
        raise MemoryModelError("gamma must be non-negative")
    ratio = np.maximum(demand / capacity, 1.0)
    return ratio ** (1.0 + g)
