"""Textual topology descriptions, in the spirit of ``hwloc``'s ``lstopo``.

ILAN uses the hwloc API to discover the machine; this module provides the
equivalent for the simulated platform: a small indentation-based format
that round-trips through :func:`format_topology` / :func:`parse_topology`,
so experiment configurations can describe machines declaratively::

    machine zen4-9354
      socket 0
        node 0 mem=96G bw=40G
          ccd 0 l3=32M
            cores 0-3
          ccd 1 l3=32M
            cores 4-7
      ...
"""

from __future__ import annotations

import re

from repro.errors import TopologyError
from repro.topology.machine import (
    CCD,
    GIB,
    MIB,
    Core,
    MachineTopology,
    NumaNode,
    Socket,
    contiguous_ranges,
)

__all__ = ["format_topology", "parse_topology", "parse_size", "format_size"]

_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)([KMGT]?)$")
_UNITS = {"": 1, "K": 1024, "M": MIB, "G": GIB, "T": 1024 * GIB}


def parse_size(text: str) -> int:
    """Parse ``96G`` / ``32M`` / ``4096`` into bytes."""
    m = _SIZE_RE.match(text.strip())
    if not m:
        raise TopologyError(f"cannot parse size {text!r}")
    return int(float(m.group(1)) * _UNITS[m.group(2)])


def format_size(num_bytes: float) -> str:
    """Format bytes with the largest exact unit (falls back to G with decimals)."""
    num_bytes = int(num_bytes)
    for unit in ("T", "G", "M", "K"):
        if num_bytes % _UNITS[unit] == 0 and num_bytes >= _UNITS[unit]:
            return f"{num_bytes // _UNITS[unit]}{unit}"
    return str(num_bytes)


def format_topology(topology: MachineTopology) -> str:
    """Render ``topology`` in the textual format (round-trips via parse)."""
    lines = [f"machine {topology.name}"]
    for socket in topology.sockets:
        lines.append(f"  socket {socket.socket_id}")
        for node_id in socket.node_ids:
            node = topology.nodes[node_id]
            lines.append(
                f"    node {node.node_id} mem={format_size(node.mem_bytes)} "
                f"bw={format_size(node.mem_bandwidth)}"
            )
            for ccd_id in node.ccd_ids:
                ccd = topology.ccds[ccd_id]
                lines.append(f"      ccd {ccd.ccd_id} l3={format_size(ccd.l3_bytes)}")
                ranges = contiguous_ranges(sorted(ccd.core_ids))
                parts = [f"{lo}" if lo == hi else f"{lo}-{hi}" for lo, hi in ranges]
                lines.append(f"        cores {','.join(parts)}")
    return "\n".join(lines) + "\n"


def _parse_core_list(text: str) -> list[int]:
    out: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise TopologyError(f"descending core range {part!r}")
            out.extend(range(lo, hi + 1))
        else:
            out.append(int(part))
    return out


def parse_topology(text: str) -> MachineTopology:
    """Parse the textual format back into a validated :class:`MachineTopology`."""
    name = "machine"
    sockets: list[Socket] = []
    nodes: list[NumaNode] = []
    ccds: list[CCD] = []
    cores: dict[int, Core] = {}

    cur_socket: int | None = None
    cur_node: int | None = None
    cur_ccd: int | None = None
    socket_nodes: dict[int, list[int]] = {}
    node_ccds: dict[int, list[int]] = {}
    node_cores: dict[int, list[int]] = {}
    ccd_cores: dict[int, list[int]] = {}
    node_attrs: dict[int, dict[str, int]] = {}
    node_socket: dict[int, int] = {}
    ccd_attrs: dict[int, dict[str, int]] = {}
    ccd_node: dict[int, int] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "machine":
                name = tokens[1] if len(tokens) > 1 else "machine"
            elif kind == "socket":
                cur_socket = int(tokens[1])
                socket_nodes.setdefault(cur_socket, [])
            elif kind == "node":
                if cur_socket is None:
                    raise TopologyError("node outside socket")
                cur_node = int(tokens[1])
                attrs = _parse_attrs(tokens[2:])
                node_attrs[cur_node] = attrs
                node_socket[cur_node] = cur_socket
                socket_nodes[cur_socket].append(cur_node)
                node_ccds.setdefault(cur_node, [])
                node_cores.setdefault(cur_node, [])
            elif kind == "ccd":
                if cur_node is None:
                    raise TopologyError("ccd outside node")
                cur_ccd = int(tokens[1])
                ccd_attrs[cur_ccd] = _parse_attrs(tokens[2:])
                ccd_node[cur_ccd] = cur_node
                node_ccds[cur_node].append(cur_ccd)
                ccd_cores.setdefault(cur_ccd, [])
            elif kind == "cores":
                if cur_ccd is None or cur_node is None or cur_socket is None:
                    raise TopologyError("cores outside ccd")
                for cid in _parse_core_list(" ".join(tokens[1:])):
                    if cid in cores:
                        raise TopologyError(f"core {cid} listed twice")
                    cores[cid] = Core(
                        core_id=cid,
                        ccd_id=cur_ccd,
                        node_id=cur_node,
                        socket_id=cur_socket,
                    )
                    ccd_cores[cur_ccd].append(cid)
                    node_cores[cur_node].append(cid)
            else:
                raise TopologyError(f"unknown directive {kind!r}")
        except (ValueError, IndexError) as exc:
            raise TopologyError(f"line {lineno}: cannot parse {line!r}") from exc

    if not cores:
        raise TopologyError("topology text defines no cores")
    expected = list(range(len(cores)))
    if sorted(cores) != expected:
        raise TopologyError("core ids must be dense starting at 0")

    for node_id in sorted(node_attrs):
        attrs = node_attrs[node_id]
        nodes.append(
            NumaNode(
                node_id=node_id,
                socket_id=node_socket[node_id],
                ccd_ids=tuple(node_ccds[node_id]),
                core_ids=tuple(sorted(node_cores[node_id])),
                mem_bytes=attrs.get("mem", 96 * GIB),
                mem_bandwidth=float(attrs.get("bw", 40 * GIB)),
            )
        )
    for ccd_id in sorted(ccd_attrs):
        ccds.append(
            CCD(
                ccd_id=ccd_id,
                node_id=ccd_node[ccd_id],
                socket_id=node_socket[ccd_node[ccd_id]],
                core_ids=tuple(sorted(ccd_cores[ccd_id])),
                l3_bytes=ccd_attrs[ccd_id].get("l3", 32 * MIB),
            )
        )
    for socket_id in sorted(socket_nodes):
        sockets.append(Socket(socket_id=socket_id, node_ids=tuple(socket_nodes[socket_id])))

    return MachineTopology.from_components(
        name=name,
        sockets=tuple(sockets),
        nodes=tuple(nodes),
        ccds=tuple(ccds),
        cores=tuple(sorted(cores.values(), key=lambda c: c.core_id)),
    )


def _parse_attrs(tokens: list[str]) -> dict[str, int]:
    attrs: dict[str, int] = {}
    for tok in tokens:
        if "=" not in tok:
            raise TopologyError(f"malformed attribute {tok!r}")
        key, value = tok.split("=", 1)
        attrs[key] = parse_size(value)
    return attrs
