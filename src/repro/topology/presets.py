"""Ready-made machine topologies.

``zen4_9354`` reproduces the paper's evaluation platform; the small
machines keep unit tests and examples fast while exercising every level of
the hierarchy.
"""

from __future__ import annotations

from repro.topology.distances import DistanceMatrix
from repro.topology.machine import GIB, MIB, MachineTopology

__all__ = [
    "zen4_9354",
    "dual_socket_small",
    "single_node",
    "tiny_two_node",
    "default_distances",
]


def zen4_9354(*, mem_bandwidth_per_node: float = 40.0 * GIB) -> MachineTopology:
    """The paper's platform: dual-socket AMD EPYC 9354, NPS4.

    64 cores organised as 8 NUMA nodes x 8 cores (4 NUMA nodes per socket,
    so 2 sockets x 32 cores), two 4-core CCDs per NUMA node, 32 MB L3 per
    CCD, 768 GB total memory (96 GB per node).
    """
    return MachineTopology.build(
        name="zen4-9354",
        num_sockets=2,
        nodes_per_socket=4,
        ccds_per_node=2,
        cores_per_ccd=4,
        l3_bytes=32 * MIB,
        mem_bytes_per_node=96 * GIB,
        mem_bandwidth_per_node=mem_bandwidth_per_node,
    )


def dual_socket_small() -> MachineTopology:
    """2 sockets x 2 nodes x 1 CCD x 4 cores = 16 cores; fast integration tests."""
    return MachineTopology.build(
        name="dual-socket-small",
        num_sockets=2,
        nodes_per_socket=2,
        ccds_per_node=1,
        cores_per_ccd=4,
        mem_bytes_per_node=8 * GIB,
        mem_bandwidth_per_node=10.0 * GIB,
    )


def single_node(num_cores: int = 4) -> MachineTopology:
    """A UMA machine (one NUMA node); the degenerate case ILAN must not break."""
    return MachineTopology.build(
        name=f"uma-{num_cores}",
        num_sockets=1,
        nodes_per_socket=1,
        ccds_per_node=1,
        cores_per_ccd=num_cores,
        mem_bytes_per_node=8 * GIB,
        mem_bandwidth_per_node=10.0 * GIB,
    )


def tiny_two_node() -> MachineTopology:
    """1 socket x 2 nodes x 1 CCD x 2 cores = 4 cores; smallest NUMA machine."""
    return MachineTopology.build(
        name="tiny-two-node",
        num_sockets=1,
        nodes_per_socket=2,
        ccds_per_node=1,
        cores_per_ccd=2,
        mem_bytes_per_node=2 * GIB,
        mem_bandwidth_per_node=4.0 * GIB,
    )


def default_distances(topology: MachineTopology) -> DistanceMatrix:
    """Three-class Zen 4-like distance matrix for any topology.

    The values are *effective throughput* distances, not raw SLIT latency
    ratios: sustained remote streams overlap/prefetch, so a cross-socket
    stream costs ~1.4x a local one on this platform even though the raw
    load-to-use latency ratio is above 3x.  (The ACPI SLIT of the machine
    reports 12/32 (1.2x/3.2x); using those directly makes every remote access cost its
    full latency, which overstates the NUMA penalty several-fold.)
    """
    return DistanceMatrix.from_topology(topology, intra_socket=11, inter_socket=14)
