"""Hierarchical machine model: sockets → NUMA nodes → CCDs → cores.

This is the simulated equivalent of the topology information the ILAN paper
obtains through *hwloc*.  The model mirrors the structure of the evaluation
platform (AMD EPYC 9354 "Zen 4"): each socket contains several NUMA nodes,
each NUMA node groups one or more Core Complex Dies (CCDs) that share an L3
cache, and each CCD contains a set of cores with private L1/L2 caches.

The topology is immutable after construction; all scheduler components
consume it read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import TopologyError

__all__ = [
    "Core",
    "CCD",
    "NumaNode",
    "Socket",
    "MachineTopology",
    "GIB",
    "MIB",
]

GIB = 1024**3
MIB = 1024**2


@dataclass(frozen=True)
class Core:
    """A physical core, the unit a worker thread is pinned to.

    Attributes
    ----------
    core_id:
        Global core index, dense in ``[0, machine.num_cores)``.
    ccd_id:
        Global index of the CCD (L3 group) containing this core.
    node_id:
        Global index of the NUMA node containing this core.
    socket_id:
        Index of the socket containing this core.
    base_speed:
        Relative execution speed (1.0 = nominal).  Static asymmetry such as
        a cluster-wide frequency offset can be expressed here; dynamic
        asymmetry is modelled by the interference layer instead.
    """

    core_id: int
    ccd_id: int
    node_id: int
    socket_id: int
    base_speed: float = 1.0


@dataclass(frozen=True)
class CCD:
    """A Core Complex Die: a group of cores sharing one L3 cache slice."""

    ccd_id: int
    node_id: int
    socket_id: int
    core_ids: tuple[int, ...]
    l3_bytes: int = 32 * MIB


@dataclass(frozen=True)
class NumaNode:
    """A NUMA node: cores grouped around one memory controller.

    ``mem_bandwidth`` is the peak local DRAM bandwidth of the node's memory
    controller in bytes/second; the contention model shares it between all
    tasks whose pages live on this node.
    """

    node_id: int
    socket_id: int
    ccd_ids: tuple[int, ...]
    core_ids: tuple[int, ...]
    mem_bytes: int = 96 * GIB
    mem_bandwidth: float = 40.0 * GIB

    @property
    def num_cores(self) -> int:
        return len(self.core_ids)

    @property
    def primary_core(self) -> int:
        """The node's primary core: ILAN enqueues node-bound tasks here."""
        return self.core_ids[0]


@dataclass(frozen=True)
class Socket:
    """A physical processor package containing several NUMA nodes."""

    socket_id: int
    node_ids: tuple[int, ...]


@dataclass(frozen=True)
class MachineTopology:
    """Immutable description of a simulated shared-memory machine.

    Build instances with :meth:`MachineTopology.build` (regular machines)
    or assemble the component tuples manually for irregular shapes; either
    way :meth:`validate` is invoked and raises :class:`TopologyError` on
    inconsistencies.
    """

    name: str
    sockets: tuple[Socket, ...]
    nodes: tuple[NumaNode, ...]
    ccds: tuple[CCD, ...]
    cores: tuple[Core, ...]
    _node_of_core: tuple[int, ...] = field(repr=False, default=())
    _ccd_of_core: tuple[int, ...] = field(repr=False, default=())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        *,
        name: str = "machine",
        num_sockets: int = 1,
        nodes_per_socket: int = 1,
        ccds_per_node: int = 1,
        cores_per_ccd: int = 1,
        l3_bytes: int = 32 * MIB,
        mem_bytes_per_node: int = 96 * GIB,
        mem_bandwidth_per_node: float = 40.0 * GIB,
        base_speed: float = 1.0,
    ) -> "MachineTopology":
        """Construct a regular topology.

        All counts must be >= 1.  Cores are numbered depth-first so that a
        NUMA node always owns a contiguous range of core ids, matching how
        hwloc enumerates cores on the Zen 4 evaluation platform.
        """
        for label, value in (
            ("num_sockets", num_sockets),
            ("nodes_per_socket", nodes_per_socket),
            ("ccds_per_node", ccds_per_node),
            ("cores_per_ccd", cores_per_ccd),
        ):
            if value < 1:
                raise TopologyError(f"{label} must be >= 1, got {value}")
        if l3_bytes <= 0 or mem_bytes_per_node <= 0 or mem_bandwidth_per_node <= 0:
            raise TopologyError("cache/memory sizes and bandwidth must be positive")
        if base_speed <= 0:
            raise TopologyError(f"base_speed must be positive, got {base_speed}")

        sockets: list[Socket] = []
        nodes: list[NumaNode] = []
        ccds: list[CCD] = []
        cores: list[Core] = []
        for s in range(num_sockets):
            socket_nodes: list[int] = []
            for _ in range(nodes_per_socket):
                node_id = len(nodes)
                node_ccds: list[int] = []
                node_cores: list[int] = []
                for _ in range(ccds_per_node):
                    ccd_id = len(ccds)
                    ccd_cores: list[int] = []
                    for _ in range(cores_per_ccd):
                        core_id = len(cores)
                        cores.append(
                            Core(
                                core_id=core_id,
                                ccd_id=ccd_id,
                                node_id=node_id,
                                socket_id=s,
                                base_speed=base_speed,
                            )
                        )
                        ccd_cores.append(core_id)
                        node_cores.append(core_id)
                    ccds.append(
                        CCD(
                            ccd_id=ccd_id,
                            node_id=node_id,
                            socket_id=s,
                            core_ids=tuple(ccd_cores),
                            l3_bytes=l3_bytes,
                        )
                    )
                    node_ccds.append(ccd_id)
                nodes.append(
                    NumaNode(
                        node_id=node_id,
                        socket_id=s,
                        ccd_ids=tuple(node_ccds),
                        core_ids=tuple(node_cores),
                        mem_bytes=mem_bytes_per_node,
                        mem_bandwidth=mem_bandwidth_per_node,
                    )
                )
                socket_nodes.append(node_id)
            sockets.append(Socket(socket_id=s, node_ids=tuple(socket_nodes)))

        return MachineTopology.from_components(
            name=name,
            sockets=tuple(sockets),
            nodes=tuple(nodes),
            ccds=tuple(ccds),
            cores=tuple(cores),
        )

    @staticmethod
    def from_components(
        *,
        name: str,
        sockets: tuple[Socket, ...],
        nodes: tuple[NumaNode, ...],
        ccds: tuple[CCD, ...],
        cores: tuple[Core, ...],
    ) -> "MachineTopology":
        """Assemble and validate a topology from explicit component tuples."""
        topo = MachineTopology(
            name=name,
            sockets=sockets,
            nodes=nodes,
            ccds=ccds,
            cores=cores,
            _node_of_core=tuple(c.node_id for c in cores),
            _ccd_of_core=tuple(c.ccd_id for c in cores),
        )
        topo.validate()
        return topo

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural consistency; raise :class:`TopologyError` if broken."""
        if not self.cores:
            raise TopologyError("topology has no cores")
        if not self.nodes:
            raise TopologyError("topology has no NUMA nodes")
        for i, core in enumerate(self.cores):
            if core.core_id != i:
                raise TopologyError(f"core ids must be dense; index {i} holds id {core.core_id}")
            if not (0 <= core.node_id < len(self.nodes)):
                raise TopologyError(f"core {i} references unknown node {core.node_id}")
            if not (0 <= core.ccd_id < len(self.ccds)):
                raise TopologyError(f"core {i} references unknown ccd {core.ccd_id}")
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise TopologyError(f"node ids must be dense; index {i} holds id {node.node_id}")
            if not node.core_ids:
                raise TopologyError(f"node {i} has no cores")
            for cid in node.core_ids:
                if self.cores[cid].node_id != i:
                    raise TopologyError(f"core {cid} listed in node {i} but points to node {self.cores[cid].node_id}")
            if not (0 <= node.socket_id < len(self.sockets)):
                raise TopologyError(f"node {i} references unknown socket {node.socket_id}")
        for i, ccd in enumerate(self.ccds):
            if ccd.ccd_id != i:
                raise TopologyError(f"ccd ids must be dense; index {i} holds id {ccd.ccd_id}")
            for cid in ccd.core_ids:
                if self.cores[cid].ccd_id != i:
                    raise TopologyError(f"core {cid} listed in ccd {i} but points to ccd {self.cores[cid].ccd_id}")
        for i, socket in enumerate(self.sockets):
            if socket.socket_id != i:
                raise TopologyError(f"socket ids must be dense; index {i} holds id {socket.socket_id}")
            for nid in socket.node_ids:
                if self.nodes[nid].socket_id != i:
                    raise TopologyError(f"node {nid} listed in socket {i} but points to socket {self.nodes[nid].socket_id}")
        seen_cores = [cid for node in self.nodes for cid in node.core_ids]
        if sorted(seen_cores) != list(range(len(self.cores))):
            raise TopologyError("node core lists do not partition the core set")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    @property
    def num_ccds(self) -> int:
        return len(self.ccds)

    @property
    def cores_per_node(self) -> int:
        """Core count of the largest node (== node size on regular machines).

        ILAN uses this as the default thread-count granularity ``g``.
        """
        return max(node.num_cores for node in self.nodes)

    def node_of_core(self, core_id: int) -> int:
        """NUMA node id owning ``core_id``."""
        self._check_core(core_id)
        return self._node_of_core[core_id]

    def ccd_of_core(self, core_id: int) -> int:
        """CCD (L3 group) id owning ``core_id``."""
        self._check_core(core_id)
        return self._ccd_of_core[core_id]

    def socket_of_node(self, node_id: int) -> int:
        self._check_node(node_id)
        return self.nodes[node_id].socket_id

    def cores_of_node(self, node_id: int) -> tuple[int, ...]:
        self._check_node(node_id)
        return self.nodes[node_id].core_ids

    def primary_core_of_node(self, node_id: int) -> int:
        self._check_node(node_id)
        return self.nodes[node_id].primary_core

    def nodes_of_socket(self, socket_id: int) -> tuple[int, ...]:
        if not (0 <= socket_id < len(self.sockets)):
            raise TopologyError(f"unknown socket {socket_id}")
        return self.sockets[socket_id].node_ids

    def same_socket(self, node_a: int, node_b: int) -> bool:
        """True when two NUMA nodes share a socket (cheaper interconnect)."""
        return self.socket_of_node(node_a) == self.socket_of_node(node_b)

    def siblings_in_node(self, core_id: int) -> tuple[int, ...]:
        """All cores in the same NUMA node as ``core_id`` (including it)."""
        return self.cores_of_node(self.node_of_core(core_id))

    def iter_cores(self) -> Iterator[Core]:
        return iter(self.cores)

    def core_ids(self) -> range:
        return range(self.num_cores)

    def node_ids(self) -> range:
        return range(self.num_nodes)

    def describe(self) -> str:
        """One-line human-readable summary of the machine shape."""
        return (
            f"{self.name}: {self.num_sockets} socket(s), {self.num_nodes} NUMA node(s), "
            f"{self.num_ccds} CCD(s), {self.num_cores} core(s)"
        )

    # ------------------------------------------------------------------
    def _check_core(self, core_id: int) -> None:
        if not (0 <= core_id < len(self.cores)):
            raise TopologyError(f"unknown core {core_id}")

    def _check_node(self, node_id: int) -> None:
        if not (0 <= node_id < len(self.nodes)):
            raise TopologyError(f"unknown node {node_id}")


def contiguous_ranges(ids: Sequence[int]) -> list[tuple[int, int]]:
    """Collapse a sorted id sequence into inclusive ``(start, end)`` ranges.

    Utility shared by the hwloc-style formatter and the affinity masks.
    """
    ranges: list[tuple[int, int]] = []
    for i in ids:
        if ranges and i == ranges[-1][1] + 1:
            ranges[-1] = (ranges[-1][0], i)
        else:
            ranges.append((i, i))
    return ranges
