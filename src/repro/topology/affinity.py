"""CPU and NUMA-node affinity masks plus OpenMP ``proc_bind`` policies.

``CpuMask``/``NodeMask`` wrap an integer bitmap the same way the Linux
``cpu_set_t`` and the ILAN ``node_mask`` taskloop parameter do: bit *i* set
means core/node *i* is eligible.  The masks are immutable value types.

``proc_bind_close`` and ``proc_bind_spread`` reproduce the two built-in
OpenMP affinity policies the paper contrasts ILAN against: *close* packs
threads onto consecutive cores, *spread* distributes them as sparsely as
possible across the topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import TopologyError
from repro.topology.machine import MachineTopology, contiguous_ranges

__all__ = ["BitMask", "CpuMask", "NodeMask", "proc_bind_close", "proc_bind_spread"]


@dataclass(frozen=True)
class BitMask:
    """Immutable bitmap over ``width`` slots (cores or NUMA nodes)."""

    bits: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise TopologyError(f"mask width must be positive, got {self.width}")
        if self.bits < 0:
            raise TopologyError("mask bits must be non-negative")
        if self.bits >> self.width:
            raise TopologyError(
                f"mask 0x{self.bits:x} has bits set beyond width {self.width}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def empty(cls, width: int) -> "BitMask":
        return cls(bits=0, width=width)

    @classmethod
    def full(cls, width: int) -> "BitMask":
        return cls(bits=(1 << width) - 1, width=width)

    @classmethod
    def from_indices(cls, indices: Iterable[int], width: int) -> "BitMask":
        bits = 0
        for i in indices:
            if not (0 <= i < width):
                raise TopologyError(f"index {i} out of range for width {width}")
            bits |= 1 << i
        return cls(bits=bits, width=width)

    # -- queries ----------------------------------------------------------
    def contains(self, index: int) -> bool:
        if not (0 <= index < self.width):
            raise TopologyError(f"index {index} out of range for width {self.width}")
        return bool(self.bits >> index & 1)

    def indices(self) -> list[int]:
        """Set bit positions in increasing order."""
        return [i for i in range(self.width) if self.bits >> i & 1]

    def count(self) -> int:
        return self.bits.bit_count()

    def is_empty(self) -> bool:
        return self.bits == 0

    def first(self) -> int:
        """Lowest set index; raises on an empty mask."""
        if self.bits == 0:
            raise TopologyError("mask is empty")
        return (self.bits & -self.bits).bit_length() - 1

    # -- algebra ----------------------------------------------------------
    def union(self, other: "BitMask") -> "BitMask":
        self._check_width(other)
        return type(self)(bits=self.bits | other.bits, width=self.width)

    def intersection(self, other: "BitMask") -> "BitMask":
        self._check_width(other)
        return type(self)(bits=self.bits & other.bits, width=self.width)

    def difference(self, other: "BitMask") -> "BitMask":
        self._check_width(other)
        return type(self)(bits=self.bits & ~other.bits, width=self.width)

    def with_index(self, index: int) -> "BitMask":
        if not (0 <= index < self.width):
            raise TopologyError(f"index {index} out of range for width {self.width}")
        return type(self)(bits=self.bits | (1 << index), width=self.width)

    def is_subset(self, other: "BitMask") -> bool:
        self._check_width(other)
        return self.bits & ~other.bits == 0

    def _check_width(self, other: "BitMask") -> None:
        if self.width != other.width:
            raise TopologyError(f"mask width mismatch: {self.width} vs {other.width}")

    # -- dunder -----------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self.indices())

    def __len__(self) -> int:
        return self.count()

    def __str__(self) -> str:
        if self.bits == 0:
            return "{}"
        parts = [
            f"{lo}" if lo == hi else f"{lo}-{hi}"
            for lo, hi in contiguous_ranges(self.indices())
        ]
        return "{" + ",".join(parts) + "}"


class CpuMask(BitMask):
    """Bitmap of eligible cores (1 bit per core)."""


class NodeMask(BitMask):
    """Bitmap of eligible NUMA nodes: ILAN's per-taskloop ``node_mask``."""

    @classmethod
    def for_topology(cls, topology: MachineTopology) -> "NodeMask":
        """Full mask covering every node of ``topology``."""
        return cls.full(topology.num_nodes)

    def cores(self, topology: MachineTopology) -> list[int]:
        """All core ids belonging to the selected nodes, ascending."""
        if self.width != topology.num_nodes:
            raise TopologyError(
                f"node mask width {self.width} does not match topology with "
                f"{topology.num_nodes} nodes"
            )
        out: list[int] = []
        for node_id in self.indices():
            out.extend(topology.cores_of_node(node_id))
        return sorted(out)


def proc_bind_close(topology: MachineTopology, num_threads: int) -> list[int]:
    """OpenMP ``proc_bind(close)``: pack threads onto consecutive cores.

    Returns the core id for each thread; threads wrap around when
    ``num_threads`` exceeds the core count (oversubscription).
    """
    _check_threads(num_threads)
    n = topology.num_cores
    return [t % n for t in range(num_threads)]


def proc_bind_spread(topology: MachineTopology, num_threads: int) -> list[int]:
    """OpenMP ``proc_bind(spread)``: distribute threads sparsely.

    Threads are dealt round-robin across NUMA nodes, then packed within
    each node, approximating the LLVM runtime's spread partitioning.
    """
    _check_threads(num_threads)
    per_node: list[list[int]] = [list(topology.cores_of_node(n)) for n in topology.node_ids()]
    placement: list[int] = []
    cursor = [0] * topology.num_nodes
    node = 0
    for _ in range(num_threads):
        # find next node with spare cores, else wrap (oversubscription)
        for probe in range(topology.num_nodes):
            cand = (node + probe) % topology.num_nodes
            if cursor[cand] < len(per_node[cand]):
                node = cand
                break
        else:
            cursor = [0] * topology.num_nodes
        placement.append(per_node[node][cursor[node] % len(per_node[node])])
        cursor[node] += 1
        node = (node + 1) % topology.num_nodes
    return placement


def _check_threads(num_threads: int) -> None:
    if num_threads < 1:
        raise TopologyError(f"num_threads must be >= 1, got {num_threads}")
