"""Machine topology substrate: the simulated counterpart of hwloc.

Public surface:

- :class:`MachineTopology` and its components (:class:`Socket`,
  :class:`NumaNode`, :class:`CCD`, :class:`Core`);
- :class:`DistanceMatrix` (SLIT-style NUMA distances);
- affinity masks (:class:`CpuMask`, :class:`NodeMask`) and the OpenMP
  ``proc_bind`` placement policies;
- presets, including :func:`zen4_9354`, the paper's evaluation platform;
- the textual description format (:func:`parse_topology`,
  :func:`format_topology`).
"""

from repro.topology.affinity import (
    BitMask,
    CpuMask,
    NodeMask,
    proc_bind_close,
    proc_bind_spread,
)
from repro.topology.distances import LOCAL_DISTANCE, DistanceMatrix
from repro.topology.hwloc import format_size, format_topology, parse_size, parse_topology
from repro.topology.machine import (
    CCD,
    GIB,
    MIB,
    Core,
    MachineTopology,
    NumaNode,
    Socket,
    contiguous_ranges,
)
from repro.topology.presets import (
    default_distances,
    dual_socket_small,
    single_node,
    tiny_two_node,
    zen4_9354,
)

__all__ = [
    "BitMask",
    "CpuMask",
    "NodeMask",
    "proc_bind_close",
    "proc_bind_spread",
    "LOCAL_DISTANCE",
    "DistanceMatrix",
    "format_size",
    "format_topology",
    "parse_size",
    "parse_topology",
    "CCD",
    "GIB",
    "MIB",
    "Core",
    "MachineTopology",
    "NumaNode",
    "Socket",
    "contiguous_ranges",
    "default_distances",
    "dual_socket_small",
    "single_node",
    "tiny_two_node",
    "zen4_9354",
]
