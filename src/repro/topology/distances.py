"""NUMA distance matrix and latency factors.

Follows the ACPI SLIT convention: local distance is 10, remote distances
are relative to that (e.g. 32 means a remote access costs 3.2x a local
one).  The interference model multiplies a task's memory time by
``latency_factor(src, dst) = distance[src, dst] / 10``.

On the Zen 4 evaluation platform of the paper, nodes within a socket talk
over the on-package Infinity Fabric while cross-socket traffic crosses the
xGMI links, so three distance classes are enough: local, intra-socket and
inter-socket.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.machine import MachineTopology

__all__ = ["DistanceMatrix", "LOCAL_DISTANCE"]

LOCAL_DISTANCE = 10


@dataclass(frozen=True)
class DistanceMatrix:
    """Pairwise NUMA node distances in SLIT units.

    Attributes
    ----------
    matrix:
        ``(num_nodes, num_nodes)`` integer-valued float array; diagonal is
        ``LOCAL_DISTANCE``.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = self.matrix
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise TopologyError(f"distance matrix must be square, got shape {m.shape}")
        if not np.all(np.diag(m) == LOCAL_DISTANCE):
            raise TopologyError("distance matrix diagonal must equal the local distance (10)")
        if np.any(m < LOCAL_DISTANCE):
            raise TopologyError("remote distances cannot be smaller than the local distance")
        if not np.allclose(m, m.T):
            raise TopologyError("distance matrix must be symmetric")
        # freeze the backing array so the dataclass is genuinely immutable
        m.setflags(write=False)

    # ------------------------------------------------------------------
    @staticmethod
    def from_topology(
        topology: MachineTopology,
        *,
        intra_socket: int = 11,
        inter_socket: int = 14,
    ) -> "DistanceMatrix":
        """Derive the three-class distance matrix from a topology.

        Defaults approximate measured Zen 4 *effective* NUMA throughput
        factors (~1.1x within a socket, ~1.4x across sockets); see
        :func:`repro.topology.presets.default_distances`.
        """
        if not (LOCAL_DISTANCE <= intra_socket <= inter_socket):
            raise TopologyError(
                "expected local <= intra_socket <= inter_socket, got "
                f"{LOCAL_DISTANCE}, {intra_socket}, {inter_socket}"
            )
        n = topology.num_nodes
        m = np.full((n, n), float(inter_socket))
        for a in range(n):
            for b in range(n):
                if a == b:
                    m[a, b] = LOCAL_DISTANCE
                elif topology.same_socket(a, b):
                    m[a, b] = float(intra_socket)
        return DistanceMatrix(matrix=m)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]

    def distance(self, src_node: int, dst_node: int) -> float:
        """SLIT distance between two nodes."""
        self._check(src_node)
        self._check(dst_node)
        return float(self.matrix[src_node, dst_node])

    def latency_factor(self, src_node: int, dst_node: int) -> float:
        """Multiplier on memory time for accesses from ``src`` to ``dst``.

        1.0 for local accesses, > 1 for remote ones.
        """
        return self.distance(src_node, dst_node) / LOCAL_DISTANCE

    def latency_factors_from(self, src_node: int) -> np.ndarray:
        """Vector of latency factors from ``src_node`` to every node."""
        self._check(src_node)
        return self.matrix[src_node] / LOCAL_DISTANCE

    def nearest_nodes(self, src_node: int) -> list[int]:
        """All node ids ordered by increasing distance from ``src_node``.

        ``src_node`` itself comes first; ties break by node id, which keeps
        the ordering deterministic for the node-mask growth policy.
        """
        self._check(src_node)
        row = self.matrix[src_node]
        # src_node wins any distance tie (degenerate matrices may assign
        # remote nodes the local distance)
        return sorted(range(self.num_nodes), key=lambda n: (row[n], n != src_node, n))

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise TopologyError(f"unknown node {node} for {self.num_nodes}-node distance matrix")
