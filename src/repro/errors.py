"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Raised for malformed machine topologies or invalid topology queries."""


class MemoryModelError(ReproError):
    """Raised for invalid memory-system operations (bad pages, policies...)."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine reaches an inconsistent state."""


class RuntimeModelError(ReproError):
    """Raised for invalid operations on the simulated OpenMP runtime."""


class ConfigurationError(ReproError):
    """Raised for invalid taskloop configurations or scheduler parameters."""


class WorkloadError(ReproError):
    """Raised for malformed workload/application specifications."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid experiment requests."""


class JournalError(ExperimentError):
    """Raised for an unreadable or mismatched campaign write-ahead journal.

    A torn *tail* record (the crash the journal exists to survive) is not
    an error — replay drops it silently; this exception covers corruption
    anywhere earlier in the file and attempts to resume a journal written
    by a differently-configured campaign.
    """


class BenchError(ReproError):
    """Raised by the benchmark harness: malformed BENCH documents or
    invalid measurement/comparison requests."""


class ServeError(ReproError):
    """Base class of the multi-tenant scheduling service's errors."""


class TransientRunnerError(ServeError):
    """A retryable execution failure (injected or real, e.g. a worker
    pool hiccup): the job may be re-attempted within its attempt budget."""

    code = "transient"


class JobFailed(ServeError):
    """A job exhausted its attempt budget; carries the attempt history.

    ``attempts`` is a list of per-attempt dicts (``attempt``, ``error``,
    ``started_at``, ``finished_at``) in chronological order, so callers
    can see exactly how the job died.
    """

    code = "job_failed"

    def __init__(self, job_id: str, attempts: list[dict]):
        self.job_id = job_id
        self.attempts = list(attempts)
        history = "; ".join(
            f"attempt {a.get('attempt')}: {a.get('error')}" for a in self.attempts
        )
        super().__init__(
            f"job {job_id!r} failed after {len(self.attempts)} attempt(s) [{history}]"
        )
