"""Durable filesystem writes, shared by every persistence path.

Everything the repo persists — run-cache entries, campaign summaries,
metrics snapshots, Chrome traces — goes through :func:`atomic_write`:
the payload is written to a temporary file *in the target directory*,
flushed and ``fsync``'d, then ``os.replace``'d over the destination, and
the directory entry itself is fsync'd.  The guarantee is all-or-nothing
at every crash point: a reader either sees the complete previous version
or the complete new version, never a torn intermediate.  (The append-only
write-ahead journal, :mod:`repro.exp.journal`, is the one durable writer
that cannot rewrite whole files; it carries its own per-record CRC + fsync
discipline instead.)

The static analyzer's IO001 rule enforces the routing: inside ``exp/``
and ``serve/`` a direct ``open(..., "w")`` / ``Path.write_text`` is a
finding — the bare idiom is exactly the torn-write bug this module
removes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write", "atomic_write_json", "fsync_dir"]


def fsync_dir(path: str | Path) -> None:
    """Flush directory entry metadata (a rename is durable only after
    the *directory* is synced).  Best-effort: silently skipped where
    directories cannot be opened (e.g. some network filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str | Path,
    data: str | bytes,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary; parent directories
    are created as needed.  ``fsync=False`` skips the flush-to-disk calls
    (still atomic against concurrent readers, no longer against power
    loss) — tests use it to keep tiny-file churn fast.
    """
    path = Path(path)
    payload = data.encode(encoding) if isinstance(data, str) else data
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)
    return path


def atomic_write_json(
    path: str | Path,
    payload: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = True,
    fsync: bool = True,
) -> Path:
    """Serialise ``payload`` as JSON and :func:`atomic_write` it.

    The common shape of every human-readable artefact (campaign
    summaries, metrics snapshots): indented, key-sorted, newline-
    terminated.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write(path, text, fsync=fsync)
