"""Benchmark harness: seeded performance measurements of the simulator.

The package behind ``scripts/bench.py``.  It measures simulator
throughput (events/sec) for both slowdown engines on three synthetic
campaign sizes, campaign wall time cold vs. warm cache, and service
latency percentiles from a short load-generator run, and emits one
versioned ``BENCH_<n>.json`` document (:mod:`repro.bench.schema`) that
:mod:`repro.bench.compare` can diff against a previous run with a
regression budget.

Everything here is a pure function of its inputs and seeds *except* the
wall-clock reads, which are confined to the single annotated seam in
:mod:`repro.bench.timers` — the determinism lint (DET001) enforces that
no other wall-time read creeps into the package.
"""

from repro.bench.compare import compare_documents
from repro.bench.schema import SCHEMA_VERSION, validate
from repro.bench.timers import now, time_call

__all__ = [
    "SCHEMA_VERSION",
    "compare_documents",
    "now",
    "time_call",
    "validate",
]
