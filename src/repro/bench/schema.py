"""The ``BENCH_<n>.json`` document schema, and its validator.

One benchmark-harness invocation emits one document.  The layout is
stable and versioned so committed documents stay comparable across PRs:

* ``schema_version`` — bumped on any incompatible layout change;
* ``mode`` — ``full`` (committed baselines) or ``quick`` (CI smoke);
  both modes measure the *same campaign shapes* so their events/sec are
  comparable, quick just repeats less;
* ``metrics.events_per_sec.<campaign>`` — simulator throughput for each
  engine on the small/medium/large synthetic campaigns, plus the
  incremental-over-reference ``speedup``;
* ``metrics.campaign_wall_s`` — one cached experiment campaign, cold
  then warm (warm replays from the run cache, so warm ≤ cold is itself
  a correctness signal the bench tests assert);
* ``metrics.service_latency_s`` — client p50/p99 from a short in-process
  load-generator run against the scheduling service;
* every metric group carries its own ``environment`` fingerprint —
  captured when *that* metric was measured, so a document stitched
  together over time (or a machine change mid-run) is visible in the
  data rather than silently misleading.

Validation is hand-rolled on stdlib types (no jsonschema dependency);
:func:`validate` raises :class:`~repro.errors.BenchError` with a path to
the offending field.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any

import numpy as np

from repro.errors import BenchError

__all__ = [
    "CAMPAIGNS",
    "ENGINE_FIELDS",
    "SCHEMA_VERSION",
    "environment_fingerprint",
    "validate",
]

SCHEMA_VERSION = 1

#: Campaign sizes every document reports, smallest first.
CAMPAIGNS = ("small", "medium", "large")

#: Per-engine measurement fields inside an events_per_sec entry.
ENGINE_FIELDS = ("events", "wall_s", "events_per_sec", "repeats")

MODES = ("full", "quick")


def environment_fingerprint() -> dict[str, Any]:
    """Where a measurement was taken: enough to judge comparability."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


# ----------------------------------------------------------------------
def _fail(path: str, message: str) -> None:
    raise BenchError(f"BENCH document invalid at {path}: {message}")


def _require(doc: dict, path: str, key: str, kinds: type | tuple) -> Any:
    if key not in doc:
        _fail(f"{path}.{key}", "missing required field")
    value = doc[key]
    if not isinstance(value, kinds):
        _fail(f"{path}.{key}", f"expected {kinds}, got {type(value).__name__}")
    if isinstance(value, bool) and kinds in ((int, float), float, int):
        _fail(f"{path}.{key}", "expected a number, got a bool")
    return value


def _require_number(doc: dict, path: str, key: str, *, minimum: float = 0.0) -> float:
    value = _require(doc, path, key, (int, float))
    if value < minimum:
        _fail(f"{path}.{key}", f"must be >= {minimum}, got {value}")
    return float(value)


def _check_environment(env: Any, path: str) -> None:
    if not isinstance(env, dict):
        _fail(path, f"expected an environment dict, got {type(env).__name__}")
    for key in ("python", "numpy", "platform", "machine"):
        _require(env, path, key, str)
    _require(env, path, "cpu_count", int)


def _check_engine_entry(entry: Any, path: str) -> None:
    if not isinstance(entry, dict):
        _fail(path, f"expected a measurement dict, got {type(entry).__name__}")
    _require(entry, path, "events", int)
    if entry["events"] <= 0:
        _fail(f"{path}.events", "must be a positive count")
    _require_number(entry, path, "wall_s")
    _require_number(entry, path, "events_per_sec")
    _require(entry, path, "repeats", int)
    if entry["repeats"] < 1:
        _fail(f"{path}.repeats", "must be >= 1")


def validate(doc: Any) -> None:
    """Check ``doc`` against the schema; raise :class:`BenchError` if bad."""
    if not isinstance(doc, dict):
        raise BenchError(
            f"BENCH document must be a JSON object, got {type(doc).__name__}"
        )
    version = _require(doc, "$", "schema_version", int)
    if version != SCHEMA_VERSION:
        _fail("$.schema_version", f"expected {SCHEMA_VERSION}, got {version}")
    mode = _require(doc, "$", "mode", str)
    if mode not in MODES:
        _fail("$.mode", f"expected one of {MODES}, got {mode!r}")
    _require(doc, "$", "seed", int)
    metrics = _require(doc, "$", "metrics", dict)

    eps = _require(metrics, "$.metrics", "events_per_sec", dict)
    for campaign in CAMPAIGNS:
        path = f"$.metrics.events_per_sec.{campaign}"
        entry = eps.get(campaign)
        if not isinstance(entry, dict):
            _fail(path, "missing campaign entry")
        _check_environment(entry.get("environment"), f"{path}.environment")
        for engine in ("reference", "incremental"):
            _check_engine_entry(entry.get(engine), f"{path}.{engine}")
        _require_number(entry, path, "speedup")

    wall = _require(metrics, "$.metrics", "campaign_wall_s", dict)
    path = "$.metrics.campaign_wall_s"
    _check_environment(wall.get("environment"), f"{path}.environment")
    _require_number(wall, path, "cold_s")
    _require_number(wall, path, "warm_s")
    _require(wall, path, "runs", int)
    if wall["runs"] < 1:
        _fail(f"{path}.runs", "must be >= 1")

    serve = _require(metrics, "$.metrics", "service_latency_s", dict)
    path = "$.metrics.service_latency_s"
    _check_environment(serve.get("environment"), f"{path}.environment")
    _require(serve, path, "jobs", int)
    if serve["jobs"] < 1:
        _fail(f"{path}.jobs", "must be >= 1")
    for key in ("p50", "p99"):
        _require_number(serve, path, key)
    _require_number(serve, path, "throughput_jps")
