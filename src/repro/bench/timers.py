"""The benchmark harness's only wall-clock seam.

``repro.bench`` lives in a deterministic package (DET001), but its whole
job is measuring real elapsed time.  The contradiction is resolved by
funnelling *every* wall-time read through :func:`now` — one annotated,
monotonic call site — so the lint keeps guarding the rest of the package
(and the rest of the deterministic core) while measurements stay honest.

``benchmarks/conftest.py`` and ``scripts/run_experiments.py`` route their
timing through here too, so "how this repo measures wall time" has
exactly one definition.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

__all__ = ["now", "time_call"]

T = TypeVar("T")


def now() -> float:
    """Monotonic wall-clock seconds (undefined epoch; use differences)."""
    return time.perf_counter()  # repro: noqa DET001 -- the harness's sole wall-clock seam


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return ``(result, elapsed_seconds)``."""
    t0 = now()
    result = fn()
    return result, now() - t0
