"""Measurement harness behind ``scripts/bench.py``.

Three metric families, one document (:mod:`repro.bench.schema`):

* **events/sec** — a seeded synthetic campaign simulated start-to-finish
  under each slowdown engine on three machine scales: ``small`` (the
  16-core dual-socket test machine), ``medium`` (the paper's 64-core
  Zen 4) and ``large`` (a 1024-core, 64-node machine where the reference
  engine's per-step full recompute is most expensive).  The simulated
  results must be byte-identical across engines — the harness asserts it
  on every run, so a perf number can never come from a diverged
  simulation;
* **campaign wall time** — one cached experiment cell, cold (empty run
  cache) then warm (fully cached): the cache's reason to exist, measured;
* **service latency** — client-side p50/p99 from a short closed-loop
  load-generator run against an in-process scheduling service.

``quick`` mode measures the *same campaign shapes* with fewer repeats,
so quick (CI) documents are comparable with committed full ones.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable

from repro.bench.schema import SCHEMA_VERSION, environment_fingerprint, validate
from repro.bench.timers import time_call
from repro.errors import BenchError
from repro.exp.runner import ExperimentConfig, Runner
from repro.runtime.runtime import OpenMPRuntime
from repro.serve.loadgen import run_summary
from repro.topology.machine import GIB, MIB, MachineTopology
from repro.topology.presets import dual_socket_small, zen4_9354
from repro.workloads.base import Application
from repro.workloads.synthetic import make_synthetic

__all__ = ["run_benchmarks", "CAMPAIGN_SPECS", "CampaignSpec"]


def _large_machine() -> MachineTopology:
    """1024 cores over 64 NUMA nodes: the reference engine's worst case.

    Per simulation step the reference recomputes a (cores x nodes)
    contention penalty and scans every core for dispatch; the incremental
    engine touches only changed rows.  This scale is where that asymmetry
    is the paper-relevant headline number.
    """
    return MachineTopology.build(
        name="bench-large-1024",
        num_sockets=8,
        nodes_per_socket=8,
        ccds_per_node=2,
        cores_per_ccd=8,
        l3_bytes=32 * MIB,
        mem_bytes_per_node=32 * GIB,
        mem_bandwidth_per_node=40.0 * GIB,
    )


@dataclass(frozen=True)
class CampaignSpec:
    """One synthetic throughput campaign: a machine and a task volume."""

    name: str
    machine: Callable[[], MachineTopology]
    num_tasks: int
    timesteps: int
    region_mib: int

    def app(self) -> Application:
        return make_synthetic(
            name=f"bench-{self.name}",
            work_seconds=2.0,
            mem_frac=0.6,
            blocked_fraction=1.0,
            reuse=0.3,
            gamma=0.8,
            imbalance="clustered",
            imbalance_cv=0.35,
            num_tasks=self.num_tasks,
            total_iters=self.num_tasks * 8,
            region_mib=self.region_mib,
            timesteps=self.timesteps,
        )


CAMPAIGN_SPECS = (
    CampaignSpec("small", dual_socket_small, 256, 2, 256),
    CampaignSpec("medium", zen4_9354, 1024, 2, 512),
    CampaignSpec("large", _large_machine, 3072, 2, 2048),
)


# ----------------------------------------------------------------------
def _measure_events_per_sec(spec: CampaignSpec, repeats: int, seed: int) -> dict:
    """Both engines over one campaign; best-of-``repeats`` wall time."""
    entry: dict = {"environment": environment_fingerprint()}
    totals: dict[str, float] = {}
    events_seen: set[int] = set()
    for engine in ("reference", "incremental"):
        app = spec.app()
        best_wall = float("inf")
        events = 0
        for _ in range(repeats):
            runtime = OpenMPRuntime(
                spec.machine(), "baseline", seed=seed, engine=engine
            )
            result, wall = time_call(lambda: runtime.run_application(app))
            events = sum(tl.tasks_executed for tl in result.taskloops)
            best_wall = min(best_wall, wall)
            totals[engine] = result.total_time
        if events <= 0 or best_wall <= 0:
            raise BenchError(
                f"campaign {spec.name!r}/{engine}: no events measured"
            )
        events_seen.add(events)
        entry[engine] = {
            "events": events,
            "wall_s": best_wall,
            "events_per_sec": events / best_wall,
            "repeats": repeats,
        }
    # the built-in differential check: a perf number from a simulation
    # that diverged between engines would be comparing different work
    if len(events_seen) != 1 or totals["reference"] != totals["incremental"]:
        raise BenchError(
            f"campaign {spec.name!r}: engines diverged "
            f"(events {sorted(events_seen)}, simulated times {totals})"
        )
    entry["speedup"] = (
        entry["incremental"]["events_per_sec"] / entry["reference"]["events_per_sec"]
    )
    return entry


def _measure_campaign_wall(quick: bool) -> dict:
    """One cached experiment cell, cold then warm."""
    seeds = 2 if quick else 3
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cfg = ExperimentConfig(
            seeds=seeds, timesteps=2, with_noise=True, cache_dir=cache_dir
        )
        topology = dual_socket_small()

        def one_campaign() -> None:
            Runner(cfg, topology=topology).cell("matmul", "ilan")

        _, cold_s = time_call(one_campaign)
        _, warm_s = time_call(one_campaign)
    return {
        "environment": environment_fingerprint(),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "runs": seeds,
    }


def _measure_service_latency(quick: bool, seed: int) -> dict:
    """Client p50/p99 from a short closed-loop loadgen run."""
    jobs_per_client = "2" if quick else "3"
    summary = run_summary([
        "--self-host",
        "--machine", "small",
        "--mode", "closed",
        "--clients", "2",
        "--jobs-per-client", jobs_per_client,
        "--benchmark", "matmul",
        "--scheduler", "ilan",
        "--nodes", "1",
        "--seeds", "1",
        "--timesteps", "2",
        "--seed", str(seed),
    ])
    latency = summary["latency_s"]
    if summary["finished"] < 1 or latency["p50"] is None or latency["p99"] is None:
        raise BenchError(
            f"load-generator run finished {summary['finished']} job(s); "
            "cannot report latency percentiles"
        )
    return {
        "environment": environment_fingerprint(),
        "jobs": summary["finished"],
        "p50": latency["p50"],
        "p99": latency["p99"],
        "throughput_jps": summary["throughput_jps"],
    }


# ----------------------------------------------------------------------
def run_benchmarks(
    *,
    mode: str = "full",
    seed: int = 0,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Measure everything; return a validated ``BENCH`` document."""
    if mode not in ("full", "quick"):
        raise BenchError(f"mode must be 'full' or 'quick', got {mode!r}")
    quick = mode == "quick"
    repeats = 1 if quick else 3

    def say(message: str) -> None:
        if log is not None:
            log(message)

    events_per_sec: dict[str, dict] = {}
    for spec in CAMPAIGN_SPECS:
        say(f"events/sec [{spec.name}]: {spec.num_tasks} tasks x "
            f"{spec.timesteps} timesteps, {repeats} repeat(s)...")
        entry = _measure_events_per_sec(spec, repeats, seed)
        say(
            f"  reference {entry['reference']['events_per_sec']:,.0f} ev/s, "
            f"incremental {entry['incremental']['events_per_sec']:,.0f} ev/s "
            f"({entry['speedup']:.2f}x)"
        )
        events_per_sec[spec.name] = entry

    say("campaign wall time: cold vs warm cache...")
    campaign_wall = _measure_campaign_wall(quick)
    say(f"  cold {campaign_wall['cold_s']:.2f}s, warm {campaign_wall['warm_s']:.2f}s")

    say("service latency: closed-loop loadgen...")
    service_latency = _measure_service_latency(quick, seed)
    say(
        f"  {service_latency['jobs']} jobs, p50 {service_latency['p50']*1e3:.0f} ms, "
        f"p99 {service_latency['p99']*1e3:.0f} ms"
    )

    doc = {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "seed": seed,
        "metrics": {
            "events_per_sec": events_per_sec,
            "campaign_wall_s": campaign_wall,
            "service_latency_s": service_latency,
        },
    }
    validate(doc)
    return doc
