"""Regression comparison between two ``BENCH`` documents.

``scripts/bench.py --compare BENCH_prev.json`` diffs a fresh measurement
against a committed baseline with a relative budget (default 25%).

What gets gated depends on how comparable the two documents are:

* **same environment and same mode** (identical fingerprints, equal
  repeat counts): absolute events/sec per (campaign, engine) must not
  drop by more than the budget, and neither may the incremental speedup;
* **otherwise** (CI hardware vs. the machine that produced the committed
  baseline, or a single-repeat quick run vs. a best-of-N full document):
  absolute throughput is not comparable, so only the
  incremental-over-reference *speedup* per campaign is gated — a
  machine- and repeat-insensitive property of the optimisation itself
  (both engines are measured back-to-back in the same process, so
  machine noise largely divides out).

Latency and wall-time metrics are reported but never gated: they measure
service and cache behaviour whose absolute values are too environment-
bound for a hard threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.schema import CAMPAIGNS, validate
from repro.errors import BenchError

__all__ = ["Check", "CompareReport", "compare_documents", "load_document"]


def load_document(path: str | Path) -> dict:
    """Read and validate a BENCH document from disk."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise BenchError(f"cannot read BENCH document {p}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchError(f"{p} is not valid JSON: {exc}") from exc
    validate(doc)
    return doc


@dataclass(frozen=True)
class Check:
    """One gated comparison: a metric, its two values, and the verdict."""

    metric: str
    previous: float
    current: float
    ok: bool

    @property
    def change(self) -> float:
        """Relative change, negative = regression."""
        if self.previous == 0:
            return 0.0
        return self.current / self.previous - 1.0

    def describe(self) -> str:
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.metric}: {self.previous:,.2f} -> {self.current:,.2f} "
            f"({self.change:+.1%}) {verdict}"
        )


@dataclass
class CompareReport:
    """Outcome of one document comparison."""

    max_regression: float
    absolute_comparable: bool
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Check]:
        return [c for c in self.checks if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def lines(self) -> list[str]:
        scope = (
            "same environment and mode: gating absolute events/sec and speedups"
            if self.absolute_comparable
            else "documents not absolutely comparable: gating engine speedups only"
        )
        out = [f"comparing with max regression {self.max_regression:.0%} ({scope})"]
        out.extend(note for note in self.notes)
        out.extend(check.describe() for check in self.checks)
        out.append(
            "PASS: no regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} regression(s)"
        )
        return out


def _gate(report: CompareReport, metric: str, previous: float, current: float) -> None:
    floor = previous * (1.0 - report.max_regression)
    report.checks.append(
        Check(metric=metric, previous=previous, current=current, ok=current >= floor)
    )


def compare_documents(
    previous: dict, current: dict, *, max_regression: float = 0.25
) -> CompareReport:
    """Gate ``current`` against ``previous``; both must validate."""
    if not 0.0 <= max_regression < 1.0:
        raise BenchError(
            f"max_regression must be in [0, 1), got {max_regression}"
        )
    validate(previous)
    validate(current)
    prev_eps = previous["metrics"]["events_per_sec"]
    cur_eps = current["metrics"]["events_per_sec"]
    same_env = all(
        prev_eps[c]["environment"] == cur_eps[c]["environment"] for c in CAMPAIGNS
    )
    same_mode = previous["mode"] == current["mode"]
    report = CompareReport(
        max_regression=max_regression,
        absolute_comparable=same_env and same_mode,
    )
    if not same_mode:
        report.notes.append(
            f"note: comparing mode={current['mode']!r} against "
            f"mode={previous['mode']!r} (same campaign shapes, different repeats)"
        )
    for campaign in CAMPAIGNS:
        prev_entry, cur_entry = prev_eps[campaign], cur_eps[campaign]
        if report.absolute_comparable:
            for engine in ("reference", "incremental"):
                _gate(
                    report,
                    f"events_per_sec.{campaign}.{engine}",
                    prev_entry[engine]["events_per_sec"],
                    cur_entry[engine]["events_per_sec"],
                )
        _gate(
            report,
            f"events_per_sec.{campaign}.speedup",
            prev_entry["speedup"],
            cur_entry["speedup"],
        )
    return report
