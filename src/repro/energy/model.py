"""Energy model: joules for simulated taskloop executions.

The paper (Section 3.5) notes the PTT-driven selection "can, for example,
instead be used to locate and employ the optimal configuration based on
other metrics, such as energy efficiency", citing the authors' JOSS and
SWEEP lines of work.  This model provides that metric for the simulated
platform so the ILAN scheduler can optimise energy or energy-delay
product instead of time (``IlanScheduler(objective="energy")``).

The model is a standard three-term decomposition:

* **core power** — active cores burn ``core_active_watts``, idle-but-
  participating cores ``core_idle_watts`` (clock-gated but not parked);
  non-participating cores are assumed parked and free;
* **uncore power** — each NUMA node's fabric/memory-controller block
  draws ``uncore_watts_per_node`` while the taskloop runs;
* **DRAM access energy** — ``dram_joules_per_byte`` per byte of modelled
  memory traffic (counter ``bytes_total``).

Defaults approximate a Zen 4 server core (~2.5 W active at base clock)
and DDR5 access energy (~60 pJ/byte end to end).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.metrics import TaskloopCounters
from repro.errors import ConfigurationError
from repro.runtime.results import AppRunResult, TaskloopResult

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Static power/energy parameters of the simulated machine."""

    core_active_watts: float = 2.5
    core_idle_watts: float = 0.6
    uncore_watts_per_node: float = 5.0
    dram_joules_per_byte: float = 60e-12

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"energy parameter {name} must be non-negative")
        if self.core_idle_watts > self.core_active_watts:
            raise ConfigurationError("idle power cannot exceed active power")

    # ------------------------------------------------------------------
    def taskloop_energy(self, result: TaskloopResult) -> float:
        """Joules consumed by one taskloop execution.

        Uses the execution's counter sample when present (busy/idle core
        seconds and DRAM bytes); otherwise falls back to assuming all
        participating cores were busy for the whole execution.
        """
        counters: TaskloopCounters | None = result.counters
        nodes_active = bin(result.node_mask_bits).count("1")
        uncore = self.uncore_watts_per_node * nodes_active * result.elapsed
        if counters is not None:
            cores = (
                self.core_active_watts * counters.busy_time
                + self.core_idle_watts * counters.idle_time
            )
            dram = self.dram_joules_per_byte * counters.bytes_total
        else:
            cores = self.core_active_watts * result.num_threads * result.elapsed
            dram = 0.0
        return cores + uncore + dram

    def taskloop_edp(self, result: TaskloopResult) -> float:
        """Energy-delay product (J*s) of one taskloop execution."""
        return self.taskloop_energy(result) * result.elapsed

    def run_energy(self, result: AppRunResult) -> float:
        """Total joules across every taskloop of an application run."""
        return sum(self.taskloop_energy(r) for r in result.taskloops)
