"""Energy layer: joules per execution and energy-aware objectives."""

from repro.energy.model import EnergyModel

__all__ = ["EnergyModel"]
