"""SARIF 2.1.0 serialization of analysis findings.

One run, one driver, every shipped rule (both passes) in the rule
catalog, findings as ``results`` with physical locations.  SARIF columns
are 1-based; :class:`~repro.analysis.engine.Finding.col` is 0-based, so
the region converts.  The output is what CI uploads as the code-scanning
artifact.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.engine import Finding, ProjectRule, Rule

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_entry(rule: Rule | ProjectRule) -> dict[str, Any]:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
    }


def to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    project_rules: Sequence[ProjectRule] = (),
) -> dict[str, Any]:
    """The findings as one SARIF log dict (``json.dump``-ready)."""
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    catalog = [_rule_entry(rule) for rule in rules]
    catalog.extend(_rule_entry(rule) for rule in project_rules)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": catalog,
                    }
                },
                "results": results,
            }
        ],
    }
