"""Command line: ``python -m repro.analysis [paths] [options]``.

Exit-code contract (relied on by CI and pre-commit):

* ``0`` — no unbaselined findings (or report-only mode without
  ``--strict``);
* ``1`` — unbaselined findings (or retired baseline entries) and
  ``--strict``;
* ``2`` — usage or I/O error (unknown rule id, missing path, corrupt
  baseline file).

``--project`` enables pass 2 (whole-program rules) and, with it, the
content-hash cache: a warm run re-parses only files whose bytes changed
(``files_parsed`` in the JSON/text stats is the cache-miss count CI
asserts on).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import (
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.cache import (
    CACHE_DIR_DEFAULT,
    AnalysisCache,
    analyzer_fingerprint,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import (
    ALL_RULES,
    PROJECT_RULES,
    all_rule_ids,
    select_project_rules,
    select_rules,
)
from repro.analysis.run import ProjectRunResult, analyze_project_paths
from repro.analysis.sarif import to_sarif

__all__ = ["main", "build_parser"]

OUTPUT_SCHEMA_VERSION = 2
DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static determinism & concurrency sanitizer: enforces the "
            "repo's replay invariants (seeded RNG flow, no wall-clock in "
            "the simulator, no float == on sim time, async/lock/wire "
            "hygiene) as AST checks; --project adds the whole-program "
            "pass (lock-order cycles, seed-taint flow, wire-schema "
            "drift)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on unbaselined findings (CI mode); without it the "
             "run only reports",
    )
    parser.add_argument(
        "--project", action="store_true",
        help="run the whole-program pass (LOCK002/SEED002/WIRE002) on "
             "top of the per-file rules; enables the content-hash cache",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE}; "
             "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="skip files matching this glob (against the posix path or "
             "basename; repeatable)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="per-file analysis cache location (default: "
             f"{CACHE_DIR_DEFAULT} when --project is on; passing this "
             "flag enables the cache on its own)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash cache for this run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules(out: TextIO) -> None:
    for rule in ALL_RULES:
        scope = (
            "repro." + "|".join(rule.packages)
            if rule.packages
            else ("repro.*" if rule.repro_only else "all files")
        )
        out.write(f"{rule.id}  [{scope}]  {rule.title}\n")
        out.write(f"        {rule.rationale}\n")
    for project_rule in PROJECT_RULES:
        out.write(
            f"{project_rule.id}  [whole-program]  {project_rule.title}\n"
        )
        out.write(f"        {project_rule.rationale}\n")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _list_rules(out)
        return 0

    try:
        rules = select_rules(args.select, args.ignore)
        project_rules = (
            select_project_rules(args.select, args.ignore)
            if args.project
            else ()
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    use_cache = (
        (args.project or args.cache_dir is not None) and not args.no_cache
    )
    cache = None
    if use_cache:
        fingerprint = analyzer_fingerprint(
            sorted({r.id for r in rules} | {r.id for r in project_rules})
        )
        cache = AnalysisCache(
            Path(args.cache_dir or CACHE_DIR_DEFAULT), fingerprint
        )

    try:
        if args.project or cache is not None:
            result = analyze_project_paths(
                args.paths, rules, project_rules,
                cache=cache, exclude=args.exclude,
            )
        else:
            findings, scanned = analyze_paths(
                args.paths, rules, exclude=args.exclude
            )
            result = ProjectRunResult(
                findings=findings,
                files_scanned=scanned,
                files_parsed=scanned,
            )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to baseline "
            f"{baseline_path}",
            file=sys.stderr,
        )
        return 0

    try:
        baseline = (
            load_baseline(baseline_path) if not args.no_baseline else None
        )
    except (ValueError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"error: corrupt baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    new, grandfathered, stale, retired = partition_findings(
        result.findings,
        baseline if baseline is not None else Counter(),
        known_rules=all_rule_ids(),
    )

    if args.format == "json":
        payload = {
            "version": OUTPUT_SCHEMA_VERSION,
            "files_scanned": result.files_scanned,
            "files_parsed": result.files_parsed,
            "files_cached": result.files_cached,
            "project": bool(args.project),
            "findings": [f.to_json() for f in new],
            "baselined": len(grandfathered),
            "stale_baseline_entries": stale,
            "retired_baseline_entries": retired,
            "strict": bool(args.strict),
        }
        out.write(json.dumps(payload, indent=2) + "\n")
    elif args.format == "sarif":
        out.write(
            json.dumps(to_sarif(new, rules, project_rules), indent=2) + "\n"
        )
    else:
        for finding in new:
            out.write(finding.render() + "\n")
        for key in stale:
            out.write(f"stale baseline entry (delete it): {key}\n")
        for key in retired:
            out.write(
                f"retired baseline entry (rule no longer exists): {key}\n"
            )
        status = "ok" if not new else f"{len(new)} finding(s)"
        out.write(
            f"{status}: {result.files_scanned} file(s) scanned "
            f"({result.files_parsed} parsed, {result.files_cached} "
            f"cached), {len(new)} new, {len(grandfathered)} baselined, "
            f"{len(stale)} stale / {len(retired)} retired baseline "
            "entrie(s)\n"
        )

    if args.strict and (new or retired):
        return 1
    return 0
