"""Command line: ``python -m repro.analysis [paths] [options]``.

Exit-code contract (relied on by CI and pre-commit):

* ``0`` — no unbaselined findings (or report-only mode without
  ``--strict``);
* ``1`` — unbaselined findings and ``--strict``;
* ``2`` — usage or I/O error (unknown rule id, missing path, corrupt
  baseline file).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import (
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import ALL_RULES, select_rules

__all__ = ["main", "build_parser"]

OUTPUT_SCHEMA_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static determinism & concurrency sanitizer: enforces the "
            "repo's replay invariants (seeded RNG flow, no wall-clock in "
            "the simulator, no float == on sim time, async/lock/wire "
            "hygiene) as AST checks."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on unbaselined findings (CI mode); without it the "
             "run only reports",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE}; "
             "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules(out: TextIO) -> None:
    for rule in ALL_RULES:
        scope = (
            "repro." + "|".join(rule.packages)
            if rule.packages
            else ("repro.*" if rule.repro_only else "all files")
        )
        out.write(f"{rule.id}  [{scope}]  {rule.title}\n")
        out.write(f"        {rule.rationale}\n")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _list_rules(out)
        return 0

    try:
        rules = select_rules(args.select, args.ignore)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        findings, scanned = analyze_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {baseline_path}",
            file=sys.stderr,
        )
        return 0

    try:
        baseline = (
            load_baseline(baseline_path) if not args.no_baseline else None
        )
    except (ValueError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"error: corrupt baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    new, grandfathered, stale = partition_findings(
        findings, baseline if baseline is not None else Counter()
    )

    if args.format == "json":
        payload = {
            "version": OUTPUT_SCHEMA_VERSION,
            "files_scanned": scanned,
            "findings": [f.to_json() for f in new],
            "baselined": len(grandfathered),
            "stale_baseline_entries": stale,
            "strict": bool(args.strict),
        }
        out.write(json.dumps(payload, indent=2) + "\n")
    else:
        for finding in new:
            out.write(finding.render() + "\n")
        for key in stale:
            out.write(f"stale baseline entry (delete it): {key}\n")
        status = "ok" if not new else f"{len(new)} finding(s)"
        out.write(
            f"{status}: {scanned} file(s) scanned, {len(new)} new, "
            f"{len(grandfathered)} baselined, {len(stale)} stale baseline "
            "entrie(s)\n"
        )

    if new and args.strict:
        return 1
    return 0
