"""Per-line ``# repro: noqa`` suppressions.

A finding is suppressed when the physical line it is reported on carries
a marker comment::

    t = time.time()  # repro: noqa DET001 -- CLI wall-time banner only

``# repro: noqa`` with no rule list suppresses *every* rule on that line;
``# repro: noqa DET001, DET002`` suppresses exactly those rules.  Text
after the rule list (conventionally introduced with ``--``) is the
justification — required by review convention, not enforced here.

Suppressions are deliberately per-line (the finding's reported line, i.e.
the first line of the offending statement), mirroring flake8's ``noqa``:
coarse file- or block-level escapes would let violations accumulate
invisibly.
"""

from __future__ import annotations

import re

__all__ = ["line_suppressions"]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s*[:=]?\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)
_RULE = re.compile(r"[A-Z]+\d+")


def line_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number → suppressed rule ids on that line.

    An *empty* frozenset means "suppress every rule" (a bare
    ``# repro: noqa``).
    """
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "#" not in line:
            continue
        match = _NOQA.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        table[lineno] = (
            frozenset(_RULE.findall(rules)) if rules else frozenset()
        )
    return table
