"""LOCK002 — cross-module lock-order deadlock detection.

A lockdep in miniature: every ``with lock:`` / ``lock.acquire()`` site
(pass 1 recorded each with the set of locks already held there) becomes
an edge *held → acquired* in a global lock-order digraph; calls made
while holding a lock propagate the callee's transitive acquisitions as
edges too, so an inversion split across modules — thread A takes
``router._lock`` then calls into the shard which takes ``shard._lock``,
thread B the other way round — still closes a cycle.  Any cycle in the
digraph is a potential deadlock; the finding carries a witness site for
*every* edge of the cycle so both acquisition orders are reviewable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import FunctionInfo, ModuleSummary, ProjectIndex

__all__ = ["Lock002LockOrderCycle"]


@dataclass(frozen=True)
class _Edge:
    """Lock ``a`` held while lock ``b`` is acquired, with the witness."""

    a: str
    b: str
    path: str
    lineno: int
    col: int
    label: str


class _LockGraph:
    """Canonical lock ids + ordering edges for one project."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.graph = CallGraph(index)
        #: (a, b) → first witness edge seen for that ordering.
        self.edges: dict[tuple[str, str], _Edge] = {}
        #: function key → canonical lock ids it (transitively) acquires,
        #: each with one representative witness label.
        self._acquired: dict[str, dict[str, str]] = {}
        self._on_stack: set[str] = set()

    # -- canonical lock identity ---------------------------------------
    def canon(self, summary: ModuleSummary, fn: FunctionInfo, token: str) -> str | None:
        """Pass-1 token → project-wide lock id, or ``None`` if unknown.

        ``self.<attr>`` gets class identity (``module.Class.attr`` — one
        id per *class*, the granularity lock-order discipline is stated
        at); ``@<dotted>`` must name a module-level lock of a summarized
        module, otherwise the token is dropped (conservative: unknown
        objects produce no edges, hence no false cycles).
        """
        if token.startswith("self."):
            cls = fn.cls
            if cls is None:
                return None
            return f"{summary.module}.{cls}.{token[len('self.'):]}"
        if token.startswith("@"):
            dotted = token[1:]
            module, _, name = dotted.rpartition(".")
            target = self.index.by_module.get(module)
            if target is not None and name in target.module_locks:
                return f"{target.module}.{name}"
            return None
        return None

    # -- transitive acquisitions ---------------------------------------
    def acquired_by(self, key: str) -> dict[str, str]:
        """Locks the function at ``key`` acquires, directly or through
        resolvable calls (memoized; call cycles resolve optimistically)."""
        cached = self._acquired.get(key)
        if cached is not None:
            return cached
        if key in self._on_stack:
            return {}
        found = self.index.functions.get(key)
        if found is None:
            self._acquired[key] = {}
            return {}
        summary, fn = found
        self._on_stack.add(key)
        out: dict[str, str] = {}
        for acq in fn.acquires:
            lock = self.canon(summary, fn, acq.token)
            if lock is not None:
                out.setdefault(
                    lock, f"{fn.qual} ({summary.path}:{acq.lineno})"
                )
        for call in fn.calls:
            resolution = self.graph.resolve_call(summary, fn, call)
            if resolution is None:
                continue
            for lock, where in self.acquired_by(resolution.key).items():
                out.setdefault(
                    lock,
                    f"{fn.qual} ({summary.path}:{call.lineno}) -> {where}",
                )
        self._on_stack.discard(key)
        self._acquired[key] = out
        return out

    # -- edge collection -----------------------------------------------
    def build(self) -> None:
        for summary in self.index.iter_summaries():
            for fn in summary.functions:
                self._edges_of(summary, fn)

    def _add_edge(self, edge: _Edge) -> None:
        if edge.a != edge.b:
            self.edges.setdefault((edge.a, edge.b), edge)

    def _edges_of(self, summary: ModuleSummary, fn: FunctionInfo) -> None:
        for acq in fn.acquires:
            b = self.canon(summary, fn, acq.token)
            if b is None:
                continue
            for held in acq.held:
                a = self.canon(summary, fn, held)
                if a is None:
                    continue
                self._add_edge(_Edge(
                    a=a, b=b, path=summary.path,
                    lineno=acq.lineno, col=acq.col,
                    label=f"{fn.qual} ({summary.path}:{acq.lineno})",
                ))
        for call in fn.calls:
            if not call.held:
                continue
            resolution = self.graph.resolve_call(summary, fn, call)
            if resolution is None:
                continue
            for b, where in self.acquired_by(resolution.key).items():
                for held in call.held:
                    a = self.canon(summary, fn, held)
                    if a is None:
                        continue
                    self._add_edge(_Edge(
                        a=a, b=b, path=summary.path,
                        lineno=call.lineno, col=call.col,
                        label=(
                            f"{fn.qual} ({summary.path}:{call.lineno}) "
                            f"-> {where}"
                        ),
                    ))

    # -- cycles ----------------------------------------------------------
    def cycles(self) -> list[list[_Edge]]:
        """One representative cycle per distinct lock set, deterministic."""
        adjacency: dict[str, list[str]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, []).append(b)
        for targets in adjacency.values():
            targets.sort()
        found: dict[tuple[str, ...], list[_Edge]] = {}
        for start in sorted(adjacency):
            cycle = self._cycle_from(start, adjacency)
            if cycle is None:
                continue
            key = tuple(sorted(edge.a for edge in cycle))
            found.setdefault(key, cycle)
        return [found[key] for key in sorted(found)]

    def _cycle_from(
        self, start: str, adjacency: dict[str, list[str]]
    ) -> list[_Edge] | None:
        """Shortest path back to ``start`` (BFS), as its edge list."""
        parents: dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            node = queue.pop(0)
            for nxt in adjacency.get(node, ()):
                if nxt == start:
                    path = [node]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    order = list(reversed(path)) + [start]
                    return [
                        self.edges[(order[i], order[i + 1])]
                        for i in range(len(order) - 1)
                    ]
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = node
                    queue.append(nxt)
        return None


class Lock002LockOrderCycle(ProjectRule):
    id: ClassVar[str] = "LOCK002"
    title: ClassVar[str] = "inconsistent lock acquisition order across modules"
    rationale: ClassVar[str] = (
        "two code paths that take the same pair of locks in opposite "
        "orders deadlock under the right interleaving; the inversion is "
        "invisible per-file because the two orders usually live in "
        "different modules joined by a call chain."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        lock_graph = _LockGraph(project)
        lock_graph.build()
        for cycle in lock_graph.cycles():
            witness = cycle[0]
            order = " -> ".join([edge.a for edge in cycle] + [cycle[0].a])
            paths = "; ".join(
                f"{edge.a} then {edge.b} at {edge.label}" for edge in cycle
            )
            yield self.finding_at(
                witness.path, witness.lineno, witness.col,
                f"lock-order cycle {order}: {paths}",
            )
