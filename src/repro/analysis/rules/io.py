"""I/O durability rules: crash-safe writes on durable paths.

The experiment harness and the scheduling service persist results,
caches, journals and snapshots that later runs *trust* (``--resume``
replays them, the cache serves them, operators read them).  A plain
``open(..., "w")`` or ``Path.write_text`` tears under a crash — the file
exists with half its bytes — so every durable write in those packages
must go through :func:`repro.ioutil.atomic_write` (tmp file + fsync +
rename).  See DESIGN.md §5c for the durability model this enforces.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.engine import Finding, Module, Rule

__all__ = ["Io001DurableWrites", "IO001_ALLOWED_MODULES"]

#: Packages whose on-disk artefacts must survive a crash mid-write.
DURABLE_PACKAGES = ("exp", "serve")

#: Modules allowed to hold a raw write handle: the write-ahead journal
#: *is* the durability mechanism — it appends records incrementally to
#: one open fd (flushed + fsync'd per record), which an atomic-rename
#: helper cannot express.
IO001_ALLOWED_MODULES: frozenset[str] = frozenset({"exp.journal"})

#: Callables that open a raw writable handle when given a write mode.
_OPENERS = frozenset({"open", "builtins.open", "io.open", "os.fdopen"})

#: Path convenience writers — always a full-file replacement, so always
#: expressible (and torn-write-proof) as an atomic_write.
_PATH_WRITERS = frozenset({"write_text", "write_bytes"})

_WRITE_MODE_CHARS = set("wax+")


def _write_mode(call: ast.Call, mode_index: int) -> str | None:
    """The call's file-mode string when it is a *write* mode literal.

    ``mode_index`` is the mode's positional slot — 1 for ``open(file,
    mode)``-shaped callables, 0 for ``Path.open(mode)``-shaped method
    calls.  Returns ``None`` for read modes, for a missing mode (the
    default is ``"r"``), and for non-constant modes (undecidable
    statically — the dynamic tests own those; guessing here would only
    manufacture false positives).
    """
    mode_node: ast.expr | None = None
    if len(call.args) > mode_index:
        mode_node = call.args[mode_index]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if not isinstance(mode_node, ast.Constant) or not isinstance(mode_node.value, str):
        return None
    mode = mode_node.value
    return mode if _WRITE_MODE_CHARS & set(mode) else None


class Io001DurableWrites(Rule):
    id: ClassVar[str] = "IO001"
    title: ClassVar[str] = "non-atomic write on a durable path"
    rationale: ClassVar[str] = (
        "exp/ and serve/ artefacts (results, cache entries, journals, "
        "snapshots) are trusted by later runs; a direct open-for-write "
        "tears under a crash — route the write through "
        "repro.ioutil.atomic_write so readers only ever see a complete "
        "old or new file."
    )
    packages: ClassVar[tuple[str, ...] | None] = DURABLE_PACKAGES

    def applies(self, mod: Module) -> bool:
        if not super().applies(mod):
            return False
        pkg = mod.repro_package
        return pkg is None or ".".join(pkg) not in IO001_ALLOWED_MODULES

    def check(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = mod.qualified_name(node.func)
            mode = None
            if qualified in _OPENERS:
                mode = _write_mode(node, 1)
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
                # `anything.open(mode)` — Path.open and friends; the root
                # may be a variable so the qualified name can be None
                mode = _write_mode(node, 0)
            if mode is not None:
                yield self.finding(
                    mod, node,
                    f"open with write mode {mode!r} on a durable path — "
                    "a crash mid-write leaves a torn file; use "
                    "repro.ioutil.atomic_write",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_WRITERS
            ):
                yield self.finding(
                    mod, node,
                    f"`.{node.func.attr}(...)` writes in place — a crash "
                    "mid-write leaves a torn file; use "
                    "repro.ioutil.atomic_write",
                )
