"""Concurrency rules: event-loop liveness and lock discipline.

ASY001 keeps the serving layer's event loop responsive (a blocking call
in a coroutine stalls *every* connected client); LOCK001 is a
lockdep-style consistency check on classes that own a ``threading`` lock.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.engine import Finding, Module, Rule

__all__ = ["Asy001BlockingInAsync", "Lock001InconsistentLocking"]


# ----------------------------------------------------------------------
# ASY001 — blocking calls inside `async def` in serve/
# ----------------------------------------------------------------------
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.request",
    # bare builtins (resolved names): synchronous file I/O
    "open", "io.open",
})


class Asy001BlockingInAsync(Rule):
    id: ClassVar[str] = "ASY001"
    title: ClassVar[str] = "blocking call inside async def"
    rationale: ClassVar[str] = (
        "the service runs every connection on one event loop; a blocking "
        "call in a coroutine freezes all clients at once — use "
        "asyncio.sleep / run_in_executor / asyncio streams."
    )
    packages: ClassVar[tuple[str, ...] | None] = ("serve",)

    def check(self, mod: Module) -> Iterator[Finding]:
        for fn in ast.walk(mod.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in self._walk_coroutine_body(fn):
                if not isinstance(node, ast.Call):
                    continue
                qualified = mod.qualified_name(node.func)
                if qualified in _BLOCKING_CALLS:
                    yield self.finding(
                        mod, node,
                        f"blocking call `{qualified}` inside `async def "
                        f"{fn.name}` stalls the event loop — use the asyncio "
                        "equivalent or loop.run_in_executor",
                    )

    @staticmethod
    def _walk_coroutine_body(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk ``fn`` without entering nested defs: nested sync functions
        are executor/callback material (allowed to block off-loop), and
        nested coroutines get their own visit."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# LOCK001 — inconsistently locked attribute writes
# ----------------------------------------------------------------------
_LOCK_CONSTRUCTORS = frozenset({"threading.Lock", "threading.RLock"})


def _self_attr_target(node: ast.expr) -> str | None:
    """Attribute name written by a store target rooted at ``self``.

    ``self._x = ...`` → ``_x``; ``self._tally[k] += 1`` → ``_tally``
    (mutating a container through ``self`` is still a write to shared
    state); anything else → ``None``.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodWriteCollector(ast.NodeVisitor):
    """Record every ``self.<attr>`` store in one method, tagged with
    whether it happened under a ``with self.<lock>:`` scope."""

    def __init__(self, lock_attrs: frozenset[str]):
        self.lock_attrs = lock_attrs
        self.depth = 0
        #: (attr, node, locked)
        self.writes: list[tuple[str, ast.AST, bool]] = []

    # -- lock scopes ---------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        holds = sum(
            1
            for item in node.items
            if (attr := _self_attr_target(item.context_expr)) is not None
            and attr in self.lock_attrs
        )
        self.depth += holds
        for stmt in node.body:
            self.visit(stmt)
        self.depth -= holds

    # -- stores --------------------------------------------------------
    def _record(self, target: ast.expr, node: ast.AST) -> None:
        attr = _self_attr_target(target)
        if attr is not None and attr not in self.lock_attrs:
            self.writes.append((attr, node, self.depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target, node)
        self.generic_visit(node)

    # nested defs are separate execution contexts; skip them
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


class Lock001InconsistentLocking(Rule):
    id: ClassVar[str] = "LOCK001"
    title: ClassVar[str] = "lock-protected attribute written without the lock"
    rationale: ClassVar[str] = (
        "a class that guards an attribute with `with self._lock:` in one "
        "method and writes it bare in another has a data race the tests "
        "only hit under contention — every write to a guarded attribute "
        "must hold the lock (lockdep-style consistency, computed per "
        "class; __init__ runs before the object is shared and is exempt)."
    )
    packages: ClassVar[tuple[str, ...] | None] = None
    repro_only: ClassVar[bool] = True

    def check(self, mod: Module) -> Iterator[Finding]:
        for cls in ast.walk(mod.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(mod, cls)

    def _check_class(self, mod: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = frozenset(
            attr
            for method in methods
            for node in ast.walk(method)
            if isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and mod.qualified_name(node.value.func) in _LOCK_CONSTRUCTORS
            for target in node.targets
            if (attr := _self_attr_target(target)) is not None
        )
        if not lock_attrs:
            return

        per_method: dict[str, list[tuple[str, ast.AST, bool]]] = {}
        for method in methods:
            collector = _MethodWriteCollector(lock_attrs)
            for stmt in method.body:
                collector.visit(stmt)
            per_method[method.name] = collector.writes

        guarded = {
            attr
            for name, writes in per_method.items()
            for attr, _node, locked in writes
            if locked
        }
        if not guarded:
            return
        for name, writes in per_method.items():
            if name == "__init__":
                continue
            for attr, node, locked in writes:
                if attr in guarded and not locked:
                    yield self.finding(
                        mod, node,
                        f"`self.{attr}` is written under `with self.<lock>:` "
                        f"elsewhere in `{cls.name}` but written bare in "
                        f"`{name}` — hold the lock (or make the attribute "
                        "consistently lock-free)",
                    )
