"""EXC001 — no bare ``except:``, no swallowed ``CancelledError``.

A bare ``except:`` catches ``SystemExit``/``KeyboardInterrupt`` and (on
the event loop) ``asyncio.CancelledError``, so a "harmless" error guard
silently absorbs cancellation — the drain path then hangs waiting for a
coroutine that will never acknowledge it.  Catching ``CancelledError``
explicitly is allowed only when the handler re-raises after cleanup.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.engine import Finding, Module, Rule

__all__ = ["Exc001ExceptionHygiene"]


def _mentions_cancelled(node: ast.expr | None) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "CancelledError":
            return True
        if isinstance(sub, ast.Name) and sub.id == "CancelledError":
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(sub, ast.Raise):
                return True
    return False


class Exc001ExceptionHygiene(Rule):
    id: ClassVar[str] = "EXC001"
    title: ClassVar[str] = "bare except / swallowed CancelledError"
    rationale: ClassVar[str] = (
        "bare `except:` absorbs KeyboardInterrupt and task cancellation; "
        "a handler that catches CancelledError without re-raising makes "
        "graceful drain hang — cancellation must always propagate."
    )
    packages: ClassVar[tuple[str, ...] | None] = None
    repro_only: ClassVar[bool] = False

    def check(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    mod, node,
                    "bare `except:` catches SystemExit, KeyboardInterrupt "
                    "and CancelledError — name the exceptions you mean "
                    "(at most `except Exception`)",
                )
            elif _mentions_cancelled(node.type) and not _reraises(node):
                yield self.finding(
                    mod, node,
                    "handler catches asyncio.CancelledError without "
                    "re-raising — cancellation must propagate or graceful "
                    "drain hangs; re-raise after cleanup",
                )
