"""SEED002 — a seed accepted by a public entry point must be *used*.

SEED001 checks that entry points drawing randomness accept a seed;
SEED002 checks the dual bug it cannot see: the entry point accepts
``seed=``/``rng=``, threads it through a couple of call layers, and some
helper silently drops it — the caller believes the run is replayable
while the RNG is seeded from something else entirely.

The taint query is interprocedural over pass-1 summaries: a parameter
counts as *used* when it is read generically (stored, compared,
arithmetic, attribute access), passed to an RNG sink
(``repro.sim.rng.stream``/``pyrandom`` and the stdlib/NumPy
constructors), or forwarded as a bare argument into a callee that uses
its corresponding parameter (checked recursively through the call
graph).  Unknown callees, ``*args``/``**kwargs`` expansion, and
call-graph cycles all resolve to "used" — the rule prefers false
negatives to noise.  The finding anchors at the function that actually
drops the seed when that function is itself reportable, otherwise at the
public entry point with the forwarding chain in the message.
"""

from __future__ import annotations

import re
from typing import ClassVar, Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import CallInfo, FunctionInfo, ModuleSummary, ProjectIndex
from repro.analysis.rules.determinism import SEEDED_PACKAGES

__all__ = ["Seed002DroppedSeed"]

_SEED_PARAM = re.compile(r"^(seed|seeds|rng|random_state|.*_seed|.*_rng)$")

#: Callees whose mere receipt of the value *is* the use.
_RNG_SINKS = frozenset({
    "repro.sim.rng.stream",
    "repro.sim.rng.pyrandom",
    "random.Random",
    "random.seed",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.seed",
})


def _bare_forwards(call: CallInfo, param: str) -> bool:
    return param in call.pos or any(v == param for _, v in call.kws)


class _TaintQuery:
    """Memoized "does this function use this parameter?" oracle."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.graph = CallGraph(index)
        self._memo: dict[tuple[str, str], bool] = {}
        self._on_stack: set[tuple[str, str]] = set()

    def uses(self, key: str, param: str) -> bool:
        memo_key = (key, param)
        if memo_key in self._memo:
            return self._memo[memo_key]
        if memo_key in self._on_stack:
            return True  # recursion: optimistically assume used
        found = self.index.functions.get(key)
        if found is None:
            return True
        summary, fn = found
        self._on_stack.add(memo_key)
        try:
            result = self._uses_uncached(summary, fn, key, param)
        finally:
            self._on_stack.discard(memo_key)
        self._memo[memo_key] = result
        return result

    def _uses_uncached(
        self, summary: ModuleSummary, fn: FunctionInfo, key: str, param: str
    ) -> bool:
        if param in fn.generic_uses:
            return True
        for call in fn.calls:
            if call.star and param in call.names_in_args:
                return True
            if not _bare_forwards(call, param):
                continue
            if call.scope == "name" and call.target in _RNG_SINKS:
                return True
            resolution = self.graph.resolve_call(summary, fn, call)
            if resolution is None:
                return True  # unknown callee: assume it uses the value
            callee = self.graph.callee(resolution.key)
            if callee is None:
                return True
            _, callee_fn = callee
            if callee_fn.is_abstract or callee_fn.is_trivial:
                return True  # interface stub: implementations unknown
            pairs = CallGraph.map_forwarded_args(
                call, callee_fn, resolution.bound
            )
            mapped = [cp for cp, name in pairs if name == param]
            if not mapped:
                return True  # swallowed by *args/**kwargs: opaque
            if any(self.uses(resolution.key, cp) for cp in mapped):
                return True
        return False

    def drop_chain(self, key: str, param: str) -> str | None:
        """First forwarding hop whose callee drops the value, described."""
        found = self.index.functions.get(key)
        if found is None:
            return None
        summary, fn = found
        for call in fn.calls:
            if not _bare_forwards(call, param):
                continue
            resolution = self.graph.resolve_call(summary, fn, call)
            if resolution is None:
                continue
            callee = self.graph.callee(resolution.key)
            if callee is None:
                continue
            _, callee_fn = callee
            pairs = CallGraph.map_forwarded_args(
                call, callee_fn, resolution.bound
            )
            mapped = [cp for cp, name in pairs if name == param]
            if mapped and not any(
                self.uses(resolution.key, cp) for cp in mapped
            ):
                return (
                    f"forwarded to {self.graph.describe(resolution.key)} "
                    f"which drops `{mapped[0]}`"
                )
        return None


class Seed002DroppedSeed(ProjectRule):
    id: ClassVar[str] = "SEED002"
    title: ClassVar[str] = "seed parameter accepted but dropped"
    rationale: ClassVar[str] = (
        "an entry point that takes seed/rng and never lets it reach an "
        "RNG advertises replayability it does not have; runs differ "
        "between invocations while the caller pins the seed."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        query = _TaintQuery(project)
        dropped: dict[str, tuple[ModuleSummary, FunctionInfo, list[str]]] = {}
        for summary in project.iter_summaries():
            if not summary.in_packages(SEEDED_PACKAGES):
                continue
            for fn in summary.functions:
                if not fn.is_public or fn.is_abstract or fn.is_trivial:
                    continue
                if self._overrides_base(project, summary, fn):
                    continue
                key = f"{summary.module}::{fn.qual}"
                if project.functions.get(key) != (summary, fn):
                    continue  # shadowed duplicate definition
                params = [
                    p for p in fn.params
                    if _SEED_PARAM.match(p) and not query.uses(key, p)
                ]
                if params:
                    dropped[key] = (summary, fn, params)

        for key in sorted(dropped):
            summary, fn, params = dropped[key]
            for param in params:
                chain = query.drop_chain(key, param)
                if chain is not None and self._chain_target_reported(
                    query, key, param, dropped
                ):
                    continue  # anchor at the dropping function instead
                detail = f" ({chain})" if chain else ""
                yield self.finding_at(
                    summary.path, fn.lineno, fn.col,
                    f"`{fn.qual}` accepts seed parameter `{param}` but it "
                    f"never reaches an RNG{detail} — the caller's seed is "
                    "silently ignored",
                )

    @staticmethod
    def _overrides_base(
        project: ProjectIndex, summary: ModuleSummary, fn: FunctionInfo
    ) -> bool:
        """Method redeclares a resolvable base method: its signature is
        pinned by the interface, so an unused-but-required seed
        parameter is the base's contract, not this function's bug."""
        cls_name = fn.cls
        if cls_name is None:
            return False
        found_cls = project.classes.get(f"{summary.module}.{cls_name}")
        if found_cls is None:
            return False
        for mod_summary, info in project.class_mro(*found_cls)[1:]:
            if fn.name in info.methods:
                return True
        return False

    @staticmethod
    def _chain_target_reported(
        query: _TaintQuery,
        key: str,
        param: str,
        dropped: dict[str, tuple[ModuleSummary, FunctionInfo, list[str]]],
    ) -> bool:
        """Whether the dropping callee gets its own finding (avoid
        reporting one dropped seed twice along a forwarding chain)."""
        found = query.index.functions.get(key)
        if found is None:
            return False
        summary, fn = found
        for call in fn.calls:
            if not _bare_forwards(call, param):
                continue
            resolution = query.graph.resolve_call(summary, fn, call)
            if resolution is None:
                continue
            if resolution.key in dropped:
                return True
        return False
