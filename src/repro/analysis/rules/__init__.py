"""Rule registry: every shipped invariant check, in catalog order.

Two registries: ``ALL_RULES`` (per-file pass) and ``PROJECT_RULES``
(whole-program pass; only run under ``--project``).  ``--select`` /
``--ignore`` address both with one id namespace.
"""

from __future__ import annotations

from repro.analysis.engine import ProjectRule, Rule
from repro.analysis.rules.concurrency import (
    Asy001BlockingInAsync,
    Lock001InconsistentLocking,
)
from repro.analysis.rules.determinism import (
    Det001WallClock,
    Det002AmbientRng,
    Det003TimeEquality,
    Seed001SeedlessEntryPoint,
)
from repro.analysis.rules.exceptions import Exc001ExceptionHygiene
from repro.analysis.rules.io import Io001DurableWrites
from repro.analysis.rules.lockorder import Lock002LockOrderCycle
from repro.analysis.rules.seedflow import Seed002DroppedSeed
from repro.analysis.rules.wire import Wire001JsonSafeFields
from repro.analysis.rules.wiredrift import Wire002SchemaDrift

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "all_rule_ids",
    "project_rules_by_id",
    "rules_by_id",
    "select_project_rules",
    "select_rules",
]

#: Catalog order (also the order findings are documented in DESIGN.md §6).
ALL_RULES: tuple[Rule, ...] = (
    Det001WallClock(),
    Det002AmbientRng(),
    Det003TimeEquality(),
    Asy001BlockingInAsync(),
    Lock001InconsistentLocking(),
    Io001DurableWrites(),
    Wire001JsonSafeFields(),
    Exc001ExceptionHygiene(),
    Seed001SeedlessEntryPoint(),
)

#: Whole-program rules, catalog order.
PROJECT_RULES: tuple[ProjectRule, ...] = (
    Lock002LockOrderCycle(),
    Seed002DroppedSeed(),
    Wire002SchemaDrift(),
)


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


def project_rules_by_id() -> dict[str, ProjectRule]:
    return {rule.id: rule for rule in PROJECT_RULES}


def all_rule_ids() -> set[str]:
    """Every known rule id across both passes."""
    return set(rules_by_id()) | set(project_rules_by_id())


def _parse_spec(spec: str | None, known: set[str]) -> set[str]:
    if not spec:
        return set()
    ids = {part.strip() for part in spec.split(",") if part.strip()}
    unknown = ids - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {sorted(unknown)}; known: {sorted(known)}"
        )
    return ids


def select_rules(
    select: str | None = None, ignore: str | None = None
) -> tuple[Rule, ...]:
    """The per-file rule set after ``--select`` / ``--ignore`` filtering.

    Both take comma-separated rule ids; unknown ids raise ``ValueError``
    so typos fail loudly instead of silently checking nothing.  Project
    rule ids are accepted (they select nothing here — the project pass
    filters with :func:`select_project_rules`).
    """
    known = all_rule_ids()
    selected = _parse_spec(select, known) or known
    selected -= _parse_spec(ignore, known)
    return tuple(rule for rule in ALL_RULES if rule.id in selected)


def select_project_rules(
    select: str | None = None, ignore: str | None = None
) -> tuple[ProjectRule, ...]:
    """Same filtering for the whole-program pass."""
    known = all_rule_ids()
    selected = _parse_spec(select, known) or known
    selected -= _parse_spec(ignore, known)
    return tuple(rule for rule in PROJECT_RULES if rule.id in selected)
