"""Rule registry: every shipped invariant check, in catalog order."""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.concurrency import (
    Asy001BlockingInAsync,
    Lock001InconsistentLocking,
)
from repro.analysis.rules.determinism import (
    Det001WallClock,
    Det002AmbientRng,
    Det003TimeEquality,
    Seed001SeedlessEntryPoint,
)
from repro.analysis.rules.exceptions import Exc001ExceptionHygiene
from repro.analysis.rules.io import Io001DurableWrites
from repro.analysis.rules.wire import Wire001JsonSafeFields

__all__ = ["ALL_RULES", "rules_by_id", "select_rules"]

#: Catalog order (also the order findings are documented in DESIGN.md §6).
ALL_RULES: tuple[Rule, ...] = (
    Det001WallClock(),
    Det002AmbientRng(),
    Det003TimeEquality(),
    Asy001BlockingInAsync(),
    Lock001InconsistentLocking(),
    Io001DurableWrites(),
    Wire001JsonSafeFields(),
    Exc001ExceptionHygiene(),
    Seed001SeedlessEntryPoint(),
)


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


def select_rules(
    select: str | None = None, ignore: str | None = None
) -> tuple[Rule, ...]:
    """The rule set after ``--select`` / ``--ignore`` filtering.

    Both take comma-separated rule ids; unknown ids raise ``ValueError``
    so typos fail loudly instead of silently checking nothing.
    """
    table = rules_by_id()

    def parse(spec: str | None) -> set[str]:
        if not spec:
            return set()
        ids = {part.strip() for part in spec.split(",") if part.strip()}
        unknown = ids - table.keys()
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {sorted(unknown)}; "
                f"known: {sorted(table)}"
            )
        return ids

    selected = parse(select) or set(table)
    selected -= parse(ignore)
    return tuple(rule for rule in ALL_RULES if rule.id in selected)
