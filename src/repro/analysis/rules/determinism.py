"""Determinism rules: the seeded byte-identical-replay invariants.

Every rule here encodes a contract the repo's golden-fixture and chaos
tests check only dynamically; see DESIGN.md §6 for the catalog and the
bug history motivating each one.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Iterator

from repro.analysis.engine import Finding, Module, Rule

__all__ = ["Det001WallClock", "Det002AmbientRng", "Det003TimeEquality",
           "Seed001SeedlessEntryPoint"]

#: Packages whose behaviour must be a pure function of (inputs, seed):
#: the simulator core, scheduler, runtime, experiment harness, the
#: benchmark harness (whose *measurements* are wall time, but only via the
#: explicitly annotated timer seam in repro.bench.timers), and the
#: federation tier (ring placement, crash schedules and migration are
#: counted in logical placements, never seconds — a dotted entry, so the
#: rest of ``serve`` keeps its real wall clock).
DETERMINISTIC_PACKAGES = ("sim", "core", "runtime", "exp", "bench",
                          "interference", "serve.federation")

#: DET002/SEED001 additionally cover the serving layer: its *wall time* is
#: real (latency measurement), but its randomness must still replay.
SEEDED_PACKAGES = DETERMINISTIC_PACKAGES + ("serve",)


# ----------------------------------------------------------------------
# DET001 — wall-clock reads in deterministic packages
# ----------------------------------------------------------------------
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Modules allowed to touch the wall clock despite living in a
#: deterministic package (none today; prefer `# repro: noqa DET001` with a
#: justification for single call sites, and entries here only for whole
#: modules whose *job* is wall-time, e.g. a future profiling shim).
DET001_ALLOWED_MODULES: frozenset[str] = frozenset()


class Det001WallClock(Rule):
    id: ClassVar[str] = "DET001"
    title: ClassVar[str] = "wall-clock read in a deterministic package"
    rationale: ClassVar[str] = (
        "sim/, core/, runtime/ and exp/ must be pure functions of their "
        "inputs and seed; a wall-clock read makes replay diverge silently."
    )
    packages: ClassVar[tuple[str, ...] | None] = DETERMINISTIC_PACKAGES

    def applies(self, mod: Module) -> bool:
        if not super().applies(mod):
            return False
        pkg = mod.repro_package
        return pkg is None or ".".join(pkg) not in DET001_ALLOWED_MODULES

    def check(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Attribute):
                qualified = mod.qualified_name(node)
            elif isinstance(node, ast.Name):
                # `from time import monotonic` makes the call site a bare
                # name; resolve through the import table only (a local
                # variable that merely shares a name never matches)
                qualified = mod.imports.get(node.id)
            else:
                continue
            if qualified in _WALL_CLOCK:
                yield self.finding(
                    mod, node,
                    f"wall-clock read `{qualified}` in deterministic package "
                    f"'{(mod.repro_package or ('?',))[0]}' — simulated time "
                    "comes from sim.engine.Clock; real time must be injected "
                    "by the caller",
                )


# ----------------------------------------------------------------------
# DET002 — ambient / unseeded RNG
# ----------------------------------------------------------------------
_AMBIENT_RANDOM = frozenset(
    f"random.{fn}" for fn in (
        "random", "uniform", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "vonmisesvariate", "paretovariate",
        "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
        "seed",
    )
)
_NUMPY_LEGACY = frozenset(
    f"numpy.random.{fn}" for fn in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "uniform",
        "normal", "standard_normal", "exponential", "poisson", "beta",
        "gamma", "binomial", "bytes",
    )
)
_SEEDABLE_CONSTRUCTORS = frozenset({"random.Random", "numpy.random.default_rng"})


class Det002AmbientRng(Rule):
    id: ClassVar[str] = "DET002"
    title: ClassVar[str] = "ambient or unseeded RNG in a seeded package"
    rationale: ClassVar[str] = (
        "randomness must flow from repro.sim.rng substreams or injected "
        "parameters; the process-global `random` state and unseeded "
        "generators cannot be replayed."
    )
    packages: ClassVar[tuple[str, ...] | None] = SEEDED_PACKAGES

    def check(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = mod.qualified_name(node.func)
            if qualified is None:
                continue
            if qualified in _AMBIENT_RANDOM or qualified in _NUMPY_LEGACY:
                yield self.finding(
                    mod, node,
                    f"call to module-level RNG `{qualified}` draws from "
                    "process-global state — use repro.sim.rng.stream/pyrandom "
                    "or an injected generator",
                )
            elif (
                qualified in _SEEDABLE_CONSTRUCTORS
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    mod, node,
                    f"`{qualified}()` without a seed is entropy-seeded and "
                    "never replays — derive it from repro.sim.rng or take a "
                    "seed/rng parameter",
                )


# ----------------------------------------------------------------------
# DET003 — float ==/!= on simulated clocks and deadlines
# ----------------------------------------------------------------------
_TIME_TOKENS = frozenset({
    "now", "time", "deadline", "due", "timestamp", "ts", "clock",
    "start", "end", "finish", "when", "t0", "t1", "t",
})
_SPLIT = re.compile(r"[^a-zA-Z0-9]+")


def _terminal_identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_time_like(node: ast.expr) -> bool:
    ident = _terminal_identifier(node)
    if ident is None:
        return False
    parts = [p.lower() for p in _SPLIT.split(ident) if p]
    # strip a leading underscore-private marker: `_now` → `now`
    return any(p in _TIME_TOKENS for p in parts)


def _obviously_not_float(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None
        or isinstance(node.value, (str, bytes, bool))
    )


class Det003TimeEquality(Rule):
    id: ClassVar[str] = "DET003"
    title: ClassVar[str] = "exact float equality on simulated time"
    rationale: ClassVar[str] = (
        "simulated timestamps accumulate float error, so == / != resolves "
        "differently at different clock magnitudes (the EventQueue.pop_due "
        "bug, PR 3) — compare with the relative DUE_REL_TOL idiom from "
        "repro.sim.engine instead."
    )
    packages: ClassVar[tuple[str, ...] | None] = DETERMINISTIC_PACKAGES

    def check(self, mod: Module) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _obviously_not_float(left) or _obviously_not_float(right):
                    continue
                if _is_time_like(left) or _is_time_like(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        mod, node,
                        f"`{symbol}` on a simulated-time value "
                        f"(`{ast.unparse(left)} {symbol} {ast.unparse(right)}`)"
                        " — accumulated float error makes exact equality "
                        "magnitude-dependent; use math.isclose with "
                        "DUE_REL_TOL (see sim.engine)",
                    )


# ----------------------------------------------------------------------
# SEED001 — public entry points must expose their seed
# ----------------------------------------------------------------------
_RNG_CONSTRUCTORS = frozenset({
    "repro.sim.rng.stream",
    "repro.sim.rng.pyrandom",
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
})
_SEED_PARAM = re.compile(r"^(seed|seeds|rng|random_state|.*_seed|.*_rng)$")


class Seed001SeedlessEntryPoint(Rule):
    id: ClassVar[str] = "SEED001"
    title: ClassVar[str] = "public entry point draws hidden randomness"
    rationale: ClassVar[str] = (
        "a public function that builds its RNG from values the caller "
        "cannot reach is unreplayable from the outside; every entry point "
        "that draws randomness must accept a seed or generator."
    )
    packages: ClassVar[tuple[str, ...] | None] = SEEDED_PACKAGES

    def check(self, mod: Module) -> Iterator[Finding]:
        for fn in ast.walk(mod.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name.startswith("_"):
                continue
            yield from self._check_function(mod, fn)

    def _check_function(
        self, mod: Module, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        params = {
            a.arg
            for a in (
                *fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs,
                *((fn.args.vararg,) if fn.args.vararg else ()),
                *((fn.args.kwarg,) if fn.args.kwarg else ()),
            )
        }
        has_seed_param = any(_SEED_PARAM.match(p) for p in params)
        injectable = params | {"self", "cls"}
        for node in self._walk_own_body(fn):
            if not isinstance(node, ast.Call):
                continue
            qualified = mod.qualified_name(node.func)
            if qualified not in _RNG_CONSTRUCTORS:
                continue
            arg_exprs = [*node.args, *(kw.value for kw in node.keywords)]
            injected = any(
                isinstance(name, ast.Name) and name.id in injectable
                for expr in arg_exprs
                for name in ast.walk(expr)
            )
            if injected or has_seed_param:
                continue
            yield self.finding(
                mod, node,
                f"public entry point `{fn.name}` constructs "
                f"`{qualified}(...)` from values no caller can vary — "
                "accept an explicit seed/rng parameter and thread it "
                "through",
            )

    @staticmethod
    def _walk_own_body(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[ast.AST]:
        """Walk ``fn``'s statements without descending into nested defs
        (nested functions are checked on their own if public)."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
