"""WIRE001 — the protocol module's dataclasses must stay JSON-wire-safe.

Every field of the dataclasses in ``repro/serve/protocol.py`` crosses the
newline-JSON wire via ``to_wire``/``from_wire``; a field whose type JSON
cannot represent (sets, ndarray, callables, bytes, arbitrary objects)
serializes wrong *or only sometimes*, which is how wire drift sneaks past
the unit tests.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.engine import Finding, Module, Rule

__all__ = ["Wire001JsonSafeFields"]

_SAFE_ATOMS = frozenset({"str", "int", "float", "bool", "None", "Any", "object"})
_SAFE_QUALIFIED = frozenset({"typing.Any"})
_SAFE_CONTAINERS = frozenset({
    "dict", "list", "tuple",
    "typing.Dict", "typing.List", "typing.Tuple", "typing.Optional",
    "typing.Mapping", "typing.Sequence", "typing.MutableMapping",
    "collections.abc.Mapping", "collections.abc.Sequence",
})


class Wire001JsonSafeFields(Rule):
    id: ClassVar[str] = "WIRE001"
    title: ClassVar[str] = "non-JSON-safe dataclass field in the wire protocol"
    rationale: ClassVar[str] = (
        "protocol dataclasses round-trip through newline-delimited JSON; "
        "a field type JSON cannot represent breaks clients that did not "
        "write the server (and vice versa)."
    )
    packages: ClassVar[tuple[str, ...] | None] = ("serve",)

    def applies(self, mod: Module) -> bool:
        pkg = mod.repro_package
        return pkg is not None and pkg == ("serve", "protocol")

    def check(self, mod: Module) -> Iterator[Finding]:
        wire_classes = self._wire_safe_local_classes(mod)
        for cls in mod.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._is_dataclass(mod, cls):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                if self._is_classvar(stmt.annotation):
                    continue
                if not self._safe(mod, stmt.annotation, wire_classes):
                    yield self.finding(
                        mod, stmt,
                        f"field `{cls.name}.{stmt.target.id}: "
                        f"{ast.unparse(stmt.annotation)}` is not JSON-wire-"
                        "safe — allowed: str/int/float/bool/None/Any, "
                        "list/dict/tuple/Mapping/Sequence of safe types, "
                        "and wire types defined in this module",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_dataclass(mod: Module, cls: ast.ClassDef) -> bool:
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            qualified = mod.qualified_name(target)
            if qualified in ("dataclasses.dataclass", "dataclass"):
                return True
        return False

    @staticmethod
    def _wire_safe_local_classes(mod: Module) -> frozenset[str]:
        """Local classes allowed as field types: this module's dataclasses
        (themselves under WIRE001 scrutiny) and its ``str``-based enums
        (serialized as their string value)."""
        names: set[str] = set()
        for cls in mod.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            if Wire001JsonSafeFields._is_dataclass(mod, cls):
                names.add(cls.name)
                continue
            base_names = {
                mod.qualified_name(b) for b in cls.bases
            }
            if "str" in base_names:
                names.add(cls.name)
        return frozenset(names)

    @staticmethod
    def _is_classvar(node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, (ast.Name, ast.Attribute)) and (
            (isinstance(node, ast.Name) and node.id == "ClassVar")
            or (isinstance(node, ast.Attribute) and node.attr == "ClassVar")
        )

    def _safe(
        self, mod: Module, node: ast.expr, wire_classes: frozenset[str]
    ) -> bool:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return True
            if isinstance(node.value, str):  # forward reference
                name = node.value.strip()
                return name in _SAFE_ATOMS or name in wire_classes
            return False
        if isinstance(node, ast.Name):
            return node.id in _SAFE_ATOMS or node.id in wire_classes
        if isinstance(node, ast.Attribute):
            qualified = mod.qualified_name(node)
            return qualified in _SAFE_QUALIFIED
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._safe(mod, node.left, wire_classes) and self._safe(
                mod, node.right, wire_classes
            )
        if isinstance(node, ast.Subscript):
            base = mod.qualified_name(node.value)
            if base not in _SAFE_CONTAINERS:
                return False
            index = node.slice
            elements = (
                list(index.elts) if isinstance(index, ast.Tuple) else [index]
            )
            return all(
                isinstance(e, ast.Constant) and e.value is Ellipsis
                or self._safe(mod, e, wire_classes)
                for e in elements
            )
        return False
