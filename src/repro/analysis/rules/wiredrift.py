"""WIRE002 — wire-schema drift between protocol dataclasses and their users.

The protocol dataclasses in ``repro.serve.protocol`` (and the federation
tier's protocol module, if any) are the single source of truth for what
goes over the wire.  Four things can silently drift away from them:

* ``to_wire`` returning a dict whose keys no longer match the field set;
* ``from_wire``'s ``known = {...}`` allow-list missing a field (new
  field rejected as "unknown") or keeping a deleted one;
* a construction site — client, loadgen, router, federation service —
  passing a keyword that is not a field, or omitting a required field;
* code annotated to receive a protocol object reading an attribute the
  dataclass no longer has.

On top of the field checks, the structured job-id convention is checked
across ``repro.serve``: every id prefix that some module *parses*
(``x.startswith("fed-")``) must be *built* somewhere (``f"fed-{n:05d}"``),
and all build sites of one prefix must agree on the format spec — the
two-level ``fed-`` / ``job-`` convention routes by exactly these
prefixes, so a renamed or re-padded id strands jobs.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
)

__all__ = ["Wire002SchemaDrift"]

#: Modules whose dataclasses define the wire schema.
_PROTOCOL_MODULE_SUFFIX = ".protocol"
_PROTOCOL_PACKAGE = ("serve",)


def _protocol_classes(
    project: ProjectIndex,
) -> dict[str, tuple[ModuleSummary, ClassInfo]]:
    """Dotted class name → protocol dataclass, for serve protocol modules."""
    out: dict[str, tuple[ModuleSummary, ClassInfo]] = {}
    for summary in project.iter_summaries():
        if not summary.in_packages(_PROTOCOL_PACKAGE):
            continue
        if not summary.module.endswith(_PROTOCOL_MODULE_SUFFIX):
            continue
        for cls in summary.classes:
            if cls.is_dataclass:
                out[f"{summary.module}.{cls.name}"] = (summary, cls)
    return out


class Wire002SchemaDrift(ProjectRule):
    id: ClassVar[str] = "WIRE002"
    title: ClassVar[str] = "protocol dataclass and its users disagree"
    rationale: ClassVar[str] = (
        "serialization, deserialization, construction and access sites "
        "all hard-code the protocol field set; any one drifting from the "
        "dataclass definition corrupts or rejects live traffic instead "
        "of failing in review."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        registry = _protocol_classes(project)
        for name in sorted(registry):
            yield from self._check_serializers(name, *registry[name])
        for summary in project.iter_summaries():
            for fn in summary.functions:
                yield from self._check_constructions(
                    project, registry, summary, fn
                )
                yield from self._check_attr_access(
                    project, registry, summary, fn
                )
        yield from self._check_id_convention(project)

    # -- to_wire / from_wire vs the field set ---------------------------
    def _check_serializers(
        self, name: str, summary: ModuleSummary, cls: ClassInfo
    ) -> Iterator[Finding]:
        fields = set(cls.field_names())
        if cls.wire_keys is not None and set(cls.wire_keys) != fields:
            missing = sorted(fields - set(cls.wire_keys))
            extra = sorted(set(cls.wire_keys) - fields)
            yield self.finding_at(
                summary.path, cls.wire_keys_lineno, 0,
                f"`{cls.name}.to_wire` keys drift from the dataclass "
                f"fields (missing: {missing or 'none'}, "
                f"extra: {extra or 'none'})",
            )
        if cls.from_wire_known is not None and set(cls.from_wire_known) != fields:
            missing = sorted(fields - set(cls.from_wire_known))
            extra = sorted(set(cls.from_wire_known) - fields)
            yield self.finding_at(
                summary.path, cls.from_wire_lineno, 0,
                f"`{cls.name}.from_wire` known-field set drifts from the "
                f"dataclass fields (missing: {missing or 'none'}, "
                f"extra: {extra or 'none'})",
            )

    # -- construction sites ---------------------------------------------
    def _check_constructions(
        self,
        project: ProjectIndex,
        registry: dict[str, tuple[ModuleSummary, ClassInfo]],
        summary: ModuleSummary,
        fn: FunctionInfo,
    ) -> Iterator[Finding]:
        for call in fn.calls:
            if call.scope != "name":
                continue
            resolved = project.resolve_class(summary, call.target)
            if resolved is None:
                continue
            cls_key = f"{resolved[0].module}.{resolved[1].name}"
            found = registry.get(cls_key)
            if found is None:
                continue
            cls = found[1]
            fields = cls.field_names()
            field_set = set(fields)
            for kw, _ in call.kws:
                if kw not in field_set:
                    yield self.finding_at(
                        summary.path, call.lineno, call.col,
                        f"`{cls.name}(...)` called with unknown field "
                        f"`{kw}` — not in the protocol dataclass",
                    )
            if call.star:
                continue  # *args/**kwargs: cannot prove a field missing
            supplied = set(fields[: len(call.pos)])
            supplied.update(kw for kw, _ in call.kws)
            required = {
                f.name for f in cls.fields if not f.has_default
            }
            missing = sorted(required - supplied)
            if missing:
                yield self.finding_at(
                    summary.path, call.lineno, call.col,
                    f"`{cls.name}(...)` misses required protocol "
                    f"field(s) {missing}",
                )

    # -- annotated attribute access --------------------------------------
    def _check_attr_access(
        self,
        project: ProjectIndex,
        registry: dict[str, tuple[ModuleSummary, ClassInfo]],
        summary: ModuleSummary,
        fn: FunctionInfo,
    ) -> Iterator[Finding]:
        typed: dict[str, ClassInfo] = {}
        annotations = {**fn.param_annotations, **fn.var_annotations}
        for name, annotation in annotations.items():
            if name in fn.stores and name not in fn.var_annotations:
                continue  # rebound parameter: annotation no longer holds
            resolved = project.resolve_class(summary, annotation)
            if resolved is None:
                continue
            cls_key = f"{resolved[0].module}.{resolved[1].name}"
            found = registry.get(cls_key)
            if found is not None:
                typed[name] = found[1]
        if not typed:
            return
        for load in fn.attr_loads:
            cls = typed.get(load.base)
            if cls is None:
                continue
            if load.attr.startswith("__"):
                continue
            allowed = (
                set(cls.field_names())
                | set(cls.methods)
                | set(cls.properties)
            )
            if load.attr not in allowed:
                yield self.finding_at(
                    summary.path, load.lineno, load.col,
                    f"`{load.base}.{load.attr}` reads a field the "
                    f"protocol dataclass `{cls.name}` does not define",
                )

    # -- structured id prefixes ------------------------------------------
    def _check_id_convention(self, project: ProjectIndex) -> Iterator[Finding]:
        builds: dict[str, list[tuple[ModuleSummary, str, int, int]]] = {}
        parses: dict[str, list[tuple[ModuleSummary, int, int]]] = {}
        for summary in project.iter_summaries():
            if not summary.in_packages(_PROTOCOL_PACKAGE):
                continue
            for site in summary.id_sites:
                if site.kind == "build":
                    builds.setdefault(site.prefix, []).append(
                        (summary, site.spec, site.lineno, site.col)
                    )
                else:
                    parses.setdefault(site.prefix, []).append(
                        (summary, site.lineno, site.col)
                    )
        for prefix in sorted(parses):
            if prefix in builds:
                continue
            for summary, lineno, col in parses[prefix]:
                yield self.finding_at(
                    summary.path, lineno, col,
                    f"id prefix `{prefix}` is parsed here but no serve "
                    "module builds it — renamed or retired convention",
                )
        for prefix in sorted(builds):
            sites = builds[prefix]
            specs = {spec for _, spec, _, _ in sites}
            if len(specs) <= 1:
                continue
            canonical = sorted(specs)[0]
            for summary, spec, lineno, col in sites:
                if spec != canonical:
                    yield self.finding_at(
                        summary.path, lineno, col,
                        f"id prefix `{prefix}` built with format spec "
                        f"`{spec or '<none>'}` here but "
                        f"`{canonical or '<none>'}` elsewhere — ids will "
                        "not sort/parse consistently",
                    )
