"""Core of the determinism & concurrency sanitizer.

The engine parses each Python file once, hands the AST to every
applicable :class:`Rule`, filters per-line ``# repro: noqa RULE``
suppressions, and returns sorted, de-duplicated :class:`Finding`\\ s.

Rules are *static invariant checks*: each one encodes a replay or
concurrency contract the repo's tests enforce only dynamically (seeded
byte-identical replay, lock discipline, wire-safety).  The engine is
deliberately stdlib-only — ``ast`` plus pathlib — so it can run in CI,
pre-commit, and the test suite with zero extra dependencies.
"""

from __future__ import annotations

import ast
import fnmatch
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Iterable,
    Iterator,
    Sequence,
)

from repro.analysis.suppress import line_suppressions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectIndex

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "ProjectRule",
    "analyze_source",
    "analyze_paths",
    "decode_source",
    "iter_python_files",
    "parse_module",
    "repro_package_of",
    "run_file_rules",
    "PARSE_RULE_ID",
]

#: Pseudo-rule id attached to files the engine cannot parse (or read) at
#: all.  A PARSE000 finding is a *diagnostic*: the strict CI run keeps
#: going and fails at the end like any other finding, instead of
#: crashing mid-scan.
PARSE_RULE_ID = "PARSE000"

#: Directory names never descended into, on top of hidden directories
#: (leading ``.``, which already covers ``.repro-analysis-cache``):
#: bytecode caches and the run-cache quarantine (forensic copies of
#: corrupt entries — not source code).
SKIP_DIR_NAMES = frozenset({
    "__pycache__", "quarantine", ".repro-analysis-cache",
})


def repro_package_of(path: str) -> tuple[str, ...] | None:
    """Path components below the ``repro`` package, or ``None``.

    Path-only (no parse needed), so the project driver can still scope a
    file that failed to parse.
    """
    parts = PurePosixPath(path).parts
    if "repro" not in parts:
        return None
    idx = parts.index("repro")
    tail = parts[idx + 1 :]
    if not tail:
        return None
    last = tail[-1]
    if last.endswith(".py"):
        tail = tail[:-1] + (last[:-3],)
    return tail


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def baseline_key(self) -> str:
        """Line-independent identity used by the grandfathering baseline.

        Deliberately excludes the line number so unrelated edits above a
        grandfathered finding do not un-baseline it.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Module:
    """One parsed source file plus the name-resolution helpers rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = PurePosixPath(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._imports: dict[str, str] | None = None

    # ------------------------------------------------------------------
    @property
    def repro_package(self) -> tuple[str, ...] | None:
        """Path components below the ``repro`` package, or ``None``.

        ``src/repro/sim/rng.py`` → ``("sim", "rng")``; a file outside the
        ``repro`` tree (tests, scripts) → ``None``.
        """
        return repro_package_of(self.path)

    def in_packages(self, packages: Iterable[str]) -> bool:
        """Whether this module lives under any ``repro.<package>``.

        Entries may be dotted sub-package prefixes: ``"serve.federation"``
        matches ``repro/serve/federation/*`` but not the rest of
        ``repro/serve``, while a plain ``"serve"`` matches the whole
        package, sub-packages included.
        """
        pkg = self.repro_package
        if pkg is None or not pkg:
            return False
        for entry in packages:
            prefix = tuple(entry.split("."))
            if pkg[: len(prefix)] == prefix:
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def imports(self) -> dict[str, str]:
        """Local name → fully qualified dotted origin, from the imports.

        ``import numpy as np`` → ``{"np": "numpy"}``;
        ``from time import monotonic as mono`` → ``{"mono": "time.monotonic"}``.
        Relative imports are resolved against the module's ``repro`` package
        when known.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_import_base(node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = f"{base}.{alias.name}"
            self._imports = table
        return self._imports

    def _resolve_import_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        pkg = self.repro_package
        if pkg is None:
            return None
        # drop the module filename, then one package per extra level
        parents = ("repro",) + pkg[:-1]
        if node.level - 1 > len(parents):
            return None
        base_parts = parents[: len(parents) - (node.level - 1)]
        if node.module:
            base_parts = base_parts + tuple(node.module.split("."))
        return ".".join(base_parts) if base_parts else None

    # ------------------------------------------------------------------
    def qualified_name(self, node: ast.expr) -> str | None:
        """Dotted origin of a ``Name``/``Attribute`` chain, or ``None``.

        ``np.random.default_rng`` (after ``import numpy as np``) resolves to
        ``"numpy.random.default_rng"``.  Chains rooted anywhere but a plain
        name (calls, subscripts, ``self``) resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule(ABC):
    """One invariant check.  Subclasses set the class metadata and
    implement :meth:`check`; scoping is declarative via ``packages``."""

    id: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]
    #: ``repro`` subpackages the rule applies to, or ``None`` for "any file"
    #: (further narrowed by ``repro_only``).
    packages: ClassVar[tuple[str, ...] | None] = None
    #: When ``packages`` is ``None``: restrict to files under ``repro``?
    repro_only: ClassVar[bool] = False

    def applies(self, mod: Module) -> bool:
        if self.packages is not None:
            return mod.in_packages(self.packages)
        if self.repro_only:
            return mod.repro_package is not None
        return True

    @abstractmethod
    def check(self, mod: Module) -> Iterator[Finding]:
        """Yield every violation in ``mod`` (suppressions applied later)."""

    def finding(self, mod: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


class ProjectRule(ABC):
    """One *whole-program* invariant check (pass 2).

    Unlike :class:`Rule`, which sees one module's AST, a ProjectRule
    sees the :class:`~repro.analysis.project.ProjectIndex` — every
    module's summary plus the cross-module registries — and reports
    findings line-anchored at a concrete witness site, so suppressions
    and the baseline work identically for both passes.
    """

    id: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]

    @abstractmethod
    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        """Yield every violation across the project (suppressions are
        applied by the driver, per witness line)."""

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path, line=line, col=col, rule=self.id, message=message
        )


# ----------------------------------------------------------------------
# driving
# ----------------------------------------------------------------------
def decode_source(data: bytes) -> str:
    """Bytes → analyzable text: strips a UTF-8 BOM (which would otherwise
    be a syntax error as ``\\ufeff``) and replaces undecodable bytes so a
    stray binary file yields a parse diagnostic, not a crash."""
    return data.decode("utf-8-sig", errors="replace")


def parse_module(path: str, source: str) -> tuple[Module | None, Finding | None]:
    """Parse one source file; on failure return a PARSE000 diagnostic.

    ``ast.parse`` raises ``SyntaxError`` for malformed code and
    ``ValueError`` for e.g. null bytes; both become findings so a broken
    file fails the strict run with a location instead of killing it.
    """
    posix = PurePosixPath(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_RULE_ID,
            message=f"file does not parse: {exc.msg}",
        )
    except ValueError as exc:
        return None, Finding(
            path=posix, line=1, col=0, rule=PARSE_RULE_ID,
            message=f"file does not parse: {exc}",
        )
    return Module(path, source, tree), None


def run_file_rules(
    mod: Module,
    rules: Sequence[Rule],
    suppressed: dict[int, frozenset[str]],
) -> list[Finding]:
    """All unsuppressed per-file findings for one parsed module."""
    findings: set[Finding] = set()
    for rule in rules:
        if not rule.applies(mod):
            continue
        for finding in rule.check(mod):
            rules_on_line = suppressed.get(finding.line)
            if rules_on_line is not None and (
                not rules_on_line or finding.rule in rules_on_line
            ):
                continue
            findings.add(finding)
    return sorted(findings)


def analyze_source(
    path: str, source: str, rules: Sequence[Rule]
) -> list[Finding]:
    """All unsuppressed findings for one in-memory source file.

    ``path`` also carries the scoping information (which rules apply), so
    tests can exercise package-scoped rules on virtual paths like
    ``src/repro/sim/fixture.py`` without touching the real tree.
    """
    mod, parse_failure = parse_module(path, source)
    if mod is None:
        assert parse_failure is not None
        return [parse_failure]
    return run_file_rules(mod, rules, line_suppressions(mod.lines))


def _excluded(path: Path, exclude: Sequence[str]) -> bool:
    """``--exclude`` glob match, against the posix path and basename."""
    posix = path.as_posix()
    return any(
        fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(path.name, pattern)
        for pattern in exclude
    )


def iter_python_files(
    paths: Sequence[str | Path], *, exclude: Sequence[str] = ()
) -> Iterator[Path]:
    """Every ``*.py`` under the given files/directories, sorted.

    Skips hidden directories (including ``.repro-analysis-cache/``),
    ``__pycache__`` and run-cache ``quarantine/`` directories, and any
    path matching an ``--exclude`` glob (matched against both the posix
    path and the basename).  A file passed *explicitly* is analyzed even
    if hidden (pre-commit passes staged filenames), but ``--exclude``
    still applies.
    """
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py" and p not in seen and not _excluded(p, exclude):
                seen.add(p)
                yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if any(
                    part in SKIP_DIR_NAMES
                    or (part.startswith(".") and part not in (".", ".."))
                    for part in sub.parts
                ):
                    continue
                if _excluded(sub, exclude):
                    continue
                if sub not in seen:
                    seen.add(sub)
                    yield sub
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")


def analyze_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    *,
    exclude: Sequence[str] = (),
) -> tuple[list[Finding], int]:
    """Analyze files/trees on disk; returns (findings, files scanned)."""
    findings: list[Finding] = []
    scanned = 0
    for file in iter_python_files(paths, exclude=exclude):
        scanned += 1
        try:
            data = file.read_bytes()
        except OSError as exc:
            findings.append(Finding(
                path=file.as_posix(), line=1, col=0, rule=PARSE_RULE_ID,
                message=f"file cannot be read: {exc}",
            ))
            continue
        findings.extend(
            analyze_source(file.as_posix(), decode_source(data), rules)
        )
    return sorted(findings), scanned
