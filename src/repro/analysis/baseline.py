"""Grandfathering baseline: known findings the build tolerates.

The baseline is a checked-in JSON file of finding identities
(rule + path + message, *no line numbers*, so edits elsewhere in a file
never churn it).  ``--write-baseline`` regenerates it from the current
tree; a normal run subtracts baselined findings and only *new* ones fail
``--strict``.

Policy (see DESIGN.md §6): the baseline is a ratchet, not a dumping
ground — entries may only shrink, and the deterministic core packages
(``sim/``, ``core/``, ``serve/``) must stay at zero entries; violations
there are fixed, not grandfathered.  Stale entries (no longer matched by
any finding) are reported so they get deleted.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.engine import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "write_baseline",
    "partition_findings",
]

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter[str]:
    """Baseline keys → allowed count.  A missing file is an empty baseline."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} analysis baseline file"
        )
    entries = data.get("findings", [])
    counts: Counter[str] = Counter()
    for entry in entries:
        key = f"{entry['rule']}::{entry['path']}::{entry['message']}"
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Serialize the given findings as the new baseline (sorted, counted)."""
    counts: Counter[tuple[str, str, str]] = Counter(
        (f.rule, f.path, f.message) for f in findings
    )
    entries: list[dict[str, Any]] = [
        {"rule": rule, "path": file, "message": message, "count": count}
        for (rule, file, message), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition_findings(
    findings: Sequence[Finding],
    baseline: Counter[str],
    known_rules: set[str] | None = None,
) -> tuple[list[Finding], list[Finding], list[str], list[str]]:
    """Split findings into (new, baselined); list stale and retired keys.

    Matching is counted: a baseline entry with ``count: 2`` absorbs at
    most two identical findings; a third is new.

    *Stale* keys matched no finding this run (informational: delete
    them).  *Retired* keys name a rule id that no longer exists at all —
    a renamed or removed rule would otherwise leave its grandfathered
    entries lingering silently forever, so retired entries fail
    ``--strict``.  With ``known_rules=None`` every id is considered
    known (no retirement check).
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    retired = sorted(
        key for key in baseline
        if known_rules is not None
        and key.split("::", 1)[0] not in known_rules
    )
    retired_set = set(retired)
    stale = sorted(
        key for key, count in remaining.items()
        if count > 0 and key not in retired_set
    )
    return new, grandfathered, stale, retired
