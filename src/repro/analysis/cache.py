"""Content-hash analysis cache: warm runs re-parse only changed files.

One JSON entry per analyzed *path* (file name = SHA-256 of the posix
path, so an edited file overwrites its own entry instead of growing the
cache).  An entry stores everything pass 1 produced for the file — the
per-file findings, the :class:`~repro.analysis.project.ModuleSummary`,
and the ``# repro: noqa`` suppression table — keyed by

* the SHA-256 of the file's *bytes* (content addressing), and
* the analyzer fingerprint: a hash over the ``repro.analysis`` package's
  own sources, the summary schema version, and the selected per-file
  rule ids.

The fingerprint is the cache-invalidation contract (DESIGN.md §6): edit
any analyzer module, bump the summary schema, or change the rule
selection and every entry misses; otherwise a hit is byte-equivalent to
re-analyzing the file.  Corrupt or stale entries are treated as misses,
never errors — the cache can always be deleted wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.analysis.engine import Finding
from repro.analysis.project import ModuleSummary

__all__ = [
    "CACHE_DIR_DEFAULT",
    "CACHE_VERSION",
    "AnalysisCache",
    "CacheEntry",
    "analyzer_fingerprint",
    "content_digest",
]

CACHE_VERSION = 1

#: Default cache location (hidden, so the file iterator skips it).
CACHE_DIR_DEFAULT = ".repro-analysis-cache"


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def analyzer_fingerprint(rule_ids: Iterable[str]) -> str:
    """Hash of the analyzer itself plus the active per-file rule set.

    Hashing the package's own sources means any rule or engine edit
    invalidates every entry without anyone remembering to bump a
    version constant.
    """
    digest = hashlib.sha256()
    digest.update(f"cache-v{CACHE_VERSION}".encode("utf-8"))
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.rglob("*.py")):
        digest.update(source.relative_to(package_dir).as_posix().encode("utf-8"))
        digest.update(source.read_bytes())
    digest.update(repr(sorted(set(rule_ids))).encode("utf-8"))
    return digest.hexdigest()[:32]


@dataclass
class CacheEntry:
    """Everything pass 1 computed for one file."""

    digest: str
    findings: list[Finding]
    summary: ModuleSummary
    #: 1-based line → suppressed rule ids (empty set = suppress all),
    #: same convention as :func:`repro.analysis.suppress.line_suppressions`.
    suppressions: dict[int, frozenset[str]]

    def to_json(self, fingerprint: str) -> dict[str, Any]:
        return {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "digest": self.digest,
            "findings": [f.to_json() for f in self.findings],
            "summary": self.summary.to_json(),
            "suppressions": {
                str(line): sorted(rules)
                for line, rules in self.suppressions.items()
            },
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "CacheEntry":
        return CacheEntry(
            digest=str(data["digest"]),
            findings=[
                Finding(
                    path=str(f["path"]), line=int(f["line"]),
                    col=int(f["col"]), rule=str(f["rule"]),
                    message=str(f["message"]),
                )
                for f in data["findings"]
            ],
            summary=ModuleSummary.from_json(data["summary"]),
            suppressions={
                int(line): frozenset(str(r) for r in rules)
                for line, rules in data["suppressions"].items()
            },
        )


class AnalysisCache:
    """Per-file entries under one cache directory."""

    def __init__(self, root: Path, fingerprint: str):
        self.root = root
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry_path(self, path: str) -> Path:
        name = hashlib.sha256(path.encode("utf-8")).hexdigest()
        return self.root / f"{name}.json"

    # ------------------------------------------------------------------
    def load(self, path: str, digest: str) -> CacheEntry | None:
        """The cached entry for ``path`` at ``digest``, or ``None``."""
        entry_path = self._entry_path(path)
        try:
            raw = entry_path.read_text(encoding="utf-8")
            data = json.loads(raw)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        try:
            if (
                not isinstance(data, dict)
                or data.get("version") != CACHE_VERSION
                or data.get("fingerprint") != self.fingerprint
                or data.get("digest") != digest
            ):
                self.misses += 1
                return None
            entry = CacheEntry.from_json(data)
        except (KeyError, TypeError, ValueError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, path: str, entry: CacheEntry) -> None:
        """Persist one entry (atomic rename; failures are non-fatal)."""
        entry_path = self._entry_path(path)
        payload = json.dumps(entry.to_json(self.fingerprint))
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = entry_path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, entry_path)
        except OSError:
            return  # a read-only checkout degrades to cold runs
        self.stores += 1
