"""Pass 1 of the whole-program analyzer: per-module summaries.

:func:`summarize_module` reduces one parsed :class:`~repro.analysis.engine.Module`
to a :class:`ModuleSummary` — the symbol table, import table, class and
dataclass registry, and per-function facts (call sites with forwarded
parameters, lock acquisitions with the held-set at each site, parameter
uses) that pass 2's :class:`~repro.analysis.engine.ProjectRule`\\ s need.

Summaries are plain JSON-serializable data (``to_json``/``from_json``)
so the content-hash cache (:mod:`repro.analysis.cache`) can persist them
per file: a warm run rebuilds the whole :class:`ProjectIndex` without
re-parsing a single unchanged file.

Everything here is *approximate* in the usual static-analysis sense:
call targets are resolved through import aliases, ``self.method``
dispatch, and ``self.attr = ClassName(...)`` attribute types; dynamic
dispatch, monkey-patching and higher-order calls resolve to "unknown"
and the project rules treat unknown conservatively (assume used / assume
no lock taken) so approximation produces false *negatives*, never noisy
false positives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Any, Iterator, Mapping, Sequence

from repro.analysis.engine import Module

__all__ = [
    "SUMMARY_VERSION",
    "AcquireInfo",
    "AttrLoad",
    "CallInfo",
    "ClassInfo",
    "FieldInfo",
    "FunctionInfo",
    "IdLiteralSite",
    "ModuleSummary",
    "ProjectIndex",
    "module_dotted_name",
    "summarize_module",
]

#: Bumped whenever the summary shape changes; part of the cache fingerprint.
SUMMARY_VERSION = 1

#: Constructors whose result is a mutual-exclusion lock for LOCK002.
#: ``asyncio.Lock`` is included: coroutines deadlock on lock-order
#: inversions exactly like threads do.
LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock", "asyncio.Lock",
})

#: ``<prefix>`` of a structured string id (``fed-``, ``job-``): a short
#: lowercase word plus one separator, immediately followed by an
#: interpolated value.
_ID_PREFIX = re.compile(r"([a-z][a-z0-9_.]{0,15}[-_])$")
_ID_PARSE_CONST = re.compile(r"^([a-z][a-z0-9_.]{0,15}[-_])$")


# ----------------------------------------------------------------------
# summary data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field."""

    name: str
    annotation: str
    has_default: bool
    lineno: int
    col: int

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name, "annotation": self.annotation,
            "has_default": self.has_default,
            "lineno": self.lineno, "col": self.col,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "FieldInfo":
        return FieldInfo(
            name=str(data["name"]), annotation=str(data["annotation"]),
            has_default=bool(data["has_default"]),
            lineno=int(data["lineno"]), col=int(data["col"]),
        )


@dataclass(frozen=True)
class AcquireInfo:
    """One lock acquisition site with the locks already held there.

    ``token`` is either ``"self.<attr>"`` (canonicalized against the
    enclosing class by LOCK002) or an ``"@<dotted>"`` module-global.
    """

    token: str
    lineno: int
    col: int
    held: tuple[str, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "token": self.token, "lineno": self.lineno, "col": self.col,
            "held": list(self.held),
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "AcquireInfo":
        return AcquireInfo(
            token=str(data["token"]), lineno=int(data["lineno"]),
            col=int(data["col"]),
            held=tuple(str(t) for t in data["held"]),
        )


@dataclass(frozen=True)
class CallInfo:
    """One call site, reduced to what the interprocedural rules need."""

    #: Resolution hint: ``"name"`` (dotted path through the import
    #: table), ``"self"`` (``self.method()``), ``"selfattr"``
    #: (``self.<attr>.method()``) or ``"unknown"``.
    scope: str
    #: For ``name``: the dotted target; for ``self``: the method name;
    #: for ``selfattr``: the method name (the attribute is ``attr_root``).
    target: str
    attr_root: str
    lineno: int
    col: int
    #: Bare caller-local name forwarded per positional argument
    #: (``None`` for any richer expression).
    pos: tuple[str | None, ...]
    #: Keyword → bare forwarded name (same convention).
    kws: tuple[tuple[str, str | None], ...]
    #: ``*args`` / ``**kwargs`` expansion present (mapping unknowable).
    star: bool
    #: Every plain name read anywhere in the arguments.
    names_in_args: tuple[str, ...]
    #: Lock tokens held at this call site (for LOCK002 propagation).
    held: tuple[str, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "scope": self.scope, "target": self.target,
            "attr_root": self.attr_root,
            "lineno": self.lineno, "col": self.col,
            "pos": list(self.pos),
            "kws": [[k, v] for k, v in self.kws],
            "star": self.star,
            "names_in_args": list(self.names_in_args),
            "held": list(self.held),
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "CallInfo":
        return CallInfo(
            scope=str(data["scope"]), target=str(data["target"]),
            attr_root=str(data["attr_root"]),
            lineno=int(data["lineno"]), col=int(data["col"]),
            pos=tuple(
                None if p is None else str(p) for p in data["pos"]
            ),
            kws=tuple(
                (str(k), None if v is None else str(v))
                for k, v in data["kws"]
            ),
            star=bool(data["star"]),
            names_in_args=tuple(str(n) for n in data["names_in_args"]),
            held=tuple(str(t) for t in data["held"]),
        )


@dataclass(frozen=True)
class AttrLoad:
    """``<name>.<attr>`` read where ``<name>`` is a plain local name."""

    base: str
    attr: str
    lineno: int
    col: int

    def to_json(self) -> dict[str, Any]:
        return {
            "base": self.base, "attr": self.attr,
            "lineno": self.lineno, "col": self.col,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "AttrLoad":
        return AttrLoad(
            base=str(data["base"]), attr=str(data["attr"]),
            lineno=int(data["lineno"]), col=int(data["col"]),
        )


@dataclass(frozen=True)
class IdLiteralSite:
    """One structured-id literal: ``f"fed-{n:05d}"`` or a parse of it."""

    kind: str  # "build" | "parse"
    prefix: str
    spec: str
    lineno: int
    col: int

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind, "prefix": self.prefix, "spec": self.spec,
            "lineno": self.lineno, "col": self.col,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "IdLiteralSite":
        return IdLiteralSite(
            kind=str(data["kind"]), prefix=str(data["prefix"]),
            spec=str(data["spec"]),
            lineno=int(data["lineno"]), col=int(data["col"]),
        )


@dataclass
class FunctionInfo:
    """One function or method (``qual`` is ``"f"`` or ``"Class.m"``)."""

    qual: str
    name: str
    lineno: int
    col: int
    params: list[str]
    has_vararg: bool
    has_kwarg: bool
    is_method: bool
    is_public: bool
    is_abstract: bool
    is_trivial: bool
    param_annotations: dict[str, str]
    var_annotations: dict[str, str]
    #: Params read anywhere *other than* as a bare forwarded call
    #: argument (arithmetic, attribute access, stores, returns, …).
    generic_uses: list[str]
    #: Every local name assigned (or deleted) in the body — a rebound
    #: parameter no longer has its annotated type.
    stores: list[str]
    calls: list[CallInfo]
    acquires: list[AcquireInfo]
    attr_loads: list[AttrLoad]

    @property
    def cls(self) -> str | None:
        """Enclosing class name, or ``None`` for a module-level function."""
        if "." in self.qual:
            return self.qual.rsplit(".", 1)[0]
        return None

    def to_json(self) -> dict[str, Any]:
        return {
            "qual": self.qual, "name": self.name,
            "lineno": self.lineno, "col": self.col,
            "params": list(self.params),
            "has_vararg": self.has_vararg, "has_kwarg": self.has_kwarg,
            "is_method": self.is_method, "is_public": self.is_public,
            "is_abstract": self.is_abstract, "is_trivial": self.is_trivial,
            "param_annotations": dict(self.param_annotations),
            "var_annotations": dict(self.var_annotations),
            "generic_uses": list(self.generic_uses),
            "stores": list(self.stores),
            "calls": [c.to_json() for c in self.calls],
            "acquires": [a.to_json() for a in self.acquires],
            "attr_loads": [a.to_json() for a in self.attr_loads],
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "FunctionInfo":
        return FunctionInfo(
            qual=str(data["qual"]), name=str(data["name"]),
            lineno=int(data["lineno"]), col=int(data["col"]),
            params=[str(p) for p in data["params"]],
            has_vararg=bool(data["has_vararg"]),
            has_kwarg=bool(data["has_kwarg"]),
            is_method=bool(data["is_method"]),
            is_public=bool(data["is_public"]),
            is_abstract=bool(data["is_abstract"]),
            is_trivial=bool(data["is_trivial"]),
            param_annotations={
                str(k): str(v) for k, v in data["param_annotations"].items()
            },
            var_annotations={
                str(k): str(v) for k, v in data["var_annotations"].items()
            },
            generic_uses=[str(u) for u in data["generic_uses"]],
            stores=[str(s) for s in data["stores"]],
            calls=[CallInfo.from_json(c) for c in data["calls"]],
            acquires=[AcquireInfo.from_json(a) for a in data["acquires"]],
            attr_loads=[AttrLoad.from_json(a) for a in data["attr_loads"]],
        )


@dataclass
class ClassInfo:
    """One class: bases, methods, dataclass fields, typed attributes."""

    name: str
    lineno: int
    col: int
    bases: list[str]
    is_dataclass: bool
    fields: list[FieldInfo]
    methods: list[str]
    properties: list[str]
    #: ``self.<attr> = ClassName(...)`` → qualified constructor name.
    attr_types: dict[str, str]
    #: Attributes assigned a lock constructor anywhere in the class.
    lock_attrs: list[str]
    #: Constant keys of the dict literal ``to_wire`` returns, if static.
    wire_keys: list[str] | None
    wire_keys_lineno: int
    #: Elements of a ``known = {...}`` set literal inside ``from_wire``.
    from_wire_known: list[str] | None
    from_wire_lineno: int

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name, "lineno": self.lineno, "col": self.col,
            "bases": list(self.bases),
            "is_dataclass": self.is_dataclass,
            "fields": [f.to_json() for f in self.fields],
            "methods": list(self.methods),
            "properties": list(self.properties),
            "attr_types": dict(self.attr_types),
            "lock_attrs": list(self.lock_attrs),
            "wire_keys": self.wire_keys,
            "wire_keys_lineno": self.wire_keys_lineno,
            "from_wire_known": self.from_wire_known,
            "from_wire_lineno": self.from_wire_lineno,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "ClassInfo":
        return ClassInfo(
            name=str(data["name"]),
            lineno=int(data["lineno"]), col=int(data["col"]),
            bases=[str(b) for b in data["bases"]],
            is_dataclass=bool(data["is_dataclass"]),
            fields=[FieldInfo.from_json(f) for f in data["fields"]],
            methods=[str(m) for m in data["methods"]],
            properties=[str(p) for p in data["properties"]],
            attr_types={
                str(k): str(v) for k, v in data["attr_types"].items()
            },
            lock_attrs=[str(a) for a in data["lock_attrs"]],
            wire_keys=(
                None if data["wire_keys"] is None
                else [str(k) for k in data["wire_keys"]]
            ),
            wire_keys_lineno=int(data["wire_keys_lineno"]),
            from_wire_known=(
                None if data["from_wire_known"] is None
                else [str(k) for k in data["from_wire_known"]]
            ),
            from_wire_lineno=int(data["from_wire_lineno"]),
        )


@dataclass
class ModuleSummary:
    """Everything pass 2 knows about one source file."""

    path: str
    module: str
    package: tuple[str, ...] | None
    imports: dict[str, str]
    module_locks: list[str]
    functions: list[FunctionInfo]
    classes: list[ClassInfo]
    id_sites: list[IdLiteralSite]
    parse_failed: bool = False

    def in_packages(self, packages: Sequence[str]) -> bool:
        """Same dotted-prefix scoping as :meth:`Module.in_packages`."""
        if self.package is None:
            return False
        for entry in packages:
            prefix = tuple(entry.split("."))
            if self.package[: len(prefix)] == prefix:
                return True
        return False

    def to_json(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "package": list(self.package) if self.package is not None else None,
            "imports": dict(self.imports),
            "module_locks": list(self.module_locks),
            "functions": [f.to_json() for f in self.functions],
            "classes": [c.to_json() for c in self.classes],
            "id_sites": [s.to_json() for s in self.id_sites],
            "parse_failed": self.parse_failed,
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "ModuleSummary":
        if data.get("version") != SUMMARY_VERSION:
            raise ValueError(
                f"summary version {data.get('version')!r} != {SUMMARY_VERSION}"
            )
        return ModuleSummary(
            path=str(data["path"]),
            module=str(data["module"]),
            package=(
                None if data["package"] is None
                else tuple(str(p) for p in data["package"])
            ),
            imports={str(k): str(v) for k, v in data["imports"].items()},
            module_locks=[str(n) for n in data["module_locks"]],
            functions=[FunctionInfo.from_json(f) for f in data["functions"]],
            classes=[ClassInfo.from_json(c) for c in data["classes"]],
            id_sites=[IdLiteralSite.from_json(s) for s in data["id_sites"]],
            parse_failed=bool(data.get("parse_failed", False)),
        )


def module_dotted_name(path: str, package: tuple[str, ...] | None) -> str:
    """Dotted module name: ``repro.serve.router`` for repro files, a
    path-derived pseudo-name (``tests.serve.test_x``) otherwise."""
    if package is not None:
        parts: tuple[str, ...] = ("repro",) + package
    else:
        pure = PurePosixPath(path)
        parts = tuple(
            p for p in pure.with_suffix("").parts if p not in ("/", ".", "src")
        )
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>"


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def _param_names(args: ast.arguments) -> tuple[list[str], bool, bool]:
    names = [
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    return names, args.vararg is not None, args.kwarg is not None


def _annotation_text(mod: Module, node: ast.expr | None) -> str | None:
    """Annotation as a qualified dotted string where resolvable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    qualified = mod.qualified_name(node)
    if qualified is not None:
        return qualified
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_abstract(mod: Module, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in fn.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        qualified = mod.qualified_name(target)
        if qualified in ("abc.abstractmethod", "abstractmethod"):
            return True
    return False


def _is_property(mod: Module, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in fn.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        qualified = mod.qualified_name(target)
        if qualified in (
            "property", "functools.cached_property", "cached_property",
        ):
            return True
    return False


def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
    """Docstring / ``pass`` / ``...`` / ``raise`` only — an interface
    stub, not an implementation that drops its inputs."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


class _FunctionExtractor:
    """Collects calls (with held locks), acquisitions, and name facts
    from one function body without descending into nested defs."""

    def __init__(
        self,
        mod: Module,
        summary: "ModuleSummary",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef | None,
        lock_attrs: frozenset[str],
    ):
        self.mod = mod
        self.summary = summary
        self.fn = fn
        self.cls = cls
        self.lock_attrs = lock_attrs
        self.calls: list[CallInfo] = []
        self.acquires: list[AcquireInfo] = []
        self.var_annotations: dict[str, str] = {}
        self.generic_uses: list[str] = []
        self.stores: list[str] = []
        self.attr_loads: list[AttrLoad] = []
        self._bare_arg_nodes: set[int] = set()
        self._names: list[ast.Name] = []

    # -- lock tokens ---------------------------------------------------
    def _lock_token(self, node: ast.expr) -> str | None:
        """Canonical-ish token for a lock expression, or ``None``.

        ``self._lock`` → ``"self._lock"`` when the class declares the
        attribute as a lock; a plain/dotted name → ``"@<qualified>"``
        when it resolves to a module-level lock of *this* module or is a
        dotted import (cross-module globals are validated by LOCK002).
        """
        attr = _self_attr(node)
        if attr is not None:
            return f"self.{attr}" if attr in self.lock_attrs else None
        qualified = self.mod.qualified_name(node)
        if qualified is None:
            return None
        if "." not in qualified:
            if qualified in self.summary.module_locks:
                return f"@{self.summary.module}.{qualified}"
            return None
        return f"@{qualified}"

    # -- traversal -----------------------------------------------------
    def run(self) -> None:
        self._walk_block(self.fn.body, [])
        bare = self._bare_arg_nodes
        params = set(_param_names(self.fn.args)[0])
        if self.fn.args.vararg is not None:
            params.add(self.fn.args.vararg.arg)
        if self.fn.args.kwarg is not None:
            params.add(self.fn.args.kwarg.arg)
        self.generic_uses = sorted({
            name.id
            for name in self._names
            if isinstance(name.ctx, ast.Load)
            and name.id in params
            and id(name) not in bare
        })
        self.stores = sorted({
            name.id
            for name in self._names
            if isinstance(name.ctx, (ast.Store, ast.Del))
        })

    def _walk_block(self, stmts: Sequence[ast.stmt], held: list[str]) -> None:
        held = list(held)
        for stmt in stmts:
            token = self._acquire_release_stmt(stmt)
            if token is not None:
                verb, tok = token
                if verb == "acquire":
                    self.acquires.append(AcquireInfo(
                        token=tok, lineno=stmt.lineno, col=stmt.col_offset,
                        held=tuple(held),
                    ))
                    held.append(tok)
                elif tok in held:
                    held.remove(tok)
                continue
            self._walk_stmt(stmt, held)

    def _acquire_release_stmt(self, stmt: ast.stmt) -> tuple[str, str] | None:
        """``x.acquire()`` / ``x.release()`` statement on a known lock."""
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return None
        call = stmt.value
        if not isinstance(call.func, ast.Attribute):
            return None
        if call.func.attr not in ("acquire", "release"):
            return None
        token = self._lock_token(call.func.value)
        if token is None:
            return None
        return ("acquire" if call.func.attr == "acquire" else "release", token)

    def _closure_loads(self, node: ast.AST) -> None:
        """Record names a nested def/lambda/class reads from this scope.

        A nested execution context's calls and locks are its own
        business, but a closure *capture* of an enclosing parameter is a
        real use of that parameter (a factory closing over a seed, say),
        so its free-name loads count toward ``generic_uses``.  Names the
        nested scope binds itself (its params, its stores) are excluded.
        """
        bound: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                names, _, _ = _param_names(sub.args)
                bound.update(names)
                if sub.args.vararg is not None:
                    bound.add(sub.args.vararg.arg)
                if sub.args.kwarg is not None:
                    bound.add(sub.args.kwarg.arg)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                bound.add(sub.id)
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id not in bound
            ):
                self._names.append(sub)

    def _walk_stmt(self, stmt: ast.stmt, held: list[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._closure_loads(stmt)
            return  # separate execution context
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            tokens: list[str] = []
            for item in stmt.items:
                self._walk_expr(item.context_expr, held)
                token = self._lock_token(item.context_expr)
                if token is not None:
                    self.acquires.append(AcquireInfo(
                        token=token,
                        lineno=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                        held=tuple(held + tokens),
                    ))
                    tokens.append(token)
            self._walk_block(stmt.body, held + tokens)
            return
        if isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                text = _annotation_text(self.mod, stmt.annotation)
                if text is not None:
                    self.var_annotations[stmt.target.id] = text
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._walk_expr(expr, held)
            elif isinstance(expr, ast.stmt):
                self._walk_block([expr], held)
            elif isinstance(expr, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(expr):
                    if isinstance(sub, ast.stmt):
                        self._walk_block([sub], held)
                    elif isinstance(sub, ast.expr):
                        self._walk_expr(sub, held)

    def _walk_expr(self, expr: ast.expr, held: list[str]) -> None:
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                self._closure_loads(node)
                continue
            if isinstance(node, ast.Call):
                self._record_call(node, held)
            elif isinstance(node, ast.Name):
                self._names.append(node)
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                ):
                    self.attr_loads.append(AttrLoad(
                        base=node.value.id, attr=node.attr,
                        lineno=node.lineno, col=node.col_offset,
                    ))
            stack.extend(ast.iter_child_nodes(node))

    # -- call sites ----------------------------------------------------
    def _record_call(self, node: ast.Call, held: list[str]) -> None:
        scope, target, attr_root = self._resolve_callee(node.func)
        pos: list[str | None] = []
        star = False
        names_in_args: set[str] = set()
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star = True
                pos.append(None)
            elif isinstance(arg, ast.Name):
                pos.append(arg.id)
                self._bare_arg_nodes.add(id(arg))
                names_in_args.add(arg.id)
            else:
                pos.append(None)
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    names_in_args.add(sub.id)
        kws: list[tuple[str, str | None]] = []
        for kw in node.keywords:
            if kw.arg is None:
                star = True
                for sub in ast.walk(kw.value):
                    if isinstance(sub, ast.Name):
                        names_in_args.add(sub.id)
                continue
            if isinstance(kw.value, ast.Name):
                kws.append((kw.arg, kw.value.id))
                self._bare_arg_nodes.add(id(kw.value))
                names_in_args.add(kw.value.id)
            else:
                kws.append((kw.arg, None))
            for sub in ast.walk(kw.value):
                if isinstance(sub, ast.Name):
                    names_in_args.add(sub.id)
        self.calls.append(CallInfo(
            scope=scope, target=target, attr_root=attr_root,
            lineno=node.lineno, col=node.col_offset,
            pos=tuple(pos), kws=tuple(kws), star=star,
            names_in_args=tuple(sorted(names_in_args)),
            held=tuple(held),
        ))

    def _resolve_callee(self, func: ast.expr) -> tuple[str, str, str]:
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                return ("self", func.attr, "")
            inner = _self_attr(value)
            if inner is not None:
                return ("selfattr", func.attr, inner)
        qualified = self.mod.qualified_name(func)
        if qualified is not None:
            return ("name", qualified, "")
        return ("unknown", "", "")


def _class_lock_attrs(mod: Module, cls: ast.ClassDef) -> frozenset[str]:
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        if mod.qualified_name(node.value.func) not in LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                attrs.add(attr)
    return frozenset(attrs)


def _is_dataclass(mod: Module, cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        qualified = mod.qualified_name(target)
        if qualified in ("dataclasses.dataclass", "dataclass"):
            return True
    return False


def _dataclass_fields(mod: Module, cls: ast.ClassDef) -> list[FieldInfo]:
    fields: list[FieldInfo] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = _annotation_text(mod, stmt.annotation) or ""
        if annotation.startswith("ClassVar") or annotation.startswith(
            "typing.ClassVar"
        ):
            continue
        fields.append(FieldInfo(
            name=stmt.target.id,
            annotation=annotation,
            has_default=stmt.value is not None,
            lineno=stmt.lineno,
            col=stmt.col_offset,
        ))
    return fields


def _wire_dict_keys(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str] | None:
    """Constant keys of the dict literal a ``to_wire`` returns, if any."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or not isinstance(node.value, ast.Dict):
            continue
        keys: list[str] = []
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                return None  # dynamic keys: not statically checkable
        return keys
    return None


def _from_wire_known(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str] | None:
    """Elements of a ``known = {...}`` set-of-constants inside from_wire."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Set):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "known" for t in node.targets
        ):
            continue
        names: list[str] = []
        for elt in node.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append(elt.value)
            else:
                return None
        return names
    return None


def _extract_class(
    mod: Module, summary: ModuleSummary, cls: ast.ClassDef
) -> ClassInfo:
    lock_attrs = _class_lock_attrs(mod, cls)
    methods: list[str] = []
    properties: list[str] = []
    attr_types: dict[str, str] = {}
    wire_keys: list[str] | None = None
    wire_keys_lineno = cls.lineno
    from_wire_known: list[str] | None = None
    from_wire_lineno = cls.lineno
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _is_property(mod, stmt):
            properties.append(stmt.name)
        else:
            methods.append(stmt.name)
        if stmt.name == "to_wire":
            wire_keys = _wire_dict_keys(stmt)
            wire_keys_lineno = stmt.lineno
        elif stmt.name == "from_wire":
            from_wire_known = _from_wire_known(stmt)
            from_wire_lineno = stmt.lineno
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = mod.qualified_name(node.value.func)
            if ctor is None:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and attr not in attr_types:
                    attr_types[attr] = ctor
    bases = [
        b for b in (mod.qualified_name(base) for base in cls.bases)
        if b is not None
    ]
    return ClassInfo(
        name=cls.name, lineno=cls.lineno, col=cls.col_offset,
        bases=bases,
        is_dataclass=_is_dataclass(mod, cls),
        fields=_dataclass_fields(mod, cls) if _is_dataclass(mod, cls) else [],
        methods=methods, properties=properties,
        attr_types=attr_types,
        lock_attrs=sorted(lock_attrs),
        wire_keys=wire_keys, wire_keys_lineno=wire_keys_lineno,
        from_wire_known=from_wire_known, from_wire_lineno=from_wire_lineno,
    )


def _extract_function(
    mod: Module,
    summary: ModuleSummary,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: ast.ClassDef | None,
    lock_attrs: frozenset[str],
) -> FunctionInfo:
    params, has_vararg, has_kwarg = _param_names(fn.args)
    extractor = _FunctionExtractor(mod, summary, fn, cls, lock_attrs)
    extractor.run()
    param_annotations: dict[str, str] = {}
    for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
        text = _annotation_text(mod, arg.annotation)
        if text is not None:
            param_annotations[arg.arg] = text
    qual = fn.name if cls is None else f"{cls.name}.{fn.name}"
    return FunctionInfo(
        qual=qual, name=fn.name, lineno=fn.lineno, col=fn.col_offset,
        params=params, has_vararg=has_vararg, has_kwarg=has_kwarg,
        is_method=cls is not None,
        is_public=not fn.name.startswith("_") or fn.name == "__init__",
        is_abstract=_is_abstract(mod, fn),
        is_trivial=_is_trivial_body(fn.body),
        param_annotations=param_annotations,
        var_annotations=extractor.var_annotations,
        generic_uses=extractor.generic_uses,
        stores=extractor.stores,
        calls=extractor.calls,
        acquires=extractor.acquires,
        attr_loads=extractor.attr_loads,
    )


def _extract_id_sites(mod: Module) -> list[IdLiteralSite]:
    sites: list[IdLiteralSite] = []
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.JoinedStr):
            values = node.values
            for i, part in enumerate(values):
                if not isinstance(part, ast.FormattedValue):
                    continue
                if i == 0 or not isinstance(values[i - 1], ast.Constant):
                    continue
                prev = values[i - 1]
                assert isinstance(prev, ast.Constant)
                if not isinstance(prev.value, str):
                    continue
                match = _ID_PREFIX.search(prev.value)
                if match is None:
                    continue
                spec = ""
                if isinstance(part.format_spec, ast.JoinedStr):
                    spec_parts = part.format_spec.values
                    if len(spec_parts) == 1 and isinstance(
                        spec_parts[0], ast.Constant
                    ):
                        spec = str(spec_parts[0].value)
                sites.append(IdLiteralSite(
                    kind="build", prefix=match.group(1), spec=spec,
                    lineno=node.lineno, col=node.col_offset,
                ))
        elif isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("startswith", "removeprefix"):
                continue
            if len(node.args) != 1:
                continue
            arg = node.args[0]
            if not isinstance(arg, ast.Constant) or not isinstance(
                arg.value, str
            ):
                continue
            match = _ID_PARSE_CONST.match(arg.value)
            if match is None:
                continue
            sites.append(IdLiteralSite(
                kind="parse", prefix=match.group(1), spec="",
                lineno=node.lineno, col=node.col_offset,
            ))
    return sites


def summarize_module(mod: Module) -> ModuleSummary:
    """Reduce one parsed module to its :class:`ModuleSummary`."""
    package = mod.repro_package
    summary = ModuleSummary(
        path=mod.path,
        module=module_dotted_name(mod.path, package),
        package=package,
        imports=dict(mod.imports),
        module_locks=[],
        functions=[],
        classes=[],
        id_sites=[],
    )
    # module-level locks first: function extraction resolves against them
    for stmt in mod.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Call):
            continue
        if mod.qualified_name(stmt.value.func) not in LOCK_CONSTRUCTORS:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                summary.module_locks.append(target.id)
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions.append(
                _extract_function(mod, summary, stmt, None, frozenset())
            )
        elif isinstance(stmt, ast.ClassDef):
            info = _extract_class(mod, summary, stmt)
            summary.classes.append(info)
            lock_attrs = frozenset(info.lock_attrs)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summary.functions.append(
                        _extract_function(mod, summary, sub, stmt, lock_attrs)
                    )
    summary.id_sites = _extract_id_sites(mod)
    return summary


def parse_failure_summary(path: str, package: tuple[str, ...] | None) -> ModuleSummary:
    """Stub summary for a file that does not parse (PARSE000 carries the
    diagnostic; the project pass just skips the module's contents)."""
    return ModuleSummary(
        path=path,
        module=module_dotted_name(path, package),
        package=package,
        imports={},
        module_locks=[],
        functions=[],
        classes=[],
        id_sites=[],
        parse_failed=True,
    )


# ----------------------------------------------------------------------
# the whole-program index
# ----------------------------------------------------------------------
class ProjectIndex:
    """Pass 2's view of the program: every summary, cross-linked.

    Function keys are ``"<dotted module>::<qual>"``
    (``repro.serve.server::SchedulingService.submit``); class keys are
    dotted (``repro.serve.protocol.JobRequest``).
    """

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {
            s.path: s for s in summaries
        }
        self.by_module: dict[str, ModuleSummary] = {}
        self.functions: dict[str, tuple[ModuleSummary, FunctionInfo]] = {}
        self.classes: dict[str, tuple[ModuleSummary, ClassInfo]] = {}
        for summary in summaries:
            # first writer wins on pseudo-name collisions (non-repro files)
            self.by_module.setdefault(summary.module, summary)
            for fn in summary.functions:
                self.functions.setdefault(
                    f"{summary.module}::{fn.qual}", (summary, fn)
                )
            for cls in summary.classes:
                self.classes.setdefault(
                    f"{summary.module}.{cls.name}", (summary, cls)
                )

    def iter_summaries(self) -> Iterator[ModuleSummary]:
        for path in sorted(self.modules):
            yield self.modules[path]

    # ------------------------------------------------------------------
    def resolve_class(
        self, summary: ModuleSummary, name: str
    ) -> tuple[ModuleSummary, ClassInfo] | None:
        """A class reference as written in ``summary`` → its ClassInfo.

        ``name`` may be dotted-qualified (already import-resolved) or a
        module-local bare name.
        """
        if "." not in name:
            return self.classes.get(f"{summary.module}.{name}")
        found = self.classes.get(name)
        if found is not None:
            return found
        # `import repro.serve.protocol as protocol` style chains resolve
        # to module.Class already; re-exports (package __init__) do not —
        # try the tail against every module suffix match
        head, _, tail = name.rpartition(".")
        target = self.by_module.get(head)
        if target is not None:
            return self.classes.get(f"{target.module}.{tail}")
        return None

    def class_mro(
        self, summary: ModuleSummary, cls: ClassInfo
    ) -> list[tuple[ModuleSummary, ClassInfo]]:
        """The class plus every project-resolvable ancestor (approximate
        linearization, cycle-safe)."""
        out: list[tuple[ModuleSummary, ClassInfo]] = []
        seen: set[str] = set()
        work: list[tuple[ModuleSummary, ClassInfo]] = [(summary, cls)]
        while work:
            mod_summary, info = work.pop(0)
            key = f"{mod_summary.module}.{info.name}"
            if key in seen:
                continue
            seen.add(key)
            out.append((mod_summary, info))
            for base in info.bases:
                resolved = self.resolve_class(mod_summary, base)
                if resolved is not None:
                    work.append(resolved)
        return out

    def find_method(
        self, summary: ModuleSummary, cls: ClassInfo, method: str
    ) -> tuple[ModuleSummary, FunctionInfo] | None:
        """Locate ``method`` on ``cls`` or its resolvable ancestors."""
        for mod_summary, info in self.class_mro(summary, cls):
            found = self.functions.get(
                f"{mod_summary.module}::{info.name}.{method}"
            )
            if found is not None:
                return found
        return None
