"""Two-pass whole-program driver.

Pass 1 walks every file once: per-file rules run on the AST and the file
is reduced to a :class:`~repro.analysis.project.ModuleSummary`.  Both
results (plus the ``# repro: noqa`` table) are cached by content hash —
a warm run re-parses only files whose bytes changed.  Pass 2 assembles
the summaries into a :class:`~repro.analysis.project.ProjectIndex` and
runs every :class:`~repro.analysis.engine.ProjectRule`; project findings
are line-anchored at a witness site, so the same per-line suppressions
apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.cache import AnalysisCache, CacheEntry, content_digest
from repro.analysis.engine import (
    PARSE_RULE_ID,
    Finding,
    ProjectRule,
    Rule,
    decode_source,
    iter_python_files,
    parse_module,
    repro_package_of,
    run_file_rules,
)
from repro.analysis.project import (
    ModuleSummary,
    ProjectIndex,
    parse_failure_summary,
    summarize_module,
)
from repro.analysis.suppress import line_suppressions

__all__ = ["ProjectRunResult", "analyze_project_paths", "analyze_project_source"]


@dataclass
class ProjectRunResult:
    """Findings plus the scan statistics the CLI/CI report."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Files actually read + parsed this run (cache misses).
    files_parsed: int = 0
    #: Files served from the content-hash cache.
    files_cached: int = 0


def _apply_project_suppressions(
    findings: list[Finding],
    suppressions: Mapping[str, Mapping[int, frozenset[str]]],
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        rules_on_line = suppressions.get(finding.path, {}).get(finding.line)
        if rules_on_line is not None and (
            not rules_on_line or finding.rule in rules_on_line
        ):
            continue
        kept.append(finding)
    return kept


def run_project_rules(
    index: ProjectIndex,
    project_rules: Sequence[ProjectRule],
    suppressions: Mapping[str, Mapping[int, frozenset[str]]],
) -> list[Finding]:
    """Pass 2: every project rule over the assembled index."""
    findings: set[Finding] = set()
    for rule in project_rules:
        findings.update(rule.check_project(index))
    return _apply_project_suppressions(sorted(findings), suppressions)


def analyze_project_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    project_rules: Sequence[ProjectRule],
    *,
    cache: AnalysisCache | None = None,
    exclude: Sequence[str] = (),
) -> ProjectRunResult:
    """Run both passes over files/trees on disk."""
    result = ProjectRunResult()
    summaries: list[ModuleSummary] = []
    suppressions: dict[str, dict[int, frozenset[str]]] = {}

    for file in iter_python_files(paths, exclude=exclude):
        result.files_scanned += 1
        path = file.as_posix()
        try:
            data = file.read_bytes()
        except OSError as exc:
            result.files_parsed += 1
            result.findings.append(Finding(
                path=path, line=1, col=0, rule=PARSE_RULE_ID,
                message=f"file cannot be read: {exc}",
            ))
            summaries.append(
                parse_failure_summary(path, repro_package_of(path))
            )
            continue

        digest = content_digest(data)
        if cache is not None:
            entry = cache.load(path, digest)
            if entry is not None:
                result.files_cached += 1
                result.findings.extend(entry.findings)
                summaries.append(entry.summary)
                suppressions[path] = dict(entry.suppressions)
                continue

        result.files_parsed += 1
        source = decode_source(data)
        mod, parse_failure = parse_module(path, source)
        if mod is None:
            assert parse_failure is not None
            file_findings = [parse_failure]
            summary = parse_failure_summary(path, repro_package_of(path))
            file_suppressions: dict[int, frozenset[str]] = {}
        else:
            file_suppressions = line_suppressions(mod.lines)
            file_findings = run_file_rules(mod, rules, file_suppressions)
            summary = summarize_module(mod)
        result.findings.extend(file_findings)
        summaries.append(summary)
        suppressions[path] = file_suppressions
        if cache is not None:
            cache.store(path, CacheEntry(
                digest=digest,
                findings=file_findings,
                summary=summary,
                suppressions=file_suppressions,
            ))

    index = ProjectIndex(summaries)
    result.findings.extend(run_project_rules(index, project_rules, suppressions))
    result.findings = sorted(set(result.findings))
    return result


def analyze_project_source(
    files: Mapping[str, str],
    project_rules: Sequence[ProjectRule],
) -> list[Finding]:
    """Test helper: pass 2 over in-memory sources at virtual paths.

    Per-file rules are skipped (covered by :func:`analyze_source`); the
    per-line suppressions still apply to the project findings.
    """
    summaries: list[ModuleSummary] = []
    suppressions: dict[str, dict[int, frozenset[str]]] = {}
    for path in sorted(files):
        source = files[path]
        mod, _ = parse_module(path, source)
        if mod is None:
            summaries.append(
                parse_failure_summary(path, repro_package_of(path))
            )
            continue
        summaries.append(summarize_module(mod))
        suppressions[mod.path] = line_suppressions(mod.lines)
    index = ProjectIndex(summaries)
    return run_project_rules(index, project_rules, suppressions)
