"""Static determinism & concurrency sanitizer (``python -m repro.analysis``).

An AST-walking lint engine that enforces the repo's replay invariants —
the properties the golden-fixture and chaos tests check dynamically —
as static checks that run in CI and pre-commit:

========  =============================================================
DET001    no wall-clock reads in sim/, core/, runtime/, exp/
DET002    no ambient/unseeded RNG in deterministic + serving packages
DET003    no float ``==``/``!=`` on simulated clocks and deadlines
ASY001    no blocking calls inside ``async def`` in serve/
LOCK001   lock-guarded attributes are never written without the lock
WIRE001   serve/protocol.py dataclass fields stay JSON-wire-safe
EXC001    no bare ``except:``, no swallowed ``CancelledError``
SEED001   public entry points that draw randomness accept a seed/rng
========  =============================================================

``--project`` adds the two-pass whole-program analyzer: pass 1 reduces
each file to a :class:`~repro.analysis.project.ModuleSummary` (cached by
content hash under ``.repro-analysis-cache/``), pass 2 assembles the
:class:`~repro.analysis.project.ProjectIndex` + call graph and runs the
interprocedural rules:

========  =============================================================
LOCK002   no lock-order cycles across modules (lockdep-style)
SEED002   an accepted seed/rng parameter must reach an RNG on some path
WIRE002   protocol dataclasses and all their users agree on the schema
========  =============================================================

See DESIGN.md §6 for the full catalog, rationale and suppression policy
(per-line ``# repro: noqa RULE -- justification``; grandfathered findings
live in ``analysis-baseline.json``).
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    Module,
    ProjectRule,
    Rule,
    analyze_paths,
    analyze_source,
)
from repro.analysis.project import ModuleSummary, ProjectIndex, summarize_module
from repro.analysis.rules import (
    ALL_RULES,
    PROJECT_RULES,
    rules_by_id,
    select_rules,
)
from repro.analysis.run import analyze_project_paths, analyze_project_source

__all__ = [
    "Finding",
    "Module",
    "ModuleSummary",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "ALL_RULES",
    "PROJECT_RULES",
    "analyze_paths",
    "analyze_project_paths",
    "analyze_project_source",
    "analyze_source",
    "rules_by_id",
    "select_rules",
    "summarize_module",
]
