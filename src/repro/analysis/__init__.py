"""Static determinism & concurrency sanitizer (``python -m repro.analysis``).

An AST-walking lint engine that enforces the repo's replay invariants —
the properties the golden-fixture and chaos tests check dynamically —
as static checks that run in CI and pre-commit:

========  =============================================================
DET001    no wall-clock reads in sim/, core/, runtime/, exp/
DET002    no ambient/unseeded RNG in deterministic + serving packages
DET003    no float ``==``/``!=`` on simulated clocks and deadlines
ASY001    no blocking calls inside ``async def`` in serve/
LOCK001   lock-guarded attributes are never written without the lock
WIRE001   serve/protocol.py dataclass fields stay JSON-wire-safe
EXC001    no bare ``except:``, no swallowed ``CancelledError``
SEED001   public entry points that draw randomness accept a seed/rng
========  =============================================================

See DESIGN.md §6 for the full catalog, rationale and suppression policy
(per-line ``# repro: noqa RULE -- justification``; grandfathered findings
live in ``analysis-baseline.json``).
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    Module,
    Rule,
    analyze_paths,
    analyze_source,
)
from repro.analysis.rules import ALL_RULES, rules_by_id, select_rules

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "ALL_RULES",
    "analyze_paths",
    "analyze_source",
    "rules_by_id",
    "select_rules",
]
