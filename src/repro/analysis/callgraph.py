"""Approximate whole-program call graph over :class:`ProjectIndex`.

Resolves the three call shapes the interprocedural rules care about:

* ``module.func(...)`` / ``from m import func; func(...)`` — dotted
  targets through the import table, including ``Class(...)``
  constructors (→ ``__init__``) and unbound ``Class.method(...)``;
* ``self.method(...)`` — dispatch through the enclosing class and its
  project-resolvable bases;
* ``self.attr.method(...)`` — through the attribute types inferred from
  ``self.attr = ClassName(...)`` assignments.

Anything else (calls on local variables, higher-order calls, dynamic
dispatch) resolves to ``None`` and the rules treat it conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.project import (
    CallInfo,
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
)

__all__ = ["CallGraph", "Resolution"]


@dataclass(frozen=True)
class Resolution:
    """A resolved call edge.

    ``bound`` — the callee's first parameter (``self``) is supplied by
    the binding, so the caller's positional arguments start at parameter
    index 1.
    """

    key: str
    bound: bool


class CallGraph:
    """Call-site resolution with memoized lookups."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._memo: dict[tuple[str, int, int], Resolution | None] = {}

    # ------------------------------------------------------------------
    def resolve_call(
        self, summary: ModuleSummary, fn: FunctionInfo, call: CallInfo
    ) -> Resolution | None:
        """The function key a call site dispatches to, or ``None``."""
        memo_key = (f"{summary.module}::{fn.qual}", call.lineno, call.col)
        if memo_key in self._memo:
            return self._memo[memo_key]
        resolved = self._resolve_uncached(summary, fn, call)
        self._memo[memo_key] = resolved
        return resolved

    def callee(self, key: str) -> tuple[ModuleSummary, FunctionInfo] | None:
        return self.index.functions.get(key)

    def describe(self, key: str) -> str:
        """Human-readable ``path:line`` label for a function key."""
        found = self.index.functions.get(key)
        if found is None:
            return key
        summary, fn = found
        return f"{fn.qual} ({summary.path}:{fn.lineno})"

    # ------------------------------------------------------------------
    def _resolve_uncached(
        self, summary: ModuleSummary, fn: FunctionInfo, call: CallInfo
    ) -> Resolution | None:
        if call.scope == "self":
            return self._resolve_self(summary, fn, call.target)
        if call.scope == "selfattr":
            return self._resolve_selfattr(summary, fn, call)
        if call.scope == "name":
            return self._resolve_name(summary, call.target)
        return None

    def _resolve_self(
        self, summary: ModuleSummary, fn: FunctionInfo, method: str
    ) -> Resolution | None:
        cls_name = fn.cls
        if cls_name is None:
            return None
        found_cls = self.index.classes.get(f"{summary.module}.{cls_name}")
        if found_cls is None:
            return None
        resolved = self.index.find_method(found_cls[0], found_cls[1], method)
        if resolved is None:
            return None
        mod_summary, target = resolved
        return Resolution(key=f"{mod_summary.module}::{target.qual}", bound=True)

    def _resolve_selfattr(
        self, summary: ModuleSummary, fn: FunctionInfo, call: CallInfo
    ) -> Resolution | None:
        cls_name = fn.cls
        if cls_name is None:
            return None
        found_cls = self.index.classes.get(f"{summary.module}.{cls_name}")
        if found_cls is None:
            return None
        # the attribute's type may be assigned in any method of the class
        # or its bases
        for mod_summary, info in self.index.class_mro(*found_cls):
            ctor = info.attr_types.get(call.attr_root)
            if ctor is None:
                continue
            target_cls = self.index.resolve_class(mod_summary, ctor)
            if target_cls is None:
                return None
            resolved = self.index.find_method(
                target_cls[0], target_cls[1], call.target
            )
            if resolved is None:
                return None
            target_summary, target = resolved
            return Resolution(
                key=f"{target_summary.module}::{target.qual}", bound=True
            )
        return None

    def _resolve_name(
        self, summary: ModuleSummary, target: str
    ) -> Resolution | None:
        parts = target.split(".")
        if len(parts) == 1:
            # module-local function or class
            direct = self.index.functions.get(f"{summary.module}::{target}")
            if direct is not None:
                return Resolution(
                    key=f"{summary.module}::{target}", bound=False
                )
            return self._constructor(summary, target)
        # `ClassName.method(...)` with a module-local class
        if len(parts) == 2:
            local_cls = self.index.classes.get(f"{summary.module}.{parts[0]}")
            if local_cls is not None:
                resolved = self.index.find_method(
                    local_cls[0], local_cls[1], parts[1]
                )
                if resolved is None:
                    return None
                mod_summary, fn = resolved
                return Resolution(
                    key=f"{mod_summary.module}::{fn.qual}", bound=False
                )
        # dotted: try every module/tail split, longest module first
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            tail = parts[split:]
            target_summary = self.index.by_module.get(module)
            if target_summary is None:
                continue
            if len(tail) == 1:
                key = f"{module}::{tail[0]}"
                if key in self.index.functions:
                    return Resolution(key=key, bound=False)
                return self._constructor(target_summary, tail[0])
            if len(tail) == 2:
                found_cls = self.index.classes.get(f"{module}.{tail[0]}")
                if found_cls is None:
                    return None
                resolved = self.index.find_method(
                    found_cls[0], found_cls[1], tail[1]
                )
                if resolved is None:
                    return None
                mod_summary, fn = resolved
                # unbound `Class.method(obj, ...)`: caller passes self
                return Resolution(
                    key=f"{mod_summary.module}::{fn.qual}", bound=False
                )
            return None
        return None

    def _constructor(
        self, summary: ModuleSummary, cls_name: str
    ) -> Resolution | None:
        found_cls = self.index.classes.get(f"{summary.module}.{cls_name}")
        if found_cls is None:
            return None
        resolved = self.index.find_method(found_cls[0], found_cls[1], "__init__")
        if resolved is None:
            return None
        mod_summary, fn = resolved
        return Resolution(key=f"{mod_summary.module}::{fn.qual}", bound=True)

    # ------------------------------------------------------------------
    @staticmethod
    def map_forwarded_args(
        call: CallInfo, callee: FunctionInfo, bound: bool
    ) -> list[tuple[str, str]]:
        """``(callee parameter, caller bare name)`` pairs for every
        argument forwarded as a plain name.

        Positional arguments that run past the callee's named parameters
        (swallowed by ``*args``) and ``**kwargs``-absorbed keywords are
        omitted — the taint rule treats those as opaque uses.
        """
        pairs: list[tuple[str, str]] = []
        offset = 1 if bound and callee.is_method else 0
        for i, name in enumerate(call.pos):
            if name is None:
                continue
            idx = i + offset
            if idx < len(callee.params):
                pairs.append((callee.params[idx], name))
        param_set = set(callee.params)
        for kw, name in call.kws:
            if name is None:
                continue
            if kw in param_set:
                pairs.append((kw, name))
        return pairs
