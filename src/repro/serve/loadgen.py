"""Load generator: ``python -m repro.serve.loadgen [options]``.

Drives open- or closed-loop job traffic against a running scheduling
service and reports client-side latency plus the server's own metrics
snapshot.

* **closed loop** (default): ``--clients N`` concurrent tenants, each
  submitting its next job as soon as the previous one finishes, for
  ``--jobs-per-client`` jobs — the classic saturation benchmark;
* **open loop**: jobs arrive at ``--rate`` jobs/second regardless of
  completions (exponential inter-arrivals from a seeded RNG), measuring
  behaviour under overload where typed ``queue_full`` rejections are part
  of the expected outcome.

``--self-host`` starts a service in-process on an ephemeral port first,
so a one-line demo needs no separate server::

    python -m repro.serve.loadgen --self-host --machine small \
        --clients 3 --jobs-per-client 4 --nodes 2 --seeds 1 --timesteps 5
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.serve.client import ServiceClient
from repro.serve.metrics import percentile
from repro.serve.protocol import AdmissionRejected, JobRequest
from repro.workloads.registry import PAPER_ORDER

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Open/closed-loop traffic generator for the scheduling service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument(
        "--self-host",
        action="store_true",
        help="start an in-process service on an ephemeral port and drive that",
    )
    parser.add_argument("--machine", default="small",
                        help="machine preset for --self-host (default: small)")
    parser.add_argument("--queue-capacity", type=int, default=16,
                        help="admission queue size for --self-host")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--clients", type=int, default=3, help="concurrent tenants")
    parser.add_argument("--jobs-per-client", type=int, default=4)
    parser.add_argument("--rate", type=float, default=4.0,
                        help="open-loop arrival rate, jobs/second")
    parser.add_argument("--benchmark", default="matmul", choices=PAPER_ORDER)
    parser.add_argument("--scheduler", default="ilan")
    parser.add_argument("--nodes", type=int, default=1,
                        help="NUMA nodes each job leases")
    parser.add_argument("--seeds", type=int, default=1, help="repetitions per job")
    parser.add_argument("--timesteps", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0, help="arrival-process RNG seed")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    return parser


def _request(args: argparse.Namespace, tenant: str) -> JobRequest:
    return JobRequest(
        benchmark=args.benchmark,
        scheduler=args.scheduler,
        seeds=args.seeds,
        timesteps=args.timesteps,
        nodes=args.nodes,
        tenant=tenant,
    )


async def _closed_client(
    args: argparse.Namespace, host: str, port: int, tenant: str, out: dict
) -> None:
    """One tenant: submit, wait for completion, repeat."""
    async with await ServiceClient.connect(host, port) as client:
        for _ in range(args.jobs_per_client):
            t0 = time.monotonic()
            try:
                job_id = await client.submit(_request(args, tenant))
            except AdmissionRejected as exc:
                out["rejected"].append(exc.code)
                continue
            job = await client.wait(job_id)
            out["latencies"].append(time.monotonic() - t0)
            out["states"].append(job["state"])


async def _open_loop(args: argparse.Namespace, host: str, port: int, out: dict) -> None:
    """Poisson arrivals at --rate; completions tracked in the background."""
    rng = np.random.default_rng(args.seed)
    total = args.clients * args.jobs_per_client
    waiters: list[asyncio.Task] = []

    async def _track(job_id: str, t0: float) -> None:
        async with await ServiceClient.connect(host, port) as poller:
            job = await poller.wait(job_id)
            out["latencies"].append(time.monotonic() - t0)
            out["states"].append(job["state"])

    async with await ServiceClient.connect(host, port) as submitter:
        for i in range(total):
            tenant = f"tenant-{i % args.clients}"
            try:
                t0 = time.monotonic()
                job_id = await submitter.submit(_request(args, tenant))
                waiters.append(asyncio.create_task(_track(job_id, t0)))
            except AdmissionRejected as exc:
                out["rejected"].append(exc.code)
            await asyncio.sleep(float(rng.exponential(1.0 / args.rate)))
    if waiters:
        await asyncio.gather(*waiters)


async def _run(args: argparse.Namespace) -> dict:
    service = None
    host, port = args.host, args.port
    if args.self_host:
        from repro.exp.cliopts import config_from_args, resolve_machine
        from repro.exp.runner import ExperimentConfig
        from repro.serve.server import SchedulingService

        service = SchedulingService(
            resolve_machine(args.machine),
            config=ExperimentConfig.from_env(),
            queue_capacity=args.queue_capacity,
        )
        host, port = await service.start(args.host, 0)

    out: dict = {"latencies": [], "states": [], "rejected": []}
    t0 = time.monotonic()
    if args.mode == "closed":
        await asyncio.gather(
            *(
                _closed_client(args, host, port, f"tenant-{i}", out)
                for i in range(args.clients)
            )
        )
    else:
        await _open_loop(args, host, port, out)
    wall = time.monotonic() - t0

    async with await ServiceClient.connect(host, port) as client:
        server_metrics = await client.metrics()
    if service is not None:
        await service.drain()

    lat = out["latencies"]
    summary = {
        "mode": args.mode,
        "clients": args.clients,
        "wall_s": wall,
        "finished": len(lat),
        "completed": sum(1 for s in out["states"] if s == "completed"),
        "failed": sum(1 for s in out["states"] if s == "failed"),
        "rejected": len(out["rejected"]),
        "throughput_jps": len(lat) / wall if wall > 0 else 0.0,
        "latency_s": {
            "p50": percentile(lat, 50) if lat else None,
            "p95": percentile(lat, 95) if lat else None,
        },
        "server": server_metrics,
    }
    return summary


def _print_text(summary: dict) -> None:
    lat = summary["latency_s"]
    print(
        f"{summary['mode']}-loop, {summary['clients']} client(s): "
        f"{summary['completed']} completed, {summary['failed']} failed, "
        f"{summary['rejected']} rejected in {summary['wall_s']:.2f}s "
        f"({summary['throughput_jps']:.2f} jobs/s)"
    )
    if lat["p50"] is not None:
        print(f"client latency: p50 {lat['p50']*1e3:.1f} ms, p95 {lat['p95']*1e3:.1f} ms")
    nodes = summary["server"]["nodes"]
    print(f"server lease map at end: {nodes['leases']}")
    jobs = summary["server"]["jobs"]
    print(
        f"server totals: {jobs['submitted']} submitted, {jobs['completed']} "
        f"completed, {jobs['rejected_total']} rejected, "
        f"throughput {jobs['throughput_jps']:.2f} jobs/s"
    )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    summary = asyncio.run(_run(args))
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        _print_text(summary)
    return 0 if summary["failed"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
