"""Load generator: ``python -m repro.serve.loadgen [options]``.

Drives open- or closed-loop job traffic against a running scheduling
service and reports client-side latency plus the server's own metrics
snapshot.

* **closed loop** (default): ``--clients N`` concurrent tenants, each
  submitting its next job as soon as the previous one finishes, for
  ``--jobs-per-client`` jobs — the classic saturation benchmark;
* **open loop**: jobs arrive at ``--rate`` jobs/second regardless of
  completions (exponential inter-arrivals from a seeded RNG), measuring
  behaviour under overload where typed ``queue_full`` rejections are part
  of the expected outcome.

``--self-host`` starts a service in-process on an ephemeral port first,
so a one-line demo needs no separate server::

    python -m repro.serve.loadgen --self-host --machine small \
        --clients 3 --jobs-per-client 4 --nodes 2 --seeds 1 --timesteps 5

Chaos mode: ``--fault-spec`` injects a seeded, deterministic
:class:`~repro.serve.faults.FaultPlan` — worker crashes, transient runner
errors and deadline hangs inside the (necessarily ``--self-host``)
service, client disconnects driven from this side of the wire::

    python -m repro.serve.loadgen --self-host --machine small \
        --clients 3 --jobs-per-client 4 --timesteps 3 \
        --fault-spec "crash=0.2,transient=0.2,deadline=0.1,disconnect=0.2" \
        --fault-seed 7 --deadline-s 30 --retry-submit 4

Under a fault plan, failed jobs are an expected outcome; the exit code
instead asserts the recovery invariants — conservation of every submitted
job and zero leaked leases after drain.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time

from repro.serve.client import ServiceClient
from repro.serve.faults import FaultKind, FaultPlan
from repro.serve.metrics import percentile
from repro.serve.protocol import AdmissionRejected, JobRequest
from repro.sim.rng import pyrandom, stream
from repro.workloads.registry import PAPER_ORDER

__all__ = ["main", "run_summary"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Open/closed-loop traffic generator for the scheduling service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="endpoint to drive; repeat to spread clients round-robin over "
        "several servers (or federation routers); overrides --host/--port",
    )
    parser.add_argument(
        "--self-host",
        action="store_true",
        help="start an in-process service on an ephemeral port and drive that",
    )
    parser.add_argument("--machine", default="small",
                        help="machine preset for --self-host (default: small)")
    parser.add_argument("--queue-capacity", type=int, default=16,
                        help="admission queue size for --self-host")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--clients", type=int, default=3, help="concurrent tenants")
    parser.add_argument("--jobs-per-client", type=int, default=4)
    parser.add_argument("--rate", type=float, default=4.0,
                        help="open-loop arrival rate, jobs/second")
    parser.add_argument("--benchmark", default="matmul", choices=PAPER_ORDER)
    parser.add_argument("--scheduler", default="ilan")
    parser.add_argument("--nodes", type=int, default=1,
                        help="NUMA nodes each job leases")
    parser.add_argument("--seeds", type=int, default=1, help="repetitions per job")
    parser.add_argument("--timesteps", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0, help="arrival-process RNG seed")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    chaos = parser.add_argument_group("chaos (fault injection & recovery)")
    chaos.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help='seeded fault plan, e.g. "crash=0.2,transient=0.3,deadline=0.1,'
             'disconnect=0.2"; server-side kinds need --self-host',
    )
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="fault plan RNG seed (default 0)")
    chaos.add_argument("--fault-attempts", type=int, default=1,
                       help="how many initial attempts of a faulted job the "
                            "fault hits (default 1)")
    chaos.add_argument("--deadline-s", type=float, default=None,
                       help="per-job running-time deadline; required for "
                            "deadline faults to fire")
    chaos.add_argument("--max-attempts", type=int, default=3,
                       help="service attempt budget per job for --self-host")
    chaos.add_argument("--retry-submit", type=int, default=0, metavar="N",
                       help="client-side submit retries (exponential backoff "
                            "+ full jitter) on queue_full/connection errors")
    return parser


def _parse_endpoints(args: argparse.Namespace) -> list[tuple[str, int]]:
    """The endpoints to drive: ``--connect`` list or the single host/port."""
    if not args.connect:
        return [(args.host, args.port)]
    if args.self_host:
        raise SystemExit(
            "--connect and --self-host are mutually exclusive: --connect "
            "drives already-running servers, --self-host starts its own"
        )
    endpoints: list[tuple[str, int]] = []
    for spec in args.connect:
        host, sep, port_text = spec.rpartition(":")
        if not sep or not host:
            raise SystemExit(f"--connect wants HOST:PORT, got {spec!r}")
        try:
            endpoints.append((host, int(port_text)))
        except ValueError:
            raise SystemExit(
                f"--connect port must be an integer, got {port_text!r}"
            ) from None
    return endpoints


def _request(args: argparse.Namespace, tenant: str) -> JobRequest:
    return JobRequest(
        benchmark=args.benchmark,
        scheduler=args.scheduler,
        seeds=args.seeds,
        timesteps=args.timesteps,
        nodes=args.nodes,
        tenant=tenant,
        deadline_s=args.deadline_s,
    )


async def _submit(
    client: ServiceClient, args: argparse.Namespace, tenant: str, rng: random.Random
) -> str:
    if args.retry_submit > 0:
        return await client.submit_with_retry(
            _request(args, tenant), max_retries=args.retry_submit, rng=rng
        )
    return await client.submit(_request(args, tenant))


async def _await_job(
    client: ServiceClient, job_id: str, plan: FaultPlan | None, out: dict
) -> dict:
    """Wait for the job, injecting a mid-wait client disconnect if planned."""
    if plan is not None and plan.should_inject(job_id, FaultKind.CLIENT_DISCONNECT, 0):
        plan.record_injection(FaultKind.CLIENT_DISCONNECT)
        await asyncio.sleep(0.01)  # be genuinely mid-wait when we drop
        await client.reconnect()
        out["disconnects"] += 1
    return await client.wait(job_id)


def _record(out: dict, endpoint: str, latency: float, state: str) -> None:
    out["latencies"].append(latency)
    out["states"].append(state)
    per = out["by_endpoint"][endpoint]
    per["latencies"].append(latency)
    per["states"].append(state)


async def _closed_client(
    args: argparse.Namespace, host: str, port: int, tenant: str, out: dict,
    plan: FaultPlan | None,
) -> None:
    """One tenant: submit, wait for completion, repeat."""
    rng = pyrandom(args.seed, "serve.loadgen.retry", tenant)
    endpoint = f"{host}:{port}"
    async with await ServiceClient.connect(host, port) as client:
        for _ in range(args.jobs_per_client):
            t0 = time.monotonic()
            try:
                job_id = await _submit(client, args, tenant, rng)
            except AdmissionRejected as exc:
                out["rejected"].append(exc.code)
                continue
            job = await _await_job(client, job_id, plan, out)
            _record(out, endpoint, time.monotonic() - t0, job["state"])


async def _open_loop(
    args: argparse.Namespace, endpoints: list[tuple[str, int]], out: dict,
    plan: FaultPlan | None,
) -> None:
    """Poisson arrivals at --rate, round-robin across the endpoints."""
    rng = stream(args.seed, "serve.loadgen", "arrivals")
    retry_rng = pyrandom(args.seed, "serve.loadgen.retry", "open")
    total = args.clients * args.jobs_per_client
    waiters: list[asyncio.Task] = []

    async def _track(host: str, port: int, job_id: str, t0: float) -> None:
        async with await ServiceClient.connect(host, port) as poller:
            job = await _await_job(poller, job_id, plan, out)
            _record(out, f"{host}:{port}", time.monotonic() - t0, job["state"])

    submitters = [
        await ServiceClient.connect(host, port) for host, port in endpoints
    ]
    try:
        for i in range(total):
            tenant = f"tenant-{i % args.clients}"
            host, port = endpoints[i % len(endpoints)]
            try:
                t0 = time.monotonic()
                job_id = await _submit(
                    submitters[i % len(endpoints)], args, tenant, retry_rng
                )
                waiters.append(
                    asyncio.create_task(_track(host, port, job_id, t0))
                )
            except AdmissionRejected as exc:
                out["rejected"].append(exc.code)
            await asyncio.sleep(float(rng.exponential(1.0 / args.rate)))
    finally:
        for submitter in submitters:
            await submitter.close()
    if waiters:
        await asyncio.gather(*waiters)


def _build_plan(args: argparse.Namespace) -> FaultPlan | None:
    if args.fault_spec is None:
        return None
    plan = FaultPlan.from_spec(
        args.fault_spec, seed=args.fault_seed, fault_attempts=args.fault_attempts
    )
    server_kinds = set(plan.probabilities) - {FaultKind.CLIENT_DISCONNECT}
    if server_kinds and not args.self_host:
        raise SystemExit(
            "--fault-spec with server-side kinds "
            f"({', '.join(sorted(k.value for k in server_kinds))}) requires "
            "--self-host: faults inject into the in-process service"
        )
    return plan


async def _run(args: argparse.Namespace) -> dict:
    plan = _build_plan(args)
    service = None
    endpoints = _parse_endpoints(args)
    if args.self_host:
        from repro.exp.cliopts import resolve_machine
        from repro.exp.runner import ExperimentConfig
        from repro.serve.server import SchedulingService

        service = SchedulingService(
            resolve_machine(args.machine),
            config=ExperimentConfig.from_env(),
            queue_capacity=args.queue_capacity,
            fault_plan=plan,
            max_attempts=args.max_attempts,
            default_deadline_s=args.deadline_s,
        )
        endpoints = [await service.start(args.host, 0)]

    labels = [f"{host}:{port}" for host, port in endpoints]
    out: dict = {
        "latencies": [],
        "states": [],
        "rejected": [],
        "disconnects": 0,
        "by_endpoint": {label: {"latencies": [], "states": []} for label in labels},
    }
    t0 = time.monotonic()
    if args.mode == "closed":
        # clients round-robin over the endpoints, tenant i -> endpoint i % N
        await asyncio.gather(
            *(
                _closed_client(
                    args, *endpoints[i % len(endpoints)], f"tenant-{i}", out, plan
                )
                for i in range(args.clients)
            )
        )
    else:
        await _open_loop(args, endpoints, out, plan)
    wall = time.monotonic() - t0

    servers: list[dict] = []
    for host, port in endpoints:
        async with await ServiceClient.connect(host, port) as client:
            servers.append(await client.metrics())
    if service is not None:
        servers = [await service.drain()]

    lat = out["latencies"]
    summary = {
        "mode": args.mode,
        "clients": args.clients,
        "wall_s": wall,
        "finished": len(lat),
        "completed": sum(1 for s in out["states"] if s == "completed"),
        "failed": sum(1 for s in out["states"] if s == "failed"),
        "rejected": len(out["rejected"]),
        "throughput_jps": len(lat) / wall if wall > 0 else 0.0,
        "latency_s": {
            "p50": percentile(lat, 50) if lat else None,
            "p95": percentile(lat, 95) if lat else None,
            "p99": percentile(lat, 99) if lat else None,
        },
        "endpoints": [
            _endpoint_summary(label, out["by_endpoint"][label]) for label in labels
        ],
        # back-compat: `server` stays the (first) endpoint's own snapshot
        "server": servers[0],
        "servers": servers,
    }
    if plan is not None:
        summary["faults"] = {
            "spec": plan.to_spec(),
            "seed": plan.seed,
            "injected": dict(plan.injected),
            "client_disconnects": out["disconnects"],
        }
    return summary


def _endpoint_summary(label: str, per: dict) -> dict:
    lat = per["latencies"]
    return {
        "endpoint": label,
        "finished": len(lat),
        "completed": sum(1 for s in per["states"] if s == "completed"),
        "failed": sum(1 for s in per["states"] if s == "failed"),
        "latency_s": {
            "p50": percentile(lat, 50) if lat else None,
            "p99": percentile(lat, 99) if lat else None,
        },
    }


def _print_text(summary: dict) -> None:
    lat = summary["latency_s"]
    print(
        f"{summary['mode']}-loop, {summary['clients']} client(s): "
        f"{summary['completed']} completed, {summary['failed']} failed, "
        f"{summary['rejected']} rejected in {summary['wall_s']:.2f}s "
        f"({summary['throughput_jps']:.2f} jobs/s)"
    )
    if lat["p50"] is not None:
        print(
            f"client latency: p50 {lat['p50']*1e3:.1f} ms, "
            f"p95 {lat['p95']*1e3:.1f} ms, p99 {lat['p99']*1e3:.1f} ms"
        )
    if len(summary["endpoints"]) > 1:
        for ep in summary["endpoints"]:
            ep_lat = ep["latency_s"]
            p50 = f"{ep_lat['p50']*1e3:.1f} ms" if ep_lat["p50"] is not None else "-"
            p99 = f"{ep_lat['p99']*1e3:.1f} ms" if ep_lat["p99"] is not None else "-"
            print(
                f"  {ep['endpoint']}: {ep['completed']} completed, "
                f"{ep['failed']} failed, p50 {p50}, p99 {p99}"
            )
    if "faults" in summary:
        faults = summary["faults"]
        recovery = summary["server"].get("recovery", {})
        print(
            f"chaos [{faults['spec']} seed={faults['seed']}]: "
            f"injected {faults['injected']}, "
            f"{faults['client_disconnects']} client disconnect(s)"
        )
        print(
            f"recovery: {recovery.get('requeued', 0)} requeued, "
            f"{recovery.get('retried', 0)} retried, "
            f"{recovery.get('deadline_exceeded', 0)} deadline-exceeded, "
            f"{recovery.get('leases_reclaimed', 0)} lease(s) reclaimed"
        )
    for metrics in summary["servers"]:
        _print_server(metrics)


def _print_server(metrics: dict) -> None:
    if "router" in metrics:  # a federation router's aggregated snapshot
        router = metrics["router"]
        fleet = metrics["fleet"]
        print(
            f"federation totals: {router['submitted']} submitted, "
            f"{router['job_states']['completed']} completed, "
            f"{router['migrations']} migration(s), "
            f"{router['shard_deaths']} shard death(s), "
            f"{len(fleet['alive'])}/{fleet['shards']} shard(s) alive"
        )
        return
    nodes = metrics["nodes"]
    print(f"server lease map at end: {nodes['leases']}")
    jobs = metrics["jobs"]
    print(
        f"server totals: {jobs['submitted']} submitted, {jobs['completed']} "
        f"completed, {jobs['rejected_total']} rejected, "
        f"throughput {jobs['throughput_jps']:.2f} jobs/s"
    )


def _jobs_conserved(jobs: dict) -> bool:
    return jobs["submitted"] == (
        jobs["completed"]
        + jobs["failed"]
        + jobs["active"]
        + jobs["queued"]
        + jobs.get("evicted", 0)
    )


def _server_conserved(metrics: dict) -> bool:
    """Job conservation for either snapshot shape (single server / federation)."""
    if "router" in metrics:
        return all(
            _jobs_conserved(shard["jobs"]) for shard in metrics["shards"].values()
        )
    return _jobs_conserved(metrics["jobs"])


def _server_leaked(metrics: dict) -> bool:
    """Any node lease still owned after drain (either snapshot shape)."""
    if "router" in metrics:
        return any(
            shard["service"]["draining"]
            and any(owner is not None for owner in shard["nodes"]["leases"].values())
            for shard in metrics["shards"].values()
        )
    if not metrics["service"]["draining"]:
        return False  # snapshot predates the drain: leases may be live
    return any(owner is not None for owner in metrics["nodes"]["leases"].values())


def _exit_code(summary: dict) -> int:
    conserved = all(_server_conserved(metrics) for metrics in summary["servers"])
    if "faults" in summary:
        # under chaos, failures are expected; the recovery invariants are not
        leaked = any(_server_leaked(metrics) for metrics in summary["servers"])
        return 0 if conserved and not leaked else 1
    return 0 if summary["failed"] == 0 and conserved else 1


def run_summary(argv: list[str] | None = None) -> dict:
    """Run the load generator with CLI-style arguments; return its summary.

    The programmatic entry point (used by the benchmark harness): same
    flags as the CLI, no printing, no exit-code policy.
    """
    args = _build_parser().parse_args(argv)
    return asyncio.run(_run(args))


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    summary = asyncio.run(_run(args))
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        _print_text(summary)
    return _exit_code(summary)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
