"""Wire protocol of the multi-tenant scheduling service.

Newline-delimited JSON over a stream: every request and response is one
JSON object on one line.  Requests carry an ``op`` field (``submit``,
``status``, ``metrics``, ``drain``, ``ping``); responses carry ``ok`` plus
either the payload or a typed ``error`` object ``{"code", "message", ...}``
that client code can turn back into the matching exception.

The module also defines the job model shared by the in-process API and
the wire: :class:`JobRequest` (what a tenant asks for), :class:`JobState`
(the lifecycle) and :class:`JobRecord` (everything the service knows about
one submitted job).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from repro.errors import ServeError

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "AdmissionRejected",
    "LeaseError",
    "JobState",
    "JobRequest",
    "JobRecord",
    "encode_message",
    "decode_message",
    "read_message",
    "write_message",
    "ok_response",
    "error_response",
    "raise_for_error",
]

#: Upper bound on one protocol line; submissions are tiny, so anything
#: larger is a malformed or hostile client.
MAX_MESSAGE_BYTES = 1 << 20


class ProtocolError(ServeError):
    """Malformed request or response (bad JSON, missing/invalid fields)."""

    code = "bad_request"


class AdmissionRejected(ServeError):
    """Typed backpressure signal: the service refused a submission.

    ``code`` discriminates the reason: ``queue_full`` (bounded admission
    queue saturated) or ``draining`` (shutdown in progress).  ``depth``
    and ``capacity`` describe the queue at rejection time.
    """

    def __init__(self, code: str, message: str, *, depth: int = 0, capacity: int = 0):
        super().__init__(message)
        self.code = code
        self.depth = depth
        self.capacity = capacity

    def to_wire(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": str(self),
            "depth": self.depth,
            "capacity": self.capacity,
        }


class LeaseError(ServeError):
    """Invalid NUMA-lease operation (unknown job, double grant, bad size)."""

    code = "lease_error"


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED)


@dataclass(frozen=True)
class JobRequest:
    """What one tenant submits: a taskloop campaign plus a lease size.

    ``nodes`` is the number of NUMA nodes the job wants leased; the
    arbiter grants a topology-proximate disjoint mask of exactly that
    many nodes before the job runs.
    """

    benchmark: str
    scheduler: str = "ilan"
    seeds: int = 1
    timesteps: int | None = None
    nodes: int = 1
    tenant: str = "anon"
    #: Running-time budget in seconds; past it the watchdog cancels the
    #: job (terminal ``deadline_exceeded`` failure).  ``None`` defers to
    #: the service's default deadline (which may also be none).
    deadline_s: float | None = None

    def validate(self) -> None:
        if not self.benchmark or not isinstance(self.benchmark, str):
            raise ProtocolError("job request needs a non-empty 'benchmark'")
        if not self.scheduler or not isinstance(self.scheduler, str):
            raise ProtocolError("job request needs a non-empty 'scheduler'")
        if not isinstance(self.seeds, int) or self.seeds < 1:
            raise ProtocolError(f"'seeds' must be a positive int, got {self.seeds!r}")
        if self.timesteps is not None and (
            not isinstance(self.timesteps, int) or self.timesteps < 1
        ):
            raise ProtocolError(
                f"'timesteps' must be a positive int or null, got {self.timesteps!r}"
            )
        if not isinstance(self.nodes, int) or self.nodes < 1:
            raise ProtocolError(f"'nodes' must be a positive int, got {self.nodes!r}")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ProtocolError("'tenant' must be a non-empty string")
        if self.deadline_s is not None:
            if not isinstance(self.deadline_s, (int, float)) or isinstance(
                self.deadline_s, bool
            ):
                raise ProtocolError(
                    f"'deadline_s' must be a positive number or null, "
                    f"got {self.deadline_s!r}"
                )
            if not self.deadline_s > 0:
                raise ProtocolError(
                    f"'deadline_s' must be a positive number or null, "
                    f"got {self.deadline_s!r}"
                )

    def to_wire(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            "seeds": self.seeds,
            "timesteps": self.timesteps,
            "nodes": self.nodes,
            "tenant": self.tenant,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "JobRequest":
        if not isinstance(data, Mapping):
            raise ProtocolError(f"job request must be an object, got {type(data).__name__}")
        known = {"benchmark", "scheduler", "seeds", "timesteps", "nodes",
                 "tenant", "deadline_s"}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(f"unknown job request field(s): {sorted(unknown)}")
        if "benchmark" not in data:
            raise ProtocolError("job request needs a non-empty 'benchmark'")
        deadline = data.get("deadline_s")
        req = cls(
            benchmark=data["benchmark"],
            scheduler=data.get("scheduler", "ilan"),
            seeds=data.get("seeds", 1),
            timesteps=data.get("timesteps"),
            nodes=data.get("nodes", 1),
            tenant=data.get("tenant", "anon"),
            deadline_s=float(deadline) if isinstance(deadline, (int, float))
            and not isinstance(deadline, bool) else deadline,
        )
        req.validate()
        return req


@dataclass
class JobRecord:
    """Everything the service tracks about one admitted job."""

    job_id: str
    request: JobRequest
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    lease_nodes: list[int] | None = None
    error: str | None = None
    result: dict[str, Any] | None = None
    #: Completed execution attempts (a clean first run finishes with 0
    #: recorded failures here; every crash/transient adds one entry).
    attempts: int = 0
    attempt_history: list[dict[str, Any]] = field(default_factory=list)

    def record_attempt_failure(self, error: str, *, started_at: float | None,
                               failed_at: float) -> None:
        """Append one failed attempt to the history and bump the count."""
        self.attempts += 1
        self.attempt_history.append({
            "attempt": self.attempts,
            "error": error,
            "started_at": started_at,
            "finished_at": failed_at,
        })

    @property
    def latency(self) -> float | None:
        """Submit-to-finish latency; ``None`` until the job is terminal."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_wire(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "request": self.request.to_wire(),
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "lease_nodes": self.lease_nodes,
            "error": self.error,
            "result": self.result,
            "attempts": self.attempts,
            "attempt_history": list(self.attempt_history),
        }


# ----------------------------------------------------------------------
# line codec
# ----------------------------------------------------------------------
def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the newline delimiter."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one protocol line into a dict; typed error on garbage."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"protocol message must be an object, got {type(payload).__name__}")
    return payload


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Next message from a stream, or ``None`` on a clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-message") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("protocol line exceeds the message size limit") from exc
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError("protocol line exceeds the message size limit")
    return decode_message(line)


async def write_message(writer: asyncio.StreamWriter, payload: Mapping[str, Any]) -> None:
    writer.write(encode_message(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# response envelopes
# ----------------------------------------------------------------------
def ok_response(**fields: Any) -> dict[str, Any]:
    return {"ok": True, **fields}


def error_response(code: str, message: str, **extra: Any) -> dict[str, Any]:
    return {"ok": False, "error": {"code": code, "message": message, **extra}}


def raise_for_error(response: Mapping[str, Any]) -> dict[str, Any]:
    """Turn an error response back into its typed exception; pass oks through."""
    if response.get("ok"):
        return dict(response)
    err = response.get("error")
    if not isinstance(err, Mapping):
        raise ProtocolError(f"malformed error response: {response!r}")
    code = err.get("code", "unknown")
    message = err.get("message", "unknown service error")
    if code in ("queue_full", "draining"):
        raise AdmissionRejected(
            code,
            message,
            depth=int(err.get("depth", 0)),
            capacity=int(err.get("capacity", 0)),
        )
    if code == "lease_error":
        raise LeaseError(message)
    raise ProtocolError(f"{code}: {message}")
