"""Per-tenant warm scheduling state: checkpoints that survive migration.

A :class:`~repro.serve.server.SchedulingService` learns two things about
a tenant from every completed job: which NUMA node ran it fastest (the
seed of the next lease grant) and the full performance-trace history of
its taskloops (the :class:`~repro.core.ptt.TaskloopPTT` rebuilt from the
run's measurements).  PR 7 kept that knowledge trapped on the shard that
earned it — a tenant rehomed by a crash or a rebalance re-bootstrapped
from scratch.  This module makes the knowledge portable:

* :class:`TenantCheckpoint` — one (tenant, benchmark) pair's warm state
  as a **versioned wire document**: the fastest-node hint, the
  reconstructed PTT (:meth:`~repro.core.ptt.TaskloopPTT.to_wire`, which
  carries the node-perf EMA and the generation counter), a moldability
  phase summary, and a monotonically increasing checkpoint generation;
* :class:`TenantStateStore` — the shard-side registry: checkpoints are
  cut after every completed job, exported for migration, imported at
  adoption time, and guarded so a *stale* document (an older generation
  than what the store already holds — e.g. replayed at a resurrected
  shard) is refused instead of resurrecting dead state.

The store also keeps a *dirty set* so the federation router can pull
only the checkpoints that changed since its last heartbeat poll
(:meth:`TenantStateStore.drain_dirty`), which bounds the per-heartbeat
migration traffic to what actually happened.

Everything here is pure bookkeeping over data the run already produced —
no clocks, no randomness — so seeded federation runs that migrate state
replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ptt import TaskloopPTT
from repro.errors import ConfigurationError, ServeError
from repro.runtime.results import AppRunResult

__all__ = ["TENANT_STATE_VERSION", "TenantCheckpoint", "TenantStateStore"]

#: Schema version of the tenant-state wire envelope.
TENANT_STATE_VERSION = 1


@dataclass
class TenantCheckpoint:
    """Warm state of one (tenant, benchmark) pair on one shard."""

    tenant: str
    benchmark: str
    #: Monotonically increasing per-(tenant, benchmark) checkpoint counter;
    #: the import-side staleness guard compares these.
    generation: int
    jobs_completed: int
    fastest_node: int
    #: Moldability lifecycle summary: ``"settled"`` once at least one job
    #: completed under this state (its exploration ran to completion
    #: inside the job), ``"bootstrap"`` otherwise.
    phase: str
    ptt: TaskloopPTT

    def to_wire(self) -> dict:
        return {
            "version": TENANT_STATE_VERSION,
            "tenant": self.tenant,
            "benchmark": self.benchmark,
            "generation": self.generation,
            "jobs_completed": self.jobs_completed,
            "fastest_node": self.fastest_node,
            "phase": self.phase,
            "ptt": self.ptt.to_wire(),
        }

    @classmethod
    def from_wire(cls, doc: dict) -> "TenantCheckpoint":
        if not isinstance(doc, dict):
            raise ServeError(
                f"tenant-state document must be an object, got {type(doc).__name__}"
            )
        if doc.get("version") != TENANT_STATE_VERSION:
            raise ServeError(
                f"unsupported tenant-state version {doc.get('version')!r} "
                f"(this build speaks {TENANT_STATE_VERSION})"
            )
        try:
            return cls(
                tenant=str(doc["tenant"]),
                benchmark=str(doc["benchmark"]),
                generation=int(doc["generation"]),
                jobs_completed=int(doc["jobs_completed"]),
                fastest_node=int(doc["fastest_node"]),
                phase=str(doc["phase"]),
                ptt=TaskloopPTT.from_wire(doc["ptt"]),
            )
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise ServeError(f"malformed tenant-state document: {exc}") from exc


class TenantStateStore:
    """Shard-side registry of every tenant's warm scheduling state."""

    def __init__(self) -> None:
        self._checkpoints: dict[tuple[str, str], TenantCheckpoint] = {}
        self._dirty: set[tuple[str, str]] = set()
        #: Imports refused by the generation guard (stale documents).
        self.stale_imports = 0
        #: Documents successfully adopted from another shard.
        self.imported = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._checkpoints)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._checkpoints

    def get(self, tenant: str, benchmark: str) -> TenantCheckpoint | None:
        return self._checkpoints.get((tenant, benchmark))

    def hint(self, tenant: str, benchmark: str) -> int | None:
        """The tenant's fastest-node lease seed, if any state is warm."""
        ckpt = self._checkpoints.get((tenant, benchmark))
        return ckpt.fastest_node if ckpt is not None else None

    def tenants(self) -> list[str]:
        return sorted({t for t, _ in self._checkpoints})

    # ------------------------------------------------------------------
    def checkpoint(
        self,
        tenant: str,
        benchmark: str,
        *,
        fastest_node: int,
        runs: list[AppRunResult],
        num_nodes: int,
    ) -> TenantCheckpoint:
        """Cut/extend the checkpoint after one completed job.

        The job's taskloop measurements are folded into the pair's
        reconstructed PTT — configuration timings into the Welford
        entries, per-node throughput into the EMA — and the generation
        counter advances, so every export after this call carries the
        new state and supersedes every document cut before it.
        """
        key = (tenant, benchmark)
        ckpt = self._checkpoints.get(key)
        if ckpt is None:
            ckpt = TenantCheckpoint(
                tenant=tenant,
                benchmark=benchmark,
                generation=0,
                jobs_completed=0,
                fastest_node=fastest_node,
                phase="bootstrap",
                ptt=TaskloopPTT(num_nodes=num_nodes),
            )
            self._checkpoints[key] = ckpt
        for run in runs:
            for tl in run.taskloops:
                ckpt.ptt.record(
                    (tl.num_threads, tl.node_mask_bits, tl.steal_policy),
                    tl.elapsed,
                    tl.node_perf,
                )
        ckpt.fastest_node = fastest_node
        ckpt.jobs_completed += 1
        ckpt.generation += 1
        ckpt.phase = "settled"
        self._dirty.add(key)
        return ckpt

    # ------------------------------------------------------------------
    def export(self, tenant: str) -> list[dict]:
        """Every benchmark's checkpoint for ``tenant``, as wire documents."""
        return [
            self._checkpoints[key].to_wire()
            for key in sorted(self._checkpoints)
            if key[0] == tenant
        ]

    def export_all(self) -> list[dict]:
        return [self._checkpoints[key].to_wire()
                for key in sorted(self._checkpoints)]

    def drain_dirty(self) -> list[dict]:
        """Checkpoints changed since the last drain (heartbeat delta)."""
        docs = [
            self._checkpoints[key].to_wire() for key in sorted(self._dirty)
        ]
        self._dirty.clear()
        return docs

    # ------------------------------------------------------------------
    def import_doc(self, doc: dict) -> bool:
        """Adopt one migrated checkpoint; the generation guard applies.

        Returns ``True`` when the document was adopted, ``False`` when it
        was stale — at or below a generation this store already holds for
        the pair (a resurrected or replayed document must never overwrite
        fresher local knowledge).  Malformed documents raise
        :class:`~repro.errors.ServeError`.
        """
        ckpt = TenantCheckpoint.from_wire(doc)
        key = (ckpt.tenant, ckpt.benchmark)
        existing = self._checkpoints.get(key)
        if existing is not None and ckpt.generation <= existing.generation:
            self.stale_imports += 1
            return False
        self._checkpoints[key] = ckpt
        self._dirty.add(key)
        self.imported += 1
        return True

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able summary for the metrics snapshot."""
        return {
            "pairs": len(self._checkpoints),
            "tenants": self.tenants(),
            "imported": self.imported,
            "stale_imports": self.stale_imports,
            "generations": {
                f"{tenant}/{benchmark}": ckpt.generation
                for (tenant, benchmark), ckpt in sorted(self._checkpoints.items())
            },
        }
