"""Bounded admission control with typed backpressure.

The service admits jobs through one :class:`AdmissionQueue`: a bounded
FIFO whose :meth:`AdmissionQueue.offer` is synchronous and *never blocks*
— when the queue is saturated the submission is rejected immediately with
a typed :class:`~repro.serve.protocol.AdmissionRejected` (``queue_full``),
and once draining has begun every new submission is rejected with
``draining``.  Rejection instead of unbounded buffering is the
backpressure contract: a saturated service tells clients to back off
rather than accumulating latency silently.

Worker coroutines consume via :meth:`AdmissionQueue.take`, which returns
``None`` once the queue is draining *and* empty — the workers' shutdown
signal.  :meth:`AdmissionQueue.join` resolves when every admitted item has
been marked done, which is what graceful drain awaits.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Generic, TypeVar

from repro.serve.protocol import AdmissionRejected

__all__ = ["AdmissionQueue"]

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """Bounded FIFO: synchronous non-blocking admission, async consumption."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"admission queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._unfinished = 0
        self._draining = False
        self._takers = asyncio.Condition()
        self._all_done = asyncio.Event()
        self._all_done.set()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs admitted but not yet taken by a worker."""
        return len(self._items)

    @property
    def unfinished(self) -> int:
        """Jobs admitted but not yet marked done (queued + in flight)."""
        return self._unfinished

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    def offer(self, item: T) -> None:
        """Admit ``item`` or raise :class:`AdmissionRejected` — never blocks.

        Synchronous on purpose: callers check-and-enqueue atomically with
        respect to the event loop, so the capacity bound cannot be raced
        past by concurrent submissions.
        """
        if self._draining:
            raise AdmissionRejected(
                "draining",
                "service is draining and accepts no new jobs",
                depth=len(self._items),
                capacity=self.capacity,
            )
        if len(self._items) >= self.capacity:
            raise AdmissionRejected(
                "queue_full",
                f"admission queue is saturated ({self.capacity} queued)",
                depth=len(self._items),
                capacity=self.capacity,
            )
        self._items.append(item)
        self._unfinished += 1
        self._all_done.clear()
        self._notify()

    def requeue(self, item: T) -> None:
        """Re-admit an item after a recoverable fault — never rejects.

        The item was already admitted once, so the backpressure contract
        does not apply: it bypasses the capacity bound (the service's
        attempt budget bounds the extra work) and is accepted even while
        draining, because graceful drain must still account for every
        admitted job.  The caller invokes this *before* the matching
        :meth:`task_done` of the faulted attempt so ``unfinished`` never
        momentarily reads zero.
        """
        self._items.append(item)
        self._unfinished += 1
        self._all_done.clear()
        self._notify()

    async def take(self) -> T | None:
        """Next admitted item in FIFO order; ``None`` once drained dry."""
        async with self._takers:
            await self._takers.wait_for(lambda: self._items or self._draining)
            if self._items:
                return self._items.popleft()
            return None  # draining and empty: worker shutdown signal

    def task_done(self) -> None:
        """Mark one taken item as fully processed."""
        if self._unfinished <= 0:
            raise ValueError("task_done() called more times than items admitted")
        self._unfinished -= 1
        if self._unfinished == 0:
            self._all_done.set()

    # ------------------------------------------------------------------
    def evict_newest(self, count: int) -> list[T]:
        """Remove up to ``count`` items from the *tail* (the youngest).

        The federation's saturation rebalance: the youngest waiting
        items have accrued the least queue position, so moving them to
        another shard costs the least fairness — the head of the FIFO
        (the oldest waiter) is never touched, preserving the per-shard
        no-starvation order for everything that stays.  Each evicted
        item's admission is unwound (``unfinished`` decremented), as if
        it had been taken and completed here.
        """
        if count < 0:
            raise ValueError(f"cannot evict a negative count, got {count}")
        evicted: list[T] = []
        while self._items and len(evicted) < count:
            evicted.append(self._items.pop())
            self._unfinished -= 1
        if self._unfinished == 0:
            self._all_done.set()
        return evicted

    def clear(self) -> list[T]:
        """Shard death: empty the queue and zero the unfinished count.

        Every queued item is returned (oldest first) for the caller to
        requeue elsewhere; in-flight accounting is forfeited — the
        worker coroutines of a killed shard are already cancelled, so no
        ``task_done`` is ever coming for them.
        """
        drained = list(self._items)
        self._items.clear()
        self._unfinished = 0
        self._all_done.set()
        return drained

    # ------------------------------------------------------------------
    def start_drain(self) -> None:
        """Stop admitting; wake idle workers so they can observe the drain."""
        self._draining = True
        self._notify()

    async def join(self) -> None:
        """Wait until every admitted item has been marked done."""
        await self._all_done.wait()

    def _notify(self) -> None:
        async def _wake() -> None:
            async with self._takers:
                self._takers.notify_all()

        # offer()/start_drain() are sync; schedule the wake-up on the loop
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # no loop (e.g. unit test poking state): nothing to wake
        loop.create_task(_wake())
