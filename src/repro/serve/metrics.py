"""Live service metrics: counters, latency percentiles, lease map.

The :class:`ServiceMetrics` registry aggregates everything the metrics
snapshot endpoint exposes: monotonically increasing job counters
(submitted / completed / failed / rejected-by-reason), completed-job
latency percentiles (p50/p95 via linear interpolation), throughput since
the first submission, and — joined in by the server at snapshot time —
queue depth, per-node lease ownership, and the per-job records.

The registry takes an injectable monotonic ``clock`` so tests can drive
time deterministically.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Callable, Mapping, Sequence

__all__ = ["percentile", "ServiceMetrics"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default behaviour without needing an
    array; raises ``ValueError`` on an empty input or a ``q`` outside
    [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class ServiceMetrics:
    """Counter and latency registry of one service instance."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._started_at = clock()
        self._first_submit_at: float | None = None
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected: Counter[str] = Counter()
        self._latencies: list[float] = []

    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        self.submitted += 1
        if self._first_submit_at is None:
            self._first_submit_at = self._clock()

    def record_rejected(self, code: str) -> None:
        self.rejected[code] += 1

    def record_completed(self, latency: float) -> None:
        self.completed += 1
        self._latencies.append(latency)

    def record_failed(self, latency: float) -> None:
        self.failed += 1
        self._latencies.append(latency)

    # ------------------------------------------------------------------
    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def latency_summary(self) -> dict[str, float | int]:
        """p50/p95/mean/max over every finished (completed or failed) job."""
        lat = self._latencies
        if not lat:
            return {"count": 0}
        return {
            "count": len(lat),
            "mean_s": sum(lat) / len(lat),
            "p50_s": percentile(lat, 50.0),
            "p95_s": percentile(lat, 95.0),
            "max_s": max(lat),
        }

    def throughput(self) -> float:
        """Completed jobs per second since the first submission."""
        if self._first_submit_at is None:
            return 0.0
        elapsed = self._clock() - self._first_submit_at
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        queue_depth: int,
        queue_capacity: int,
        draining: bool,
        active: int,
        queued: int,
        lease_map: Mapping[int, str | None],
        waiting_for_lease: Sequence[str] = (),
        jobs: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The full JSON-able metrics snapshot.

        Conservation invariant (checked by the service tests): every
        submitted job is accounted for —
        ``submitted == completed + failed + active + queued``, with
        rejected submissions counted separately (they were never admitted).
        """
        return {
            "service": {
                "uptime_s": self._clock() - self._started_at,
                "draining": draining,
            },
            "queue": {
                "depth": queue_depth,
                "capacity": queue_capacity,
            },
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": dict(self.rejected),
                "rejected_total": self.rejected_total,
                "active": active,
                "queued": queued,
                "throughput_jps": self.throughput(),
                "latency": self.latency_summary(),
            },
            "nodes": {
                "leases": {str(node): owner for node, owner in sorted(lease_map.items())},
                "free": sorted(n for n, owner in lease_map.items() if owner is None),
                "waiting_for_lease": list(waiting_for_lease),
            },
            "per_job": dict(jobs or {}),
        }
