"""Live service metrics: counters, latency percentiles, lease map.

The :class:`ServiceMetrics` registry aggregates everything the metrics
snapshot endpoint exposes: monotonically increasing job counters
(submitted / completed / failed / rejected-by-reason), recovery counters
(retried / requeued / deadline_exceeded / leases_reclaimed), completed-job
latency percentiles (p50/p95 via linear interpolation), throughput since
the first submission, and — joined in by the server at snapshot time —
queue depth, per-node lease ownership, and the per-job records.

Latencies live in a bounded :class:`LatencyReservoir` (seeded reservoir
sampling), so a week-long server run holds a fixed-size sample instead of
one float per job ever finished; count, mean and max stay exact.

The registry takes an injectable monotonic ``clock`` so tests can drive
time deterministically.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Callable, Mapping, Sequence

from repro.sim.rng import pyrandom

__all__ = ["percentile", "LatencyReservoir", "ServiceMetrics"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default behaviour without needing an
    array; raises ``ValueError`` on an empty input or a ``q`` outside
    [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class LatencyReservoir:
    """Bounded uniform sample of a latency stream (Vitter's Algorithm R).

    Holds at most ``capacity`` values; once full, the *i*-th observation
    replaces a random slot with probability ``capacity / i``, so the
    retained sample stays uniform over everything seen.  Count, sum and
    max are tracked exactly alongside, and the replacement draws come
    from the seed-derived :func:`repro.sim.rng.pyrandom` substream
    ``("serve.metrics", "reservoir")`` so a replayed run samples
    identically.
    """

    def __init__(self, capacity: int = 1024, *, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = pyrandom(seed, "serve.metrics", "reservoir")
        self._sample: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def add(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if self._count == 1 or value > self._max:
            self._max = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._count)
        if slot < self.capacity:
            self._sample[slot] = value

    def __len__(self) -> int:
        """Observations *seen* (not the bounded sample size)."""
        return self._count

    @property
    def sample(self) -> list[float]:
        """The current bounded sample (a copy)."""
        return list(self._sample)

    def summary(self) -> dict[str, float | int]:
        """Exact count/mean/max; p50/p95 over the (possibly sampled) data."""
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "mean_s": self._sum / self._count,
            "p50_s": percentile(self._sample, 50.0),
            "p95_s": percentile(self._sample, 95.0),
            "max_s": self._max,
        }


class ServiceMetrics:
    """Counter and latency registry of one service instance."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        *,
        reservoir_size: int = 1024,
        reservoir_seed: int = 0,
    ):
        self._clock = clock
        self._started_at = clock()
        self._first_submit_at: float | None = None
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        #: Jobs taken away by the federation tier (saturation rebalance or
        #: shard death) — admitted here, finished elsewhere.
        self.evicted = 0
        self.rejected: Counter[str] = Counter()
        # recovery counters: every fault the service absorbed
        self.retried = 0
        self.requeued = 0
        self.deadline_exceeded = 0
        self.leases_reclaimed = 0
        # tenancy counters: whether each job start found warm PTT state
        # for its (tenant, benchmark) pair (federation warm migration's
        # acceptance signal — a cleanly migrated tenant never re-bootstraps)
        self.warm_starts = 0
        self.cold_bootstraps = 0
        self._latencies = LatencyReservoir(reservoir_size, seed=reservoir_seed)

    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        self.submitted += 1
        if self._first_submit_at is None:
            self._first_submit_at = self._clock()

    def record_rejected(self, code: str) -> None:
        self.rejected[code] += 1

    def record_completed(self, latency: float) -> None:
        self.completed += 1
        self._latencies.add(latency)

    def record_failed(self, latency: float) -> None:
        self.failed += 1
        self._latencies.add(latency)

    def record_evicted(self) -> None:
        """A job left for another shard (migration or shard death)."""
        self.evicted += 1

    def record_retried(self) -> None:
        """A job was re-admitted after a transient execution error."""
        self.retried += 1

    def record_requeued(self) -> None:
        """A job was re-admitted after its worker crashed mid-job."""
        self.requeued += 1

    def record_deadline_exceeded(self) -> None:
        """The watchdog cancelled a job past its deadline."""
        self.deadline_exceeded += 1

    def record_lease_reclaimed(self) -> None:
        """A lease was reclaimed from a dead owner."""
        self.leases_reclaimed += 1

    def record_warm_start(self) -> None:
        """A job started with warm PTT state for its tenant pair."""
        self.warm_starts += 1

    def record_cold_bootstrap(self) -> None:
        """A job started with no warm state (fresh exploration)."""
        self.cold_bootstraps += 1

    # ------------------------------------------------------------------
    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def latency_summary(self) -> dict[str, float | int]:
        """p50/p95/mean/max over every finished (completed or failed) job."""
        return self._latencies.summary()

    def throughput(self) -> float:
        """Completed jobs per second since the first submission."""
        if self._first_submit_at is None:
            return 0.0
        elapsed = self._clock() - self._first_submit_at
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        queue_depth: int,
        queue_capacity: int,
        draining: bool,
        active: int,
        queued: int,
        lease_map: Mapping[int, str | None],
        waiting_for_lease: Sequence[str] = (),
        jobs: Mapping[str, Any] | None = None,
        faults_injected: Mapping[str, int] | None = None,
        tenant_state: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The full JSON-able metrics snapshot.

        Conservation invariant (checked by the service and chaos tests):
        every submitted job is accounted for —
        ``submitted == completed + failed + active + queued + evicted``,
        with rejected submissions counted separately (they were never
        admitted).  ``evicted`` is zero outside a federation: only the
        router moves admitted jobs to another shard.
        Retries and requeues re-admit an *already submitted* job, so they
        never perturb the invariant; they are tallied under ``recovery``.
        """
        return {
            "service": {
                "uptime_s": self._clock() - self._started_at,
                "draining": draining,
            },
            "queue": {
                "depth": queue_depth,
                "capacity": queue_capacity,
            },
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "evicted": self.evicted,
                "rejected": dict(self.rejected),
                "rejected_total": self.rejected_total,
                "active": active,
                "queued": queued,
                "throughput_jps": self.throughput(),
                "latency": self.latency_summary(),
            },
            "recovery": {
                "retried": self.retried,
                "requeued": self.requeued,
                "deadline_exceeded": self.deadline_exceeded,
                "leases_reclaimed": self.leases_reclaimed,
                "faults_injected": dict(faults_injected or {}),
            },
            "tenancy": {
                "warm_starts": self.warm_starts,
                "cold_bootstraps": self.cold_bootstraps,
                "state": dict(tenant_state or {}),
            },
            "nodes": {
                "leases": {str(node): owner for node, owner in sorted(lease_map.items())},
                "free": sorted(n for n, owner in lease_map.items() if owner is None),
                "waiting_for_lease": list(waiting_for_lease),
            },
            "per_job": dict(jobs or {}),
        }
