"""Deterministic fault injection for the scheduling service.

A :class:`FaultPlan` turns a seed plus per-kind probabilities into a
*fixed* fault assignment: every job id is hashed into its own named RNG
substream (:func:`repro.sim.rng.stream`), so whether — and how — a job is
faulted depends only on ``(seed, job_id)``.  Two runs of the same plan
against the same submission order inject byte-identical faults, which is
what lets the chaos tests replay a scenario and assert its exact outcome.

Fault kinds (one per job at most, drawn once):

* ``crash`` — the worker coroutine running the job dies mid-job
  (:class:`WorkerCrashed`); the service must reclaim the lease, requeue
  the job within its attempt budget, and respawn the worker;
* ``transient`` — the runner raises a retryable
  :class:`~repro.errors.TransientRunnerError` from inside the execution
  path; the service retries within the attempt budget;
* ``deadline`` — the job hangs past its deadline; the watchdog must
  cancel it (terminal failure, counted in ``deadline_exceeded``);
* ``disconnect`` — a *client-side* fault: the submitting client drops its
  connection mid-wait and reconnects.  The server ignores this kind; the
  load generator drives it.

``fault_attempts`` bounds how many initial attempts of a faulted job the
fault affects — after that many injections the job runs clean, so a plan
with ``fault_attempts`` below the service's attempt budget converges,
while a larger one deterministically exhausts the budget into a typed
:class:`~repro.errors.JobFailed`.

Spec strings (the ``--fault-spec`` CLI surface) look like
``"crash=0.2,transient=0.3,deadline=0.1,disconnect=0.2"``.
"""

from __future__ import annotations

import threading
from collections import Counter
from enum import Enum
from typing import Mapping

from repro.errors import ServeError
from repro.sim.rng import stream

__all__ = ["FaultKind", "FaultPlan", "WorkerCrashed", "parse_fault_spec"]


class WorkerCrashed(ServeError):
    """Injected worker death: the coroutine executing a job terminates.

    Never reaches a client directly — the recovery path turns it into a
    requeue (or, past the attempt budget, a :class:`~repro.errors.JobFailed`).
    """

    code = "worker_crashed"


class FaultKind(str, Enum):
    """One injectable failure mode; the value is its spec-string name."""

    WORKER_CRASH = "crash"
    TRANSIENT_ERROR = "transient"
    DEADLINE_HANG = "deadline"
    CLIENT_DISCONNECT = "disconnect"


#: Draw order for the cumulative-probability walk — fixed so a plan's
#: decisions never depend on dict iteration order.
_DRAW_ORDER = (
    FaultKind.WORKER_CRASH,
    FaultKind.TRANSIENT_ERROR,
    FaultKind.DEADLINE_HANG,
    FaultKind.CLIENT_DISCONNECT,
)


def parse_fault_spec(spec: str) -> dict[FaultKind, float]:
    """Parse ``"kind=prob,kind=prob,..."`` into a probability table.

    Raises :class:`ServeError` on unknown kinds, unparsable or
    out-of-range probabilities, duplicates, or a total above 1.
    """
    probabilities: dict[FaultKind, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, raw = part.partition("=")
        if not sep:
            raise ServeError(
                f"fault spec entry {part!r} is not of the form kind=probability"
            )
        try:
            kind = FaultKind(name.strip())
        except ValueError:
            known = ", ".join(k.value for k in FaultKind)
            raise ServeError(
                f"unknown fault kind {name.strip()!r}; known kinds: {known}"
            ) from None
        try:
            prob = float(raw)
        except ValueError:
            raise ServeError(
                f"fault probability {raw!r} for {kind.value!r} is not a number"
            ) from None
        if kind in probabilities:
            raise ServeError(f"fault kind {kind.value!r} given twice")
        probabilities[kind] = prob
    if not probabilities:
        raise ServeError(f"fault spec {spec!r} names no faults")
    return probabilities


class FaultPlan:
    """Seeded, deterministic per-job fault assignment.

    The plan is pure decision state plus an injection tally; *applying*
    a fault (raising, hanging, disconnecting) is the caller's job, which
    reports it back through :meth:`record_injection` so the tally lands
    in the metrics snapshot.
    """

    def __init__(
        self,
        probabilities: Mapping[FaultKind | str, float],
        *,
        seed: int = 0,
        fault_attempts: int = 1,
    ):
        table: dict[FaultKind, float] = {}
        for kind, prob in probabilities.items():
            kind = FaultKind(kind)
            if not (0.0 <= float(prob) <= 1.0):
                raise ServeError(
                    f"fault probability for {kind.value!r} must be in [0, 1], "
                    f"got {prob}"
                )
            table[kind] = float(prob)
        if sum(table.values()) > 1.0 + 1e-9:
            raise ServeError(
                f"fault probabilities sum to {sum(table.values()):.3f} > 1 "
                "(a job suffers at most one fault kind)"
            )
        if fault_attempts < 1:
            raise ServeError(
                f"fault_attempts must be >= 1, got {fault_attempts}"
            )
        self.probabilities = table
        self.seed = int(seed)
        self.fault_attempts = int(fault_attempts)
        self.injected: Counter[str] = Counter()
        self._injected_lock = threading.Lock()
        self._decisions: dict[str, FaultKind | None] = {}

    @classmethod
    def from_spec(
        cls, spec: str, *, seed: int = 0, fault_attempts: int = 1
    ) -> "FaultPlan":
        """Build a plan from a ``--fault-spec`` string."""
        return cls(parse_fault_spec(spec), seed=seed, fault_attempts=fault_attempts)

    # ------------------------------------------------------------------
    def decide(self, job_id: str) -> FaultKind | None:
        """The fault assigned to ``job_id`` (memoised, seed-deterministic)."""
        if job_id not in self._decisions:
            u = float(stream(self.seed, "serve.fault", job_id).random())
            decision: FaultKind | None = None
            cumulative = 0.0
            for kind in _DRAW_ORDER:
                cumulative += self.probabilities.get(kind, 0.0)
                if u < cumulative:
                    decision = kind
                    break
            self._decisions[job_id] = decision
        return self._decisions[job_id]

    def should_inject(self, job_id: str, kind: FaultKind, attempt: int) -> bool:
        """Whether ``kind`` hits attempt ``attempt`` (0-based) of this job."""
        return self.decide(job_id) is kind and attempt < self.fault_attempts

    def record_injection(self, kind: FaultKind) -> None:
        """Tally one applied fault (surfaces in the metrics snapshot).

        Thread-safe: transient faults report from runner worker threads.
        """
        with self._injected_lock:
            self.injected[kind.value] += 1

    # ------------------------------------------------------------------
    def decisions(self) -> dict[str, str | None]:
        """Every decision made so far: job id → fault kind value (or None)."""
        return {
            job_id: (kind.value if kind is not None else None)
            for job_id, kind in sorted(self._decisions.items())
        }

    def to_spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`from_spec`)."""
        return ",".join(
            f"{kind.value}={self.probabilities[kind]:g}"
            for kind in _DRAW_ORDER
            if kind in self.probabilities
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan({self.to_spec()!r}, seed={self.seed}, "
            f"fault_attempts={self.fault_attempts})"
        )
