"""Multi-tenant scheduling service for concurrent taskloop campaigns.

This package turns the single-program simulator into a served system:
many concurrent clients submit jobs against one simulated machine, a
global NUMA arbiter hands each active job a disjoint topology-proximate
node lease, ILAN molds each job inside its lease, a bounded admission
queue applies typed backpressure, and a metrics endpoint exposes the live
per-job and per-node state.

The failure path is first-class: a seeded
:class:`~repro.serve.faults.FaultPlan` deterministically injects worker
crashes, transient runner errors, deadline hangs and client disconnects,
and the recovery machinery (lease reclamation, bounded-budget requeue,
watchdog cancellation, client backoff) is what the chaos tests replay.

Start a server with ``python -m repro.serve``; drive it with
``python -m repro.serve.loadgen`` (``--fault-spec`` for chaos).
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.arbiter import Lease, LeaseLedger, NodeArbiter
from repro.serve.client import ServiceClient
from repro.serve.faults import FaultKind, FaultPlan, WorkerCrashed
from repro.serve.metrics import LatencyReservoir, ServiceMetrics, percentile
from repro.serve.protocol import (
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    LeaseError,
    ProtocolError,
)
from repro.serve.server import SchedulingService

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "FaultKind",
    "FaultPlan",
    "JobRecord",
    "JobRequest",
    "JobState",
    "LatencyReservoir",
    "Lease",
    "LeaseError",
    "LeaseLedger",
    "NodeArbiter",
    "ProtocolError",
    "SchedulingService",
    "ServiceClient",
    "ServiceMetrics",
    "WorkerCrashed",
    "percentile",
]
