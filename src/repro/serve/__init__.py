"""Multi-tenant scheduling service for concurrent taskloop campaigns.

This package turns the single-program simulator into a served system:
many concurrent clients submit jobs against one simulated machine, a
global NUMA arbiter hands each active job a disjoint topology-proximate
node lease, ILAN molds each job inside its lease, a bounded admission
queue applies typed backpressure, and a metrics endpoint exposes the live
per-job and per-node state.

Start a server with ``python -m repro.serve``; drive it with
``python -m repro.serve.loadgen``.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.arbiter import Lease, LeaseLedger, NodeArbiter
from repro.serve.client import ServiceClient
from repro.serve.metrics import ServiceMetrics, percentile
from repro.serve.protocol import (
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    LeaseError,
    ProtocolError,
)
from repro.serve.server import SchedulingService

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "JobRecord",
    "JobRequest",
    "JobState",
    "Lease",
    "LeaseError",
    "LeaseLedger",
    "NodeArbiter",
    "ProtocolError",
    "SchedulingService",
    "ServiceClient",
    "ServiceMetrics",
    "percentile",
]
