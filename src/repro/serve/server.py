"""The multi-tenant scheduling service.

:class:`SchedulingService` glues the subsystem together: N concurrent
clients submit taskloop campaigns as *jobs*; a bounded
:class:`~repro.serve.admission.AdmissionQueue` applies backpressure; the
:class:`~repro.serve.arbiter.NodeArbiter` grants each job a disjoint
NUMA-node lease (topology-proximate, seeded by the tenant's PTT history);
inside its lease each job runs the ILAN scheduler unchanged via the
lease-constrained moldability entry point; execution reuses the
experiment runner's content-addressed cache, so a previously-seen job
completes without simulating anything.

Job lifecycle::

    submit ──ok──▶ QUEUED ──lease granted──▶ RUNNING ──▶ COMPLETED
       │              ▲                         │
       │              └──crash / transient──────┤ (within attempt budget)
       │                                        │
       └──▶ AdmissionRejected                   └──────▶ FAILED
            (queue_full | draining)                      (error | JobFailed |
                                                          deadline_exceeded)

Simulations are CPU-bound pure Python, so each job runs on a worker
thread (``run_in_executor``) while the event loop keeps serving
submissions, status polls and metrics snapshots.  Graceful drain stops
admission (typed ``draining`` rejections), lets every admitted job finish,
then stops the listener — zero jobs are ever dropped.

Failure model & recovery:

* a worker that dies mid-job (:class:`~repro.serve.faults.WorkerCrashed`)
  has its lease *reclaimed*, its job requeued within the attempt budget,
  and is itself respawned by the supervisor, so worker capacity survives
  any number of crashes;
* a retryable :class:`~repro.errors.TransientRunnerError` from the
  execution path requeues the job the same way (``retried`` counter);
* each job may carry a running-time deadline (``deadline_s``, or the
  service-wide ``default_deadline_s``); a watchdog cancels overruns into
  a terminal ``deadline_exceeded`` failure;
* a job that exhausts its attempt budget fails with a typed
  :class:`~repro.errors.JobFailed` carrying the full attempt history.

All of this is deterministic under an injected
:class:`~repro.serve.faults.FaultPlan` — the chaos tests replay seeded
plans and assert the exact end state.
"""

from __future__ import annotations

import asyncio
import functools
import time
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    JobFailed,
    ReproError,
    TransientRunnerError,
)
from repro.exp.runner import LEASE_SCHEDULERS, ExperimentConfig, Runner, RunSpec
from repro.ioutil import atomic_write_json
from repro.runtime.results import AppRunResult
from repro.serve.admission import AdmissionQueue
from repro.serve.arbiter import LeaseLedger, NodeArbiter
from repro.serve.faults import FaultKind, FaultPlan, WorkerCrashed
from repro.serve.metrics import ServiceMetrics
from repro.serve.protocol import (
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    ProtocolError,
    error_response,
    ok_response,
    read_message,
    write_message,
)
from repro.serve.tenantstate import TenantStateStore
from repro.topology.machine import MachineTopology
from repro.topology.presets import default_distances, zen4_9354
from repro.workloads.registry import benchmark_names

__all__ = ["SchedulingService"]


class SchedulingService:
    """One simulated machine shared by many concurrently submitted jobs."""

    def __init__(
        self,
        topology: MachineTopology | None = None,
        *,
        config: ExperimentConfig | None = None,
        queue_capacity: int = 16,
        workers: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        fault_plan: FaultPlan | None = None,
        max_attempts: int = 3,
        default_deadline_s: float | None = None,
        latency_reservoir: int = 1024,
    ):
        self.topology = topology or zen4_9354()
        self.config = config or ExperimentConfig.from_env()
        self.runner = Runner(self.config, topology=self.topology)
        self.clock = clock
        ledger = LeaseLedger(self.topology, default_distances(self.topology))
        self.arbiter = NodeArbiter(ledger)
        self.admission: AdmissionQueue[JobRecord] = AdmissionQueue(queue_capacity)
        self.metrics = ServiceMetrics(clock=clock, reservoir_size=latency_reservoir)
        self.fault_plan = fault_plan
        if max_attempts < 1:
            raise ConfigurationError(
                f"a job needs at least one attempt, got max_attempts={max_attempts}"
            )
        self.max_attempts = max_attempts
        if default_deadline_s is not None and not default_deadline_s > 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive or None, got {default_deadline_s}"
            )
        self.default_deadline_s = default_deadline_s
        self.records: dict[str, JobRecord] = {}
        # per-(tenant, benchmark) warm state: the fastest node observed in
        # the tenant's previous jobs seeds the next lease's growth, and the
        # full checkpoint (reconstructed PTT + generation) is what the
        # federation migrates when the tenant is rehomed
        self.tenant_state = TenantStateStore()
        self._workers = workers if workers is not None else self.topology.num_nodes
        if self._workers < 1:
            raise ConfigurationError(f"need at least one worker, got {self._workers}")
        self._worker_tasks: list[asyncio.Task] = []
        self._worker_seq = 0
        self.workers_crashed = 0
        self._server: asyncio.base_events.Server | None = None
        self._job_counter = 0
        self._drained = asyncio.Event()
        self._drain_started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the worker pool and the TCP listener; returns (host, port)."""
        self.start_workers()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    def start_workers(self) -> None:
        """In-process mode: start only the worker pool (no TCP listener)."""
        if self._worker_tasks:
            raise RuntimeError("service already started")
        for _ in range(self._workers):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        task = asyncio.create_task(
            self._worker(), name=f"serve-worker-{self._worker_seq}"
        )
        self._worker_seq += 1
        task.add_done_callback(self._worker_exited)
        self._worker_tasks.append(task)

    def _worker_exited(self, task: asyncio.Task) -> None:
        """Supervisor: replace a crashed worker so capacity never shrinks."""
        if task.cancelled():
            return
        if isinstance(task.exception(), WorkerCrashed):
            self.workers_crashed += 1
            self._worker_tasks.remove(task)
            self._spawn_worker()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service has no TCP listener")
        return self._server.sockets[0].getsockname()[1]

    async def drain(self) -> dict[str, Any]:
        """Graceful shutdown: reject new work, finish admitted work, stop.

        Idempotent — concurrent callers all await the same completion and
        receive a final metrics snapshot with zero pending jobs.  Safe to
        call mid-fault: a crash during drain still requeues its job
        (recovery re-admission bypasses the draining rejection), so every
        admitted job reaches a terminal state before the drain resolves.
        """
        if not self._drain_started:
            self._drain_started = True
            self.admission.start_drain()
            await self.admission.join()
            # crashed workers are respawned by the supervisor (a done
            # callback), so gather until the roster is quiescent
            while True:
                await asyncio.gather(*list(self._worker_tasks), return_exceptions=True)
                await asyncio.sleep(0)  # let pending respawn callbacks run
                if all(t.done() for t in self._worker_tasks):
                    break
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            self._drained.set()
        await self._drained.wait()
        return self.metrics_snapshot()

    # ------------------------------------------------------------------
    # submission (in-process API; the wire handler calls this too)
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> JobRecord:
        """Admit one job or raise a typed error; never blocks.

        Raises :class:`ProtocolError` for requests the machine can never
        run and :class:`AdmissionRejected` when the bounded queue is
        saturated or the service is draining.
        """
        self._validate(request)
        try:
            self._job_counter += 1
            record = JobRecord(
                job_id=f"job-{self._job_counter:05d}",
                request=request,
                submitted_at=self.clock(),
            )
            self.admission.offer(record)
        except AdmissionRejected as exc:
            self._job_counter -= 1
            self.metrics.record_rejected(exc.code)
            raise
        self.records[record.job_id] = record
        self.metrics.record_submitted()
        return record

    def _validate(self, request: JobRequest) -> None:
        request.validate()
        if request.benchmark not in benchmark_names():
            raise ProtocolError(
                f"unknown benchmark {request.benchmark!r}; "
                f"known: {benchmark_names()}"
            )
        if request.nodes > self.topology.num_nodes:
            raise ProtocolError(
                f"job wants {request.nodes} NUMA node(s) but the machine has "
                f"{self.topology.num_nodes}"
            )
        if request.scheduler not in LEASE_SCHEDULERS:
            from repro.runtime.schedulers.base import create_scheduler

            try:
                create_scheduler(request.scheduler)
            except ConfigurationError as exc:
                raise ProtocolError(str(exc)) from exc
            if request.nodes != self.topology.num_nodes:
                raise ProtocolError(
                    f"scheduler {request.scheduler!r} cannot be confined to a "
                    f"node lease; request nodes={self.topology.num_nodes} "
                    "(the whole machine) to run it exclusively"
                )

    def adopt(self, request: JobRequest) -> JobRecord:
        """Federation re-admission: accept a job evicted from another shard.

        Like :meth:`submit` but routed through the recovery-re-admission
        path, so it bypasses the capacity bound and the draining
        rejection — the job was already admitted once (on the shard that
        saturated or died), and the federation's conservation invariant
        requires it to land *somewhere*.  Only the router calls this;
        client submissions keep the full backpressure contract.
        """
        self._validate(request)
        self._job_counter += 1
        record = JobRecord(
            job_id=f"job-{self._job_counter:05d}",
            request=request,
            submitted_at=self.clock(),
        )
        self.admission.requeue(record)
        self.records[record.job_id] = record
        self.metrics.record_submitted()
        return record

    def evict_queued(self, count: int) -> list[JobRecord]:
        """Give up the ``count`` youngest *waiting* jobs (federation rebalance).

        The evicted records leave this shard entirely — dropped from the
        record table, tallied under ``evicted`` — and the caller re-admits
        them elsewhere.  Running jobs are never evicted (their lease and
        executor thread live here), and the FIFO head is never touched,
        so per-shard no-starvation ordering survives the rebalance.
        """
        evicted = self.admission.evict_newest(count)
        for record in evicted:
            del self.records[record.job_id]
            self.metrics.record_evicted()
        return evicted

    async def kill(self) -> list[JobRecord]:
        """Shard death: stop everything, reclaim every lease, orphan all
        non-terminal jobs.

        The federation's coarse failure domain — the whole service dies
        at once.  Worker coroutines are cancelled (their executor
        threads, if any, are abandoned and their results dropped), every
        lease is reclaimed back into the ledger, the admission queue is
        emptied, and every job not yet terminal is returned for the
        router to requeue on a surviving shard.  The dead service's
        metrics stay readable and conservation-consistent: orphans are
        tallied as ``evicted``.
        """
        for task in self._worker_tasks:
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks.clear()
        self.admission.clear()
        self.admission.start_drain()  # anything submitted post-mortem bounces
        orphans = sorted(
            (r for r in self.records.values() if not r.state.terminal),
            key=lambda r: r.job_id,
        )
        for record in orphans:
            await self.arbiter.reclaim(record.job_id)
        # defensive sweep: a lease whose record already went terminal would
        # be a bug elsewhere, but a dead shard must never pin nodes
        for job_id in list(self.arbiter.ledger.leases()):
            await self.arbiter.reclaim(job_id)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # the record deletions stay after every await above so the death
        # is atomic to concurrent observers: a status poll interleaved
        # with the reclaim loop sees either the old world or the fully
        # dead one, never a half-emptied records table
        for record in orphans:
            del self.records[record.job_id]
            self.metrics.record_evicted()
        return orphans

    def status(self, job_id: str) -> JobRecord:
        record = self.records.get(job_id)
        if record is None:
            raise ProtocolError(f"unknown job {job_id!r}")
        return record

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        """Pull admitted jobs, arbitrate a lease, execute, release."""
        while True:
            record = await self.admission.take()
            if record is None:
                return  # drained dry
            try:
                await self._run_job(record)
            except WorkerCrashed as exc:
                # recovery must land before this attempt's task_done so
                # the queue's unfinished count never momentarily hits 0
                await self._recover_crashed(record, exc)
                raise  # the worker dies; the supervisor respawns it
            finally:
                self.admission.task_done()

    async def _run_job(self, record: JobRecord) -> None:
        req = record.request
        attempt = record.attempts  # 0-based index of this attempt
        plan = self.fault_plan
        hint = self.tenant_state.hint(req.tenant, req.benchmark)
        if attempt == 0:  # count once per job, not per retry
            if hint is None:
                self.metrics.record_cold_bootstrap()
            else:
                self.metrics.record_warm_start()
        try:
            mask = await self.arbiter.acquire(record.job_id, req.nodes, preferred=hint)
        except ReproError as exc:
            self._finish(record, error=f"{type(exc).__name__}: {exc}")
            return
        record.lease_nodes = mask.indices()
        record.state = JobState.RUNNING
        record.started_at = self.clock()
        deadline = (
            req.deadline_s if req.deadline_s is not None else self.default_deadline_s
        )

        if plan is not None and plan.should_inject(
            record.job_id, FaultKind.WORKER_CRASH, attempt
        ):
            plan.record_injection(FaultKind.WORKER_CRASH)
            raise WorkerCrashed(
                f"injected crash of the worker running {record.job_id} "
                f"(attempt {attempt + 1})"
            )

        error: str | None = None
        retryable = False
        try:
            runs = await self._execute(record, attempt, deadline)
            record.result = self._summarize(runs)
            self._remember_fastest_node(req, runs)
        except asyncio.TimeoutError:
            self.metrics.record_deadline_exceeded()
            error = (
                f"DeadlineExceeded: job ran past its {deadline:g}s deadline "
                "and was cancelled by the watchdog"
            )
        except TransientRunnerError as exc:
            error = f"{type(exc).__name__}: {exc}"
            retryable = True
        except Exception as exc:  # a failed job must never kill its worker
            error = f"{type(exc).__name__}: {exc}"
        finally:
            await self.arbiter.release(record.job_id)

        if error is None:
            self._finish(record, error=None)
            return
        record.record_attempt_failure(
            error, started_at=record.started_at, failed_at=self.clock()
        )
        if retryable and record.attempts < self.max_attempts:
            self.metrics.record_retried()
            self._requeue(record)
        else:
            self._fail_terminal(record, error)

    async def _execute(
        self, record: JobRecord, attempt: int, deadline: float | None
    ) -> list[AppRunResult]:
        """Run the job's campaign on an executor thread, under the watchdog.

        Fault seams: a ``deadline`` fault substitutes a hang the watchdog
        must cancel; a ``transient`` fault raises from inside the runner
        call via its ``fault_hook``.
        """
        req = record.request
        plan = self.fault_plan

        if (
            plan is not None
            and deadline is not None
            and plan.should_inject(record.job_id, FaultKind.DEADLINE_HANG, attempt)
        ):
            plan.record_injection(FaultKind.DEADLINE_HANG)
            # a hang that outlives any deadline; wait_for cancels it cleanly
            await asyncio.wait_for(asyncio.Event().wait(), timeout=deadline)
            raise AssertionError("unreachable: the hang never resolves")

        fault_hook: Callable[[Sequence[RunSpec]], None] | None = None
        if plan is not None and plan.should_inject(
            record.job_id, FaultKind.TRANSIENT_ERROR, attempt
        ):
            job_id = record.job_id

            def fault_hook(specs: Sequence[RunSpec]) -> None:
                plan.record_injection(FaultKind.TRANSIENT_ERROR)
                raise TransientRunnerError(
                    f"injected transient runner error in {job_id} "
                    f"(attempt {attempt + 1})"
                )

        lease_bits = None
        if req.scheduler in LEASE_SCHEDULERS and record.lease_nodes is not None:
            from repro.topology.affinity import NodeMask

            lease_bits = NodeMask.from_indices(
                record.lease_nodes, self.topology.num_nodes
            ).bits
        specs = self.runner.job_specs(
            req.benchmark,
            req.scheduler,
            seeds=req.seeds,
            timesteps=req.timesteps,
            lease_bits=lease_bits,
        )
        loop = asyncio.get_running_loop()
        # only pass fault_hook when injecting, so tests substituting a plain
        # run_specs(specs) callable keep working
        call = (
            functools.partial(self.runner.run_specs, specs)
            if fault_hook is None
            else functools.partial(self.runner.run_specs, specs, fault_hook=fault_hook)
        )
        fut = loop.run_in_executor(None, call)
        if deadline is None:
            return await fut
        # NOTE: a real (non-injected) overrun abandons its executor thread
        # (threads are not cancellable); the lease is still released and
        # the job fails deterministically — the thread's result is dropped.
        return await asyncio.wait_for(fut, timeout=deadline)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    async def _recover_crashed(self, record: JobRecord, exc: WorkerCrashed) -> None:
        """A worker died mid-job: reclaim its lease, requeue or fail the job."""
        mask = await self.arbiter.reclaim(record.job_id)
        if mask is not None:
            self.metrics.record_lease_reclaimed()
        error = f"{type(exc).__name__}: {exc}"
        record.record_attempt_failure(
            error, started_at=record.started_at, failed_at=self.clock()
        )
        if record.attempts < self.max_attempts:
            self.metrics.record_requeued()
            self._requeue(record)
        else:
            self._fail_terminal(record, error)

    def _requeue(self, record: JobRecord) -> None:
        """Send a faulted job around again (recovery re-admission)."""
        record.state = JobState.QUEUED
        record.started_at = None
        record.lease_nodes = None
        record.result = None
        self.admission.requeue(record)

    def _fail_terminal(self, record: JobRecord, error: str) -> None:
        """Fail for good; with a history, the error is a typed JobFailed."""
        if record.attempt_history:
            error = str(JobFailed(record.job_id, record.attempt_history))
        self._finish(record, error=error)

    def _finish(self, record: JobRecord, *, error: str | None) -> None:
        record.error = error
        record.state = JobState.COMPLETED if error is None else JobState.FAILED
        record.finished_at = self.clock()
        latency = record.finished_at - record.submitted_at
        if error is None:
            self.metrics.record_completed(latency)
        else:
            self.metrics.record_failed(latency)

    @staticmethod
    def _summarize(runs: list[AppRunResult]) -> dict[str, Any]:
        times = [r.total_time for r in runs]
        return {
            "runs": len(runs),
            "total_time_mean_s": sum(times) / len(times),
            "total_time_min_s": min(times),
            "total_time_max_s": max(times),
            "weighted_avg_threads": sum(r.weighted_avg_threads for r in runs)
            / len(runs),
        }

    def _remember_fastest_node(self, req: JobRequest, runs: list[AppRunResult]) -> None:
        """Checkpoint the tenant's warm state from the job's measurements.

        The fastest observed node seeds the tenant's next lease; the full
        taskloop history is folded into the (tenant, benchmark)
        checkpoint the federation migrates when the tenant is rehomed.
        """
        perfs = [
            tl.node_perf
            for run in runs
            for tl in run.taskloops
            if tl.node_perf is not None
        ]
        if not perfs:
            return
        stacked = np.vstack(perfs)
        valid = ~np.isnan(stacked)
        counts = valid.sum(axis=0)
        if not counts.any():
            return
        # nanmean without the all-NaN-column RuntimeWarning: nodes the job
        # never measured stay NaN and lose the argmax below.
        mean = np.where(valid, stacked, 0.0).sum(axis=0) / np.maximum(counts, 1)
        mean[counts == 0] = np.nan
        self.tenant_state.checkpoint(
            req.tenant,
            req.benchmark,
            fastest_node=int(np.nanargmax(mean)),
            runs=runs,
            num_nodes=self.topology.num_nodes,
        )

    # ------------------------------------------------------------------
    # tenant-state migration (federation)
    # ------------------------------------------------------------------
    def export_tenant_state(self, tenant: str) -> list[dict[str, Any]]:
        """Every warm checkpoint of ``tenant``, as versioned wire documents."""
        return self.tenant_state.export(tenant)

    def import_tenant_state(self, doc: dict[str, Any]) -> bool:
        """Adopt a migrated checkpoint; ``False`` when the generation
        guard refused a stale document."""
        return self.tenant_state.import_doc(doc)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict[str, Any]:
        """The JSON-able live state: queue, leases, counters, every job."""
        states = [r.state for r in self.records.values()]
        return self.metrics.snapshot(
            queue_depth=self.admission.depth,
            queue_capacity=self.admission.capacity,
            draining=self.admission.draining,
            active=sum(1 for s in states if s is JobState.RUNNING),
            queued=sum(1 for s in states if s is JobState.QUEUED),
            lease_map=self.arbiter.ledger.lease_map(),
            waiting_for_lease=self.arbiter.waiting,
            jobs={jid: r.to_wire() for jid, r in self.records.items()},
            faults_injected=(
                dict(self.fault_plan.injected) if self.fault_plan is not None else None
            ),
            tenant_state=self.tenant_state.describe(),
        )

    def persist_snapshot(self, path: str | Path) -> Path:
        """Atomically write the current metrics snapshot as JSON.

        Tmp file + fsync + rename: a server killed mid-write leaves
        either the previous snapshot or the new one, never torn JSON.
        Called by the CLI after a signal-triggered drain so operators get
        a final, conservation-consistent account of every job.
        """
        return atomic_write_json(Path(path), self.metrics_snapshot())

    # ------------------------------------------------------------------
    # wire handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(writer, error_response("bad_request", str(exc)))
                    continue
                if message is None:
                    return
                response = await self._dispatch(message)
                await write_message(writer, response)
                if message.get("op") == "drain":
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            raise  # cancellation must propagate; `finally` closes the writer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        try:
            if op == "ping":
                return ok_response(pong=True, machine=self.topology.describe())
            if op == "submit":
                request = JobRequest.from_wire(message.get("job") or {})
                record = self.submit(request)
                return ok_response(job_id=record.job_id, state=record.state.value)
            if op == "status":
                record = self.status(message.get("job_id", ""))
                return ok_response(job=record.to_wire())
            if op == "metrics":
                return ok_response(metrics=self.metrics_snapshot())
            if op == "drain":
                snapshot = await self.drain()
                return ok_response(metrics=snapshot)
            raise ProtocolError(f"unknown op {op!r}")
        except AdmissionRejected as exc:
            return error_response(exc.code, str(exc), depth=exc.depth, capacity=exc.capacity)
        except ProtocolError as exc:
            return error_response("bad_request", str(exc))
        except ReproError as exc:
            return error_response("internal", f"{type(exc).__name__}: {exc}")
