"""Asyncio client for the scheduling service's line protocol.

Used by the load generator, the CI smoke scripts and the service tests;
applications embedding the service in-process can skip the socket and
call :class:`~repro.serve.server.SchedulingService` directly.

Resilience built in:

* :meth:`ServiceClient.wait` polls with capped exponential backoff
  instead of a fixed interval, and ``timeout=None`` means *no* timeout
  machinery at all (the poll loop is not wrapped in ``wait_for``);
* :meth:`ServiceClient.submit_with_retry` retries transient failures —
  typed ``queue_full`` backpressure and dropped connections — with
  exponential backoff plus *full jitter* (``uniform(0, min(cap, base·2ⁿ))``)
  from an injectable RNG, so chaos tests replay identical schedules.
  The default jitter source is the seed-derived
  :func:`repro.sim.rng.pyrandom` substream ``("serve.client", "retry")``
  — byte-identical replay by construction, never entropy-seeded.
  ``draining`` rejections are never retried: they cannot succeed.
* :meth:`ServiceClient.reconnect` re-dials under a **capped attempt
  budget** with the same full-jitter backoff; a permanently dead
  endpoint fails fast with the typed :class:`ReconnectExhausted`
  (carrying the attempt count and last error) instead of looping
  forever against a machine that is never coming back.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Mapping

from repro.errors import ServeError
from repro.sim.rng import pyrandom

from repro.serve.protocol import (
    AdmissionRejected,
    JobRequest,
    ProtocolError,
    raise_for_error,
    read_message,
    write_message,
)

__all__ = ["ReconnectExhausted", "ServiceClient"]

#: Connection-level failures worth a reconnect-and-retry (covers reset,
#: refused, aborted and broken-pipe; ``OSError`` catches resolver and
#: socket-level failures raised by ``open_connection`` itself).
_CONNECTION_ERRORS = (ConnectionError,)
_DIAL_ERRORS = (ConnectionError, OSError)


class ReconnectExhausted(ServeError):
    """The reconnect attempt budget ran out: the endpoint stayed dead.

    Carries how many dials were attempted and the last connection error,
    so callers (and the load generator's failure accounting) can tell a
    dead endpoint from a transient blip without parsing messages.
    """

    code = "reconnect_exhausted"

    def __init__(self, message: str, *, attempts: int, last_error: str):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class ServiceClient:
    """One connection to a running service; not safe for concurrent use —
    open one client per submitting coroutine (they are cheap)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str | None = None,
        port: int | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def reconnect(
        self,
        *,
        max_attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], Any] = asyncio.sleep,
    ) -> None:
        """Drop the current connection and dial the service again.

        Dials up to ``max_attempts`` times with the same full-jitter
        backoff schedule as :meth:`submit_with_retry` (the n-th retry
        sleeps ``uniform(0, min(max_delay, base_delay * 2**n))``); when
        the budget runs out, raises :class:`ReconnectExhausted` so
        callers fail fast on a dead endpoint instead of spinning.

        Only available on clients built via :meth:`connect` (which know
        their address); raises :class:`ProtocolError` otherwise.
        """
        if self._host is None or self._port is None:
            raise ProtocolError("client has no remembered address to reconnect to")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if rng is None:
            rng = pyrandom(0, "serve.client", "reconnect")
        await self.close()
        last_error = "unknown"
        for attempt in range(max_attempts):
            if attempt > 0:
                bound = min(max_delay, base_delay * (2.0 ** attempt))
                await sleep(rng.uniform(0.0, bound))
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self._host, self._port
                )
                return
            except _DIAL_ERRORS as exc:
                last_error = f"{type(exc).__name__}: {exc}"
        raise ReconnectExhausted(
            f"gave up reconnecting to {self._host}:{self._port} "
            f"after {max_attempts} attempts ({last_error})",
            attempts=max_attempts,
            last_error=last_error,
        )

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One request/response round trip; raises the typed error on nok."""
        await write_message(self._writer, payload)
        response = await read_message(self._reader)
        if response is None:
            raise ProtocolError("service closed the connection mid-request")
        return raise_for_error(response)

    # ------------------------------------------------------------------
    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def submit(self, request: JobRequest) -> str:
        """Submit one job; returns its id.  Raises
        :class:`~repro.serve.protocol.AdmissionRejected` on backpressure."""
        response = await self.request({"op": "submit", "job": request.to_wire()})
        return response["job_id"]

    async def submit_with_retry(
        self,
        request: JobRequest,
        *,
        max_retries: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], Any] = asyncio.sleep,
    ) -> str:
        """Submit with exponential backoff + full jitter on transient failure.

        Retries typed ``queue_full`` rejections and connection drops
        (reconnecting first) up to ``max_retries`` times; the n-th retry
        sleeps ``uniform(0, min(max_delay, base_delay * 2**n))``.
        ``draining`` rejections and protocol errors are raised immediately.
        """
        if rng is None:
            rng = pyrandom(0, "serve.client", "retry")
        attempt = 0
        while True:
            try:
                return await self.submit(request)
            except AdmissionRejected as exc:
                if exc.code != "queue_full" or attempt >= max_retries:
                    raise
            except _CONNECTION_ERRORS:
                if attempt >= max_retries:
                    raise
                await self.reconnect()
            attempt += 1
            bound = min(max_delay, base_delay * (2.0 ** attempt))
            await sleep(rng.uniform(0.0, bound))

    async def status(self, job_id: str) -> dict[str, Any]:
        response = await self.request({"op": "status", "job_id": job_id})
        return response["job"]

    async def wait(
        self,
        job_id: str,
        *,
        poll_interval: float = 0.02,
        max_poll_interval: float = 0.5,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its record.

        The poll interval starts at ``poll_interval`` and doubles up to
        ``max_poll_interval``, so long waits stop hammering the service.
        ``timeout=None`` polls forever with no ``wait_for`` wrapper at all.
        """

        async def _poll() -> dict[str, Any]:
            interval = poll_interval
            while True:
                job = await self.status(job_id)
                if job["state"] in ("completed", "failed"):
                    return job
                await asyncio.sleep(interval)
                interval = min(interval * 2.0, max_poll_interval)

        if timeout is None:
            return await _poll()
        return await asyncio.wait_for(_poll(), timeout)

    async def metrics(self) -> dict[str, Any]:
        response = await self.request({"op": "metrics"})
        return response["metrics"]

    async def drain(self) -> dict[str, Any]:
        """Ask the service to drain gracefully; returns the final snapshot."""
        response = await self.request({"op": "drain"})
        return response["metrics"]
