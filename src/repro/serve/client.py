"""Asyncio client for the scheduling service's line protocol.

Used by the load generator, the CI smoke script and the service tests;
applications embedding the service in-process can skip the socket and
call :class:`~repro.serve.server.SchedulingService` directly.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.serve.protocol import (
    JobRequest,
    ProtocolError,
    raise_for_error,
    read_message,
    write_message,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running service; not safe for concurrent use —
    open one client per submitting coroutine (they are cheap)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One request/response round trip; raises the typed error on nok."""
        await write_message(self._writer, payload)
        response = await read_message(self._reader)
        if response is None:
            raise ProtocolError("service closed the connection mid-request")
        return raise_for_error(response)

    # ------------------------------------------------------------------
    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def submit(self, request: JobRequest) -> str:
        """Submit one job; returns its id.  Raises
        :class:`~repro.serve.protocol.AdmissionRejected` on backpressure."""
        response = await self.request({"op": "submit", "job": request.to_wire()})
        return response["job_id"]

    async def status(self, job_id: str) -> dict[str, Any]:
        response = await self.request({"op": "status", "job_id": job_id})
        return response["job"]

    async def wait(
        self, job_id: str, *, poll_interval: float = 0.02, timeout: float | None = None
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its record."""

        async def _poll() -> dict[str, Any]:
            while True:
                job = await self.status(job_id)
                if job["state"] in ("completed", "failed"):
                    return job
                await asyncio.sleep(poll_interval)

        if timeout is None:
            return await _poll()
        return await asyncio.wait_for(_poll(), timeout)

    async def metrics(self) -> dict[str, Any]:
        response = await self.request({"op": "metrics"})
        return response["metrics"]

    async def drain(self) -> dict[str, Any]:
        """Ask the service to drain gracefully; returns the final snapshot."""
        response = await self.request({"op": "drain"})
        return response["metrics"]
