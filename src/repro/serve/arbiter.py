"""Global NUMA-node arbitration for concurrent jobs.

Two layers:

* :class:`LeaseLedger` — pure, synchronous bookkeeping of which NUMA
  nodes are free and which job leases which disjoint node subset.  Grant
  selection is *topology-proximate*: the lease grows outward from a seed
  node along the machine's distance matrix (same-socket nodes before
  cross-socket ones), and a caller-supplied ``preferred`` node — typically
  the fastest node from the tenant's previous PTT history — seeds the
  growth.  Being pure state, the ledger is what the Hypothesis property
  tests drive.

* :class:`NodeArbiter` — the asyncio wrapper adding a strict-FIFO wait
  queue on top: a job blocks in :meth:`NodeArbiter.acquire` until it is
  at the head of the line *and* enough nodes are free.  Head-of-line
  blocking is deliberate — it trades a little packing efficiency for a
  hard no-starvation guarantee (no later, smaller job can overtake a
  waiting large one indefinitely).

Invariants (property-tested):

* active leases are pairwise disjoint;
* every leased node belongs to the machine's node set;
* free ∪ leased is exactly the machine's node set at all times;
* grants happen in submission order (strict FIFO ⇒ no starvation).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.serve.protocol import LeaseError
from repro.topology.affinity import NodeMask
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology

__all__ = ["Lease", "LeaseLedger", "NodeArbiter"]


@dataclass(frozen=True)
class Lease:
    """One active grant: ``job_id`` exclusively owns ``mask``'s nodes."""

    job_id: str
    mask: NodeMask

    @property
    def nodes(self) -> list[int]:
        return self.mask.indices()


class LeaseLedger:
    """Synchronous free/leased bookkeeping with topology-aware growth."""

    def __init__(self, topology: MachineTopology, distances: DistanceMatrix | None = None):
        if distances is None:
            distances = DistanceMatrix.from_topology(topology)
        if distances.num_nodes != topology.num_nodes:
            raise LeaseError(
                f"distance matrix covers {distances.num_nodes} nodes but the "
                f"machine has {topology.num_nodes}"
            )
        self.topology = topology
        self.distances = distances
        self._free: set[int] = set(topology.node_ids())
        self._leases: dict[str, Lease] = {}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def free_nodes(self) -> list[int]:
        return sorted(self._free)

    def leases(self) -> dict[str, Lease]:
        """Snapshot of all active leases."""
        return dict(self._leases)

    def lease_of(self, job_id: str) -> Lease | None:
        return self._leases.get(job_id)

    def lease_map(self) -> dict[int, str | None]:
        """Per-node owner map: node id → holding job id (or ``None``)."""
        owner: dict[int, str | None] = {n: None for n in self.topology.node_ids()}
        for lease in self._leases.values():
            for node in lease.mask.indices():
                owner[node] = lease.job_id
        return owner

    def can_grant(self, nodes_wanted: int) -> bool:
        self._check_wanted(nodes_wanted)
        return nodes_wanted <= len(self._free)

    # ------------------------------------------------------------------
    def grant(
        self, job_id: str, nodes_wanted: int, preferred: int | None = None
    ) -> NodeMask | None:
        """Try to lease ``nodes_wanted`` disjoint nodes to ``job_id``.

        Returns the granted mask, or ``None`` when not enough nodes are
        free (the caller keeps the job waiting).  Raises
        :class:`LeaseError` for requests that can never succeed.
        """
        self._check_wanted(nodes_wanted)
        if job_id in self._leases:
            raise LeaseError(f"job {job_id!r} already holds a lease")
        if preferred is not None and not (0 <= preferred < self.num_nodes):
            raise LeaseError(
                f"preferred node {preferred} outside the machine's "
                f"{self.num_nodes}-node set"
            )
        if nodes_wanted > len(self._free):
            return None
        seed = self._seed_node(preferred)
        chosen = self._grow(seed, nodes_wanted)
        mask = NodeMask.from_indices(chosen, self.num_nodes)
        self._free -= set(chosen)
        self._leases[job_id] = Lease(job_id=job_id, mask=mask)
        return mask

    def release(self, job_id: str) -> NodeMask:
        """Return ``job_id``'s nodes to the free pool."""
        lease = self._leases.pop(job_id, None)
        if lease is None:
            raise LeaseError(f"job {job_id!r} holds no lease")
        self._free |= set(lease.mask.indices())
        return lease.mask

    # ------------------------------------------------------------------
    def _seed_node(self, preferred: int | None) -> int:
        """Where lease growth starts: the preferred node if free, else the
        free node nearest to it, else the lowest free node id."""
        assert self._free
        if preferred is None:
            return min(self._free)
        if preferred in self._free:
            return preferred
        row = self.distances.matrix[preferred]
        return min(self._free, key=lambda n: (float(row[n]), n))

    def _grow(self, seed: int, count: int) -> list[int]:
        """Topology-proximate growth: free nodes by distance from the seed
        (the seed first, then same-socket before cross-socket), ties by id."""
        row = self.distances.matrix[seed]
        ordered = sorted(self._free, key=lambda n: (float(row[n]), n != seed, n))
        return ordered[:count]

    def _check_wanted(self, nodes_wanted: int) -> None:
        if not isinstance(nodes_wanted, int) or nodes_wanted < 1:
            raise LeaseError(f"a lease needs at least one node, got {nodes_wanted!r}")
        if nodes_wanted > self.num_nodes:
            raise LeaseError(
                f"lease of {nodes_wanted} node(s) can never fit a "
                f"{self.num_nodes}-node machine"
            )


class NodeArbiter:
    """Asyncio arbiter: strict-FIFO waiting on top of a :class:`LeaseLedger`."""

    def __init__(self, ledger: LeaseLedger):
        self.ledger = ledger
        self._cond = asyncio.Condition()
        self._line: deque[str] = deque()

    @property
    def waiting(self) -> list[str]:
        """Job ids currently blocked in :meth:`acquire`, oldest first."""
        return list(self._line)

    async def acquire(
        self, job_id: str, nodes_wanted: int, preferred: int | None = None
    ) -> NodeMask:
        """Block until ``job_id`` heads the line and its lease fits.

        Impossible requests (more nodes than the machine has) raise
        immediately instead of deadlocking the line.
        """
        # validate before queueing so a hopeless request never blocks others
        self.ledger._check_wanted(nodes_wanted)
        async with self._cond:
            self._line.append(job_id)
            try:
                await self._cond.wait_for(
                    lambda: self._line[0] == job_id
                    and self.ledger.can_grant(nodes_wanted)
                )
                mask = self.ledger.grant(job_id, nodes_wanted, preferred)
                assert mask is not None  # guaranteed by the wait predicate
            finally:
                self._line.remove(job_id)
                # the head changed (grant or cancellation): wake the next waiter
                self._cond.notify_all()
            return mask

    async def release(self, job_id: str) -> NodeMask:
        """Free ``job_id``'s nodes and wake whoever can now be granted."""
        async with self._cond:
            mask = self.ledger.release(job_id)
            self._cond.notify_all()
            return mask

    async def reclaim(self, job_id: str) -> NodeMask | None:
        """Take back a lease whose owner died (crash, disconnect).

        Unlike :meth:`release` this tolerates a job that never got (or
        already returned) its lease — the recovery path cannot know how
        far the owner got before dying.  Returns the reclaimed mask, or
        ``None`` when there was nothing to reclaim.
        """
        async with self._cond:
            if self.ledger.lease_of(job_id) is None:
                return None
            mask = self.ledger.release(job_id)
            self._cond.notify_all()
            return mask
