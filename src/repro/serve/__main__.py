"""Run the scheduling service: ``python -m repro.serve [options]``.

Examples::

    python -m repro.serve --machine small --port 7077
    python -m repro.serve --queue-capacity 32 --cache-dir .cache
    python -m repro.serve --snapshot-out metrics.json   # final snapshot

The server prints its bound address on startup and serves until
interrupted.  SIGINT *and* SIGTERM drain gracefully: admitted jobs
finish, new submissions are rejected with the typed ``draining`` error,
and (with ``--snapshot-out``) a final metrics snapshot is written
atomically — the snapshot's job counters always conserve
(``submitted == completed + failed``, nothing in flight after a drain).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.exp.cliopts import (
    add_campaign_arguments,
    add_machine_argument,
    config_from_args,
    resolve_machine,
)
from repro.serve.faults import FaultPlan
from repro.serve.server import SchedulingService

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant taskloop scheduling service on one "
        "simulated NUMA machine.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7077, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        help="bounded admission queue size; submissions beyond it are "
        "rejected with the typed queue_full error",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="concurrent job slots (default: one per NUMA node)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempt budget per job: crashes/transient errors requeue the "
        "job until the budget is exhausted (then a typed JobFailed)",
    )
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="running-time deadline applied to jobs that set none; the "
        "watchdog cancels overruns (default: no deadline)",
    )
    parser.add_argument(
        "--fault-spec",
        default=None,
        metavar="SPEC",
        help='inject a seeded fault plan, e.g. "crash=0.1,transient=0.2" '
        "(chaos testing against a live server)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="fault plan RNG seed (default 0)",
    )
    parser.add_argument(
        "--snapshot-out",
        default=None,
        metavar="PATH",
        help="after the drain, write the final metrics snapshot to PATH "
        "as JSON (atomic tmp-file + rename write)",
    )
    add_machine_argument(parser)
    # campaign flags set the *defaults* jobs inherit (seeds, cache, noise)
    add_campaign_arguments(parser)
    return parser


async def _serve(args: argparse.Namespace) -> int:
    plan = None
    if args.fault_spec is not None:
        plan = FaultPlan.from_spec(args.fault_spec, seed=args.fault_seed)
    service = SchedulingService(
        resolve_machine(args.machine),
        config=config_from_args(args, seeds_default=1),
        queue_capacity=args.queue_capacity,
        workers=args.workers,
        fault_plan=plan,
        max_attempts=args.max_attempts,
        default_deadline_s=args.default_deadline,
    )
    host, port = await service.start(args.host, args.port)
    # signal → event: the handler runs on the loop, so the drain (and the
    # final snapshot write) happen in ordinary task context, not inside a
    # signal frame.  Installed before the readiness line is printed — a
    # supervisor may SIGTERM the instant it sees the address.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix event loop: ctrl-c falls back to KeyboardInterrupt
    print(f"serving {service.topology.describe()}")
    print(f"listening on {host}:{port}; SIGINT/SIGTERM drain gracefully", flush=True)
    try:
        waits = [asyncio.ensure_future(service._drained.wait()),
                 asyncio.ensure_future(stop.wait())]
        try:
            await asyncio.wait(waits, return_when=asyncio.FIRST_COMPLETED)
        except (KeyboardInterrupt, asyncio.CancelledError):  # repro: noqa EXC001 -- top of the CLI: ctrl-c *is* the drain signal; nothing above this frame needs the cancellation, and re-raising would traceback at the terminal
            pass
        finally:
            for w in waits:
                w.cancel()
        print("draining: finishing admitted jobs, rejecting new ones", flush=True)
        snapshot = await service.drain()
        jobs = snapshot["jobs"]
        print(
            f"drained: {jobs['completed']} completed, {jobs['failed']} failed, "
            f"{jobs['rejected_total']} rejected"
        )
        if args.snapshot_out:
            out = service.persist_snapshot(args.snapshot_out)
            print(f"final metrics snapshot written to {out}")
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        return asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
