"""Run the scheduling service: ``python -m repro.serve [options]``.

Examples::

    python -m repro.serve --machine small --port 7077
    python -m repro.serve --queue-capacity 32 --cache-dir .cache

The server prints its bound address on startup and serves until
interrupted (SIGINT drains gracefully: admitted jobs finish, new
submissions are rejected with the typed ``draining`` error).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.exp.cliopts import (
    add_campaign_arguments,
    add_machine_argument,
    config_from_args,
    resolve_machine,
)
from repro.serve.server import SchedulingService

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant taskloop scheduling service on one "
        "simulated NUMA machine.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7077, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        help="bounded admission queue size; submissions beyond it are "
        "rejected with the typed queue_full error",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="concurrent job slots (default: one per NUMA node)",
    )
    add_machine_argument(parser)
    # campaign flags set the *defaults* jobs inherit (seeds, cache, noise)
    add_campaign_arguments(parser)
    return parser


async def _serve(args: argparse.Namespace) -> int:
    service = SchedulingService(
        resolve_machine(args.machine),
        config=config_from_args(args, seeds_default=1),
        queue_capacity=args.queue_capacity,
        workers=args.workers,
    )
    host, port = await service.start(args.host, args.port)
    print(f"serving {service.topology.describe()}")
    print(f"listening on {host}:{port}; ctrl-c drains gracefully", flush=True)
    try:
        await service._drained.wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        print("draining: finishing admitted jobs, rejecting new ones", flush=True)
        snapshot = await service.drain()
        jobs = snapshot["jobs"]
        print(
            f"drained: {jobs['completed']} completed, {jobs['failed']} failed, "
            f"{jobs['rejected_total']} rejected"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        return asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
