"""The federation router: topology-aware placement across N shards.

:class:`FederationRouter` is the tier above N in-process
:class:`~repro.serve.server.SchedulingService` shards.  Per submission it

1. computes the tenant's deterministic ring preference
   (:class:`~repro.serve.federation.ring.ConsistentHashRing`, seeded
   virtual nodes),
2. re-orders it by warm-PTT affinity and saturation
   (:class:`~repro.serve.federation.affinity.AffinityPolicy`),
3. places the job on the first shard that admits it (failing over past
   ``queue_full`` rejections), and
4. applies the consequences: a seeded shard crash due at this placement
   count kills the shard (leases reclaimed, every non-terminal job
   requeued through the router onto the next-preferred survivor), and a
   shard past the admission high-water mark sheds its *youngest* waiting
   jobs onto the ring's next choice.

Job identity is two-level: clients see stable federation ids
(``fed-00001``); each placement maps the fed id to the current
``(shard, local job id)`` pair, and migration or shard death re-points
the mapping without the client ever noticing.  The strict-FIFO
no-starvation invariant holds *per shard* throughout: rebalance only
ever removes queue tails, never overtakes a head-of-line waiter.

Everything the router decides is a pure function of the submission
sequence plus the seeds — placement order, crash points and migration
targets never consult the wall clock — which is what makes a federated
chaos run byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve.federation.affinity import AffinityPolicy
from repro.serve.federation.faults import SHARD_CRASH, ShardFaultPlan
from repro.serve.federation.ring import ConsistentHashRing
from repro.serve.federation.shard import ShardHandle
from repro.serve.protocol import (
    AdmissionRejected,
    JobRequest,
    ProtocolError,
)

__all__ = ["FederatedJob", "FederationRouter"]


@dataclass
class FederatedJob:
    """Router-side record of one submission: stable id, mobile placement."""

    fed_id: str
    tenant: str
    shard_id: str
    local_job_id: str
    #: Every shard that ever held the job, in placement order (the first
    #: entry is the initial placement; later entries are migrations or
    #: post-crash requeues).
    placements: list[str] = field(default_factory=list)

    @property
    def migrations(self) -> int:
        return len(self.placements) - 1

    def to_wire(self) -> dict[str, Any]:
        return {
            "fed_id": self.fed_id,
            "tenant": self.tenant,
            "shard": self.shard_id,
            "local_job_id": self.local_job_id,
            "placements": list(self.placements),
            "migrations": self.migrations,
        }


class FederationRouter:
    """Consistent-hash + affinity placement over a fleet of shards."""

    def __init__(
        self,
        shards: Sequence[ShardHandle],
        *,
        seed: int = 0,
        vnodes: int = 64,
        high_water: int | None = None,
        shard_fault_plan: ShardFaultPlan | None = None,
    ):
        if not shards:
            raise ProtocolError("a federation needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ProtocolError(f"duplicate shard ids: {ids}")
        if high_water is not None and high_water < 1:
            raise ProtocolError(
                f"high_water must be a positive queue depth, got {high_water}"
            )
        self.shards: dict[str, ShardHandle] = {s.shard_id: s for s in shards}
        self.ring = ConsistentHashRing(ids, seed=seed, vnodes=vnodes)
        self.affinity = AffinityPolicy()
        self.high_water = high_water
        self.shard_fault_plan = shard_fault_plan
        self.jobs: dict[str, FederatedJob] = {}
        self._local_index: dict[tuple[str, str], str] = {}
        self._fed_counter = 0
        # router-level counters (the federated snapshot's `router` section)
        self.placements = 0
        self.failover_placements = 0
        self.migrations = 0
        self.shard_deaths = 0
        self.rebalanced_tenants = 0
        self.requeued_jobs = 0

    # ------------------------------------------------------------------
    # shard roster
    # ------------------------------------------------------------------
    @property
    def live_shards(self) -> list[ShardHandle]:
        """Alive shards in deterministic (id-sorted) order."""
        return [self.shards[k] for k in sorted(self.shards) if self.shards[k].alive]

    def _saturated_ids(self) -> set[str]:
        if self.high_water is None:
            return set()
        return {s.shard_id for s in self.live_shards if s.depth >= self.high_water}

    def _placement_order(self, tenant: str) -> list[ShardHandle]:
        order = self.affinity.order(
            tenant,
            self.ring.preference(tenant),
            alive={s.shard_id for s in self.live_shards},
            saturated=self._saturated_ids(),
        )
        return [self.shards[sid] for sid in order]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, expose_shards: bool = False, host: str = "127.0.0.1") -> None:
        """Start every shard's worker pool (and listeners when exposed)."""
        for shard in self.live_shards:
            await shard.start(expose=expose_shards, host=host)

    async def drain(self) -> dict[str, Any]:
        """Gracefully drain every live shard; returns the federated snapshot."""
        for shard in self.live_shards:
            await shard.service.drain()
        return self.metrics_snapshot()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> FederatedJob:
        """Place one tenant job on the fleet; apply any due consequences.

        Raises :class:`ProtocolError` for requests no shard can ever run
        and :class:`AdmissionRejected` when every live shard's admission
        queue refuses the job (fleet-wide backpressure).
        """
        order = self._placement_order(request.tenant)
        if not order:
            raise AdmissionRejected(
                "draining", "the federation has no live shards"
            )
        rejections: list[AdmissionRejected] = []
        placed: ShardHandle | None = None
        record = None
        for rank, shard in enumerate(order):
            try:
                record = shard.service.submit(request)
            except AdmissionRejected as exc:
                rejections.append(exc)
                continue
            placed = shard
            if rank > 0:
                self.failover_placements += 1
            break
        if placed is None or record is None:
            assert rejections
            if all(exc.code == "draining" for exc in rejections):
                raise AdmissionRejected(
                    "draining", "every live shard is draining"
                )
            raise AdmissionRejected(
                "queue_full",
                "every live shard's admission queue is saturated "
                f"({len(order)} shard(s) tried)",
                depth=sum(s.depth for s in order),
                capacity=sum(s.service.admission.capacity for s in order),
            )

        self._fed_counter += 1
        job = FederatedJob(
            fed_id=f"fed-{self._fed_counter:05d}",
            tenant=request.tenant,
            shard_id=placed.shard_id,
            local_job_id=record.job_id,
            placements=[placed.shard_id],
        )
        self.jobs[job.fed_id] = job
        self._local_index[(placed.shard_id, record.job_id)] = job.fed_id
        self.affinity.note_placement(request.tenant, placed.shard_id)
        self.placements += 1
        placed.placements += 1

        await self._apply_consequences(placed)
        return job

    async def _apply_consequences(self, shard: ShardHandle) -> None:
        """Seeded crash + saturation rebalance due after a placement.

        Requeueing a crashed shard's orphans counts as placements on the
        adopting shards, so one death can (deterministically) trigger the
        next — the worklist runs until the fleet is quiescent.  The last
        live shard never crashes: a federation with work in flight must
        keep at least one machine to conserve its jobs on.
        """
        worklist: list[ShardHandle] = [shard]
        while worklist:
            current = worklist.pop(0)
            if not current.alive:
                continue
            plan = self.shard_fault_plan
            if (
                plan is not None
                and plan.should_crash(current.shard_id, current.placements)
                and len(self.live_shards) > 1
            ):
                touched = await self._kill_shard(current)
                worklist.extend(touched)
        if self.high_water is not None:
            # scan the whole fleet, not just the placed shard: an adoption
            # burst can leave a *different* shard over the mark, and it
            # would otherwise keep its backlog while relief shards idle
            for candidate in self.live_shards:
                if candidate.depth > self.high_water:
                    self._rebalance(candidate)

    # ------------------------------------------------------------------
    # shard death
    # ------------------------------------------------------------------
    async def _kill_shard(self, shard: ShardHandle) -> list[ShardHandle]:
        """Apply a due shard crash; returns the shards that adopted work."""
        if self.shard_fault_plan is not None:
            self.shard_fault_plan.record_crash(shard.shard_id)
        self.shard_deaths += 1
        orphans = await shard.kill()
        self.ring.remove(shard.shard_id)
        cold_tenants = set(self.affinity.forget_shard(shard.shard_id))
        adopted: list[ShardHandle] = []
        # requeue in fed-submission order so replays adopt identically
        fed_order = sorted(
            (self._local_index[(shard.shard_id, r.job_id)], r) for r in orphans
        )
        for fed_id, orphan in fed_order:
            target = self._adopt(self.jobs[fed_id], orphan.request)
            cold_tenants.add(orphan.request.tenant)
            if target not in adopted:
                adopted.append(target)
        self.rebalanced_tenants += len(cold_tenants)
        return adopted

    def _adopt(self, job: FederatedJob, request: JobRequest) -> ShardHandle:
        """Re-place one orphaned/evicted job on the best surviving shard."""
        order = self._placement_order(request.tenant)
        assert order, "guarded: the last live shard is never killed"
        target = order[0]
        record = target.service.adopt(request)
        del self._local_index[(job.shard_id, job.local_job_id)]
        job.shard_id = target.shard_id
        job.local_job_id = record.job_id
        job.placements.append(target.shard_id)
        self._local_index[(target.shard_id, record.job_id)] = job.fed_id
        self.affinity.note_placement(request.tenant, target.shard_id)
        self.requeued_jobs += 1
        target.placements += 1
        return target

    # ------------------------------------------------------------------
    # saturation rebalance
    # ------------------------------------------------------------------
    def _rebalance(self, shard: ShardHandle) -> None:
        """Shed the youngest waiting jobs of a shard over the high-water mark.

        Only runs when another live shard sits *below* the mark — moving
        saturation around the ring would be churn, not relief.  Evicted
        jobs re-enter through the normal affinity order (minus the shard
        they just left), so a warm tenant still lands as close to its
        history as the fleet allows.
        """
        assert self.high_water is not None
        excess = shard.depth - self.high_water
        if excess <= 0:
            return
        relief = [
            s for s in self.live_shards
            if s.shard_id != shard.shard_id and s.depth < self.high_water
        ]
        if not relief:
            return
        evicted = shard.service.evict_queued(excess)
        moved_tenants: set[str] = set()
        for record in evicted:
            fed_id = self._local_index[(shard.shard_id, record.job_id)]
            job = self.jobs[fed_id]
            # never bounce a job straight back: drop the source from its
            # home so the affinity order starts at the ring's next choice
            if self.affinity.home_of(record.request.tenant) == shard.shard_id:
                self.affinity.note_placement(
                    record.request.tenant,
                    self._next_preferred(record.request.tenant, shard.shard_id),
                )
            self._adopt(job, record.request)
            self.migrations += 1
            moved_tenants.add(record.request.tenant)
        self.rebalanced_tenants += len(moved_tenants)

    def _next_preferred(self, tenant: str, excluding: str) -> str:
        for shard_id in self.ring.preference(tenant):
            if shard_id != excluding and self.shards[shard_id].alive:
                return shard_id
        return excluding  # single-shard fleet: nowhere else to point

    # ------------------------------------------------------------------
    # lookup & metrics
    # ------------------------------------------------------------------
    def status(self, fed_id: str) -> dict[str, Any]:
        """The job's wire record, with federation identity spliced in."""
        job = self.jobs.get(fed_id)
        if job is None:
            raise ProtocolError(f"unknown job {fed_id!r}")
        record = self.shards[job.shard_id].service.status(job.local_job_id)
        wire = record.to_wire()
        wire["job_id"] = job.fed_id
        wire["shard"] = job.shard_id
        wire["placements"] = list(job.placements)
        wire["migrations"] = job.migrations
        return wire

    def job_states(self) -> dict[str, int]:
        """Fed-level state tally (the conservation the smoke asserts)."""
        tally = {"queued": 0, "running": 0, "completed": 0, "failed": 0}
        for job in self.jobs.values():
            record = self.shards[job.shard_id].service.records.get(job.local_job_id)
            if record is not None:
                tally[record.state.value] += 1
        return tally

    def metrics_snapshot(self) -> dict[str, Any]:
        """Router counters + ring + every shard's own snapshot."""
        states = self.job_states()
        return {
            "router": {
                "submitted": self._fed_counter,
                "placements": self.placements,
                "failover_placements": self.failover_placements,
                "migrations": self.migrations,
                "shard_deaths": self.shard_deaths,
                "rebalanced_tenants": self.rebalanced_tenants,
                "requeued_jobs": self.requeued_jobs,
                "high_water": self.high_water,
                "job_states": states,
                "ring": self.ring.describe(),
                "tenant_homes": self.affinity.homes(),
                "shard_fault_plan": (
                    self.shard_fault_plan.to_wire()
                    if self.shard_fault_plan is not None
                    else None
                ),
            },
            "fleet": {
                "shards": len(self.shards),
                "alive": [s.shard_id for s in self.live_shards],
                "dead": sorted(
                    sid for sid, s in self.shards.items() if not s.alive
                ),
            },
            "shards": {
                sid: self.shards[sid].service.metrics_snapshot()
                for sid in sorted(self.shards)
            },
            "jobs": {
                fed_id: self._job_wire(job)
                for fed_id, job in sorted(self.jobs.items())
            },
        }

    def _job_wire(self, job: FederatedJob) -> dict[str, Any]:
        wire = job.to_wire()
        record = self.shards[job.shard_id].service.records.get(job.local_job_id)
        wire["state"] = record.state.value if record is not None else None
        return wire
