"""The federation router: topology-aware placement across N shards.

:class:`FederationRouter` is the tier above N in-process
:class:`~repro.serve.server.SchedulingService` shards.  Per submission it

1. computes the tenant's deterministic ring preference
   (:class:`~repro.serve.federation.ring.ConsistentHashRing`, seeded
   virtual nodes),
2. re-orders it by warm-PTT affinity and saturation
   (:class:`~repro.serve.federation.affinity.AffinityPolicy`),
3. places the job on the first shard that admits it (failing over past
   ``queue_full`` rejections), and
4. applies the consequences: a seeded shard crash due at this placement
   count kills the shard (leases reclaimed, every non-terminal job
   requeued through the router onto the next-preferred survivor), and a
   shard past the admission high-water mark sheds its *youngest* waiting
   jobs onto the ring's next choice.

With a :class:`~repro.serve.federation.membership.Membership` attached,
the fleet becomes **self-healing**.  Seeded crashes turn *silent*: the
shard stops answering, its orphans stay stashed on the handle, and the
router only learns of the death when the failure detector confirms it —
after ``suspect_after`` missed heartbeat polls (SUSPECT, excluded from
new placements) and then ``confirm_after`` (DEAD).  Confirmation
triggers the recovery pipeline, in order: ring removal → **warm tenant
state migration** (the archived PTT checkpoints pulled at earlier
heartbeats are imported into each displaced tenant's new owner, and the
affinity home is re-pointed there so the tenant's next job starts warm)
→ stashed-orphan adoption (which lands on the freshly warmed owners) →
supervised respawn through
:class:`~repro.serve.federation.supervisor.ShardSupervisor`, readmitting
the shard at ``epoch + 1`` via the normal join path.  Tenants whose
shard died before their first checkpoint degrade gracefully to a fresh
bootstrap and are tallied under ``migrations_dropped``.

Job identity is two-level: clients see stable federation ids
(``fed-00001``); each placement maps the fed id to the current
``(instance, local job id)`` pair — *instance* being the epoch-qualified
shard identity, so a respawn can never collide with its dead
predecessor's job ids — and migration or shard death re-points the
mapping without the client ever noticing.  The strict-FIFO
no-starvation invariant holds *per shard* throughout: rebalance only
ever removes queue tails, never overtakes a head-of-line waiter.

Everything the router decides is a pure function of the submission
sequence plus the seeds — placement order, crash points, heartbeat
rounds and migration targets are all counted in logical placements,
never the wall clock — which is what makes a federated chaos run with
mid-flight deaths, respawns and live joins byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve.federation.affinity import AffinityPolicy
from repro.serve.federation.faults import SHARD_CRASH, ShardFaultPlan
from repro.serve.federation.membership import Membership
from repro.serve.federation.ring import ConsistentHashRing
from repro.serve.federation.shard import ShardHandle
from repro.serve.federation.supervisor import ShardSupervisor
from repro.serve.protocol import (
    AdmissionRejected,
    JobRequest,
    ProtocolError,
)

__all__ = ["FederatedJob", "FederationRouter"]


@dataclass
class FederatedJob:
    """Router-side record of one submission: stable id, mobile placement."""

    fed_id: str
    tenant: str
    shard_id: str  # epoch-qualified instance id of the current holder
    local_job_id: str
    #: Every shard that ever held the job, in placement order (the first
    #: entry is the initial placement; later entries are migrations or
    #: post-crash requeues).
    placements: list[str] = field(default_factory=list)

    @property
    def migrations(self) -> int:
        return len(self.placements) - 1

    def to_wire(self) -> dict[str, Any]:
        return {
            "fed_id": self.fed_id,
            "tenant": self.tenant,
            "shard": self.shard_id,
            "local_job_id": self.local_job_id,
            "placements": list(self.placements),
            "migrations": self.migrations,
        }


class FederationRouter:
    """Consistent-hash + affinity placement over a fleet of shards."""

    def __init__(
        self,
        shards: Sequence[ShardHandle],
        *,
        seed: int = 0,
        vnodes: int = 64,
        high_water: int | None = None,
        shard_fault_plan: ShardFaultPlan | None = None,
        membership: Membership | None = None,
        supervisor: ShardSupervisor | None = None,
    ):
        if not shards:
            raise ProtocolError("a federation needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ProtocolError(f"duplicate shard ids: {ids}")
        if high_water is not None and high_water < 1:
            raise ProtocolError(
                f"high_water must be a positive queue depth, got {high_water}"
            )
        if supervisor is not None and membership is None:
            raise ProtocolError(
                "a supervisor needs a membership layer: without a failure "
                "detector no death is ever confirmed, so nothing respawns"
            )
        #: Ring name → *current* incarnation.
        self.shards: dict[str, ShardHandle] = {s.shard_id: s for s in shards}
        #: Epoch-qualified instance id → every incarnation ever admitted
        #: (epoch 0 keeps the bare id, so pre-membership keys are stable).
        self.instances: dict[str, ShardHandle] = {s.instance_id: s for s in shards}
        self.ring = ConsistentHashRing(ids, seed=seed, vnodes=vnodes)
        self.affinity = AffinityPolicy()
        self.high_water = high_water
        self.shard_fault_plan = shard_fault_plan
        self.membership = membership
        self.supervisor = supervisor
        if membership is not None:
            for shard_id in sorted(self.shards):
                membership.register(
                    shard_id, epoch=self.shards[shard_id].epoch, at=0
                )
        self.jobs: dict[str, FederatedJob] = {}
        self._local_index: dict[tuple[str, str], str] = {}
        self._fed_counter = 0
        #: Last-heartbeat PTT checkpoints: (tenant, benchmark) → wire doc.
        #: This is the state that survives a shard death — anything the
        #: shard learned *after* its last heartbeat dies with it.
        self._state_archive: dict[tuple[str, str], dict[str, Any]] = {}
        # router-level counters (the federated snapshot's `router` section)
        self.placements = 0
        self.failover_placements = 0
        self.migrations = 0
        self.shard_deaths = 0
        self.rebalanced_tenants = 0
        self.requeued_jobs = 0
        # self-healing counters (the snapshot's `membership` section)
        self.heartbeats = 0
        self.migrations_completed = 0
        self.migrations_dropped = 0
        #: Every tenant-state migration decision, in order: tenant, the
        #: adopting shard (None for a drop), and the documents moved.
        self.migration_log: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # shard roster
    # ------------------------------------------------------------------
    @property
    def live_shards(self) -> list[ShardHandle]:
        """Alive shards in deterministic (id-sorted) order."""
        return [self.shards[k] for k in sorted(self.shards) if self.shards[k].alive]

    def _saturated_ids(self) -> set[str]:
        if self.high_water is None:
            return set()
        return {s.shard_id for s in self.live_shards if s.depth >= self.high_water}

    def _placement_order(self, tenant: str) -> list[ShardHandle]:
        placeable = {s.shard_id for s in self.live_shards}
        if self.membership is not None:
            # SUSPECT shards stay on the ring but take no new placements
            placeable -= set(self.membership.suspects())
        order = self.affinity.order(
            tenant,
            self.ring.preference(tenant),
            alive=placeable,
            saturated=self._saturated_ids(),
        )
        return [self.shards[sid] for sid in order]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, expose_shards: bool = False, host: str = "127.0.0.1") -> None:
        """Start every shard's worker pool (and listeners when exposed)."""
        for shard in self.live_shards:
            await shard.start(expose=expose_shards, host=host)

    async def drain(self) -> dict[str, Any]:
        """Gracefully drain every live shard; returns the federated snapshot.

        With membership enabled, detection is flushed first: a shard that
        crashed silently near the end of the run (after the last regular
        heartbeat) is still confirmed, migrated and respawned before the
        fleet drains, so no stashed orphan is ever left non-terminal.
        """
        if self.membership is not None:
            while self._undetected_crashes():
                await self._heartbeat()
        for shard in self.live_shards:
            await shard.service.drain()
        return self.metrics_snapshot()

    async def pump_detection(self) -> None:
        """Advance the failure detector outside the placement clock.

        The logical clock normally ticks on placements, which starves
        detection when closed-loop clients stop submitting because their
        in-flight jobs are stranded on a silently-crashed shard: no new
        placements, no heartbeats, no confirmation — a liveness deadlock.
        Status traffic calls this to run one poll round whenever an
        unconfirmed crash exists, so polling the very jobs a dead shard
        stranded is what drives their recovery.
        """
        if self.membership is not None and self._undetected_crashes():
            await self._heartbeat()

    def _undetected_crashes(self) -> list[str]:
        """Shards that are down but not yet confirmed by the detector."""
        assert self.membership is not None
        down = []
        for shard_id in sorted(self.shards):
            handle = self.shards[shard_id]
            record = self.membership.get(shard_id)
            if record is None or record.epoch != handle.epoch:
                continue
            if not handle.alive and record.state.value in ("alive", "suspect"):
                down.append(shard_id)
        return down

    async def join_shard(
        self,
        handle: ShardHandle,
        *,
        expose: bool = False,
        host: str = "127.0.0.1",
    ) -> None:
        """Live join: start a new shard and admit it to the fleet.

        The ring gains its virtual nodes (minimal remap: only tenants the
        new shard now owns move), and with membership enabled it starts
        being heartbeat-polled immediately.
        """
        await handle.start(expose=expose, host=host)
        self._admit(handle)

    def _admit(self, handle: ShardHandle) -> None:
        """Roster + ring + membership bookkeeping for a (re)joining shard."""
        current = self.shards.get(handle.shard_id)
        if current is not None and current.alive:
            raise ProtocolError(
                f"shard {handle.shard_id!r} is already in the fleet"
            )
        if handle.instance_id in self.instances:
            raise ProtocolError(
                f"instance {handle.instance_id!r} was already admitted once"
            )
        self.shards[handle.shard_id] = handle
        self.instances[handle.instance_id] = handle
        self.ring.add(handle.shard_id)
        if self.membership is not None:
            self.membership.register(
                handle.shard_id, epoch=handle.epoch, at=self.placements
            )

    async def leave_shard(self, shard_id: str) -> None:
        """Voluntary departure: clean handoff, nothing is lost.

        The leaving shard's *complete* tenant state (not just the dirty
        deltas) is archived before it stops, every displaced tenant
        migrates warm, and its queued/running jobs are adopted by the
        survivors.  ``migrations_dropped`` never moves on a leave — only
        a crash can lose an un-checkpointed tenant.
        """
        handle = self.shards.get(shard_id)
        if handle is None or not handle.alive:
            raise ProtocolError(f"shard {shard_id!r} is not in the fleet")
        if len(self.live_shards) <= 1:
            raise ProtocolError(
                "the last live shard cannot leave while the fleet holds jobs"
            )
        for doc in handle.service.tenant_state.export_all():
            self._state_archive[(doc["tenant"], doc["benchmark"])] = doc
        if self.membership is not None:
            self.membership.leave(shard_id, at=self.placements)
        orphans = await handle.kill()
        self.ring.remove(shard_id)
        displaced = self.affinity.forget_shard(shard_id)
        self._migrate_tenants(displaced, count_dropped=False)
        self._adopt_orphans(handle, orphans)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> FederatedJob:
        """Place one tenant job on the fleet; apply any due consequences.

        Raises :class:`ProtocolError` for requests no shard can ever run
        and :class:`AdmissionRejected` when every live shard's admission
        queue refuses the job (fleet-wide backpressure).
        """
        order = self._placement_order(request.tenant)
        if not order:
            raise AdmissionRejected(
                "draining", "the federation has no live shards"
            )
        rejections: list[AdmissionRejected] = []
        placed: ShardHandle | None = None
        record = None
        for rank, shard in enumerate(order):
            try:
                record = shard.service.submit(request)
            except AdmissionRejected as exc:
                rejections.append(exc)
                continue
            placed = shard
            if rank > 0:
                self.failover_placements += 1
            break
        if placed is None or record is None:
            assert rejections
            if all(exc.code == "draining" for exc in rejections):
                raise AdmissionRejected(
                    "draining", "every live shard is draining"
                )
            raise AdmissionRejected(
                "queue_full",
                "every live shard's admission queue is saturated "
                f"({len(order)} shard(s) tried)",
                depth=sum(s.depth for s in order),
                capacity=sum(s.service.admission.capacity for s in order),
            )

        self._fed_counter += 1
        job = FederatedJob(
            fed_id=f"fed-{self._fed_counter:05d}",
            tenant=request.tenant,
            shard_id=placed.instance_id,
            local_job_id=record.job_id,
            placements=[placed.instance_id],
        )
        self.jobs[job.fed_id] = job
        self._local_index[(placed.instance_id, record.job_id)] = job.fed_id
        self.affinity.note_placement(request.tenant, placed.shard_id)
        self.placements += 1
        placed.placements += 1

        await self._apply_consequences(placed)
        if self.membership is not None and self.membership.due(self.placements):
            await self._heartbeat()
        return job

    async def _apply_consequences(self, shard: ShardHandle) -> None:
        """Seeded crash + saturation rebalance due after a placement.

        Without membership (PR 7 semantics) a due crash is applied
        *loudly*: the router kills the shard and immediately requeues its
        orphans, and those adoption placements can deterministically
        trigger the next death — the worklist runs until the fleet is
        quiescent.  With membership, a due crash is *silent*: the shard
        just stops, and everything else — detection, migration, adoption,
        respawn — happens later through the heartbeat path.  The last
        live shard never crashes: a federation with work in flight must
        keep at least one machine to conserve its jobs on.
        """
        worklist: list[ShardHandle] = [shard]
        while worklist:
            current = worklist.pop(0)
            if not current.alive:
                continue
            plan = self.shard_fault_plan
            if (
                plan is not None
                and plan.should_crash(current.instance_id, current.placements)
                and len(self.live_shards) > 1
            ):
                if self.membership is not None:
                    plan.record_crash(current.instance_id)
                    self.shard_deaths += 1
                    await current.crash()
                else:
                    touched = await self._kill_shard(current)
                    worklist.extend(touched)
        if self.high_water is not None:
            # scan the whole fleet, not just the placed shard: an adoption
            # burst can leave a *different* shard over the mark, and it
            # would otherwise keep its backlog while relief shards idle
            for candidate in self.live_shards:
                if candidate.depth > self.high_water:
                    self._rebalance(candidate)

    # ------------------------------------------------------------------
    # self-healing: heartbeats, confirmed deaths, respawn
    # ------------------------------------------------------------------
    async def _heartbeat(self) -> None:
        """One failure-detector round at the current logical time.

        Responsive shards piggyback their dirty PTT checkpoints on the
        heartbeat reply (pulled into the router-side archive); shards
        that stay silent accumulate missed polls until the detector
        confirms them dead, at which point recovery runs.
        """
        assert self.membership is not None
        self.heartbeats += 1
        responders: list[str] = []
        for shard_id in sorted(self.shards):
            handle = self.shards[shard_id]
            if not handle.alive:
                continue
            responders.append(shard_id)
            for doc in handle.service.tenant_state.drain_dirty():
                self._state_archive[(doc["tenant"], doc["benchmark"])] = doc
        confirmed = self.membership.poll(responders, at=self.placements)
        for record in confirmed:
            await self._confirm_death(record.member_id, record.epoch)

    async def _confirm_death(self, shard_id: str, epoch: int) -> None:
        """Recovery pipeline for one confirmed-dead shard.

        Order matters: the ring drops the member first (so ownership
        re-resolves), then tenant state migrates and rehomes (so the
        orphan adoptions that follow land on the freshly warmed owners),
        and the supervised respawn runs last (the new incarnation starts
        empty — its predecessor's tenants already live elsewhere, warm).
        """
        handle = self.shards[shard_id]
        assert not handle.alive, "the detector confirmed a live shard dead"
        self.ring.remove(shard_id)
        displaced = self.affinity.forget_shard(shard_id)
        self._migrate_tenants(displaced, count_dropped=True)
        self._adopt_orphans(handle, handle.take_stashed_orphans())
        if self.supervisor is not None:
            respawned = await self.supervisor.respawn(
                shard_id, dead_epoch=epoch, at=self.placements
            )
            if respawned is not None:
                self._admit(respawned)

    def _migrate_tenants(self, tenants: Sequence[str], *, count_dropped: bool) -> None:
        """Move each displaced tenant's archived PTT state to its new owner.

        A tenant with at least one archived checkpoint is imported into
        the first shard of its (post-removal) placement order and rehomed
        there — its next job starts warm.  A tenant with *no* archive
        entries (the shard died before its first checkpoint) bootstraps
        fresh; on a crash that is tallied under ``migrations_dropped``.
        """
        for tenant in sorted(set(tenants)):
            docs = sorted(
                (key, doc)
                for key, doc in self._state_archive.items()
                if key[0] == tenant
            )
            if not docs:
                if count_dropped:
                    self.migrations_dropped += 1
                    self.migration_log.append(
                        {"tenant": tenant, "to": None, "docs": 0}
                    )
                continue
            order = self._placement_order(tenant)
            if not order:
                # fleet-wide outage: nowhere to put the state; keep it
                # archived for the next shard to join
                continue
            target = order[0]
            imported = 0
            for _, doc in docs:
                if target.service.import_tenant_state(doc):
                    imported += 1
            if imported:
                self.affinity.rehome(tenant, target.shard_id)
                self.migrations_completed += 1
                self.migration_log.append(
                    {"tenant": tenant, "to": target.shard_id, "docs": imported}
                )
            elif count_dropped:
                self.migrations_dropped += 1
                self.migration_log.append(
                    {"tenant": tenant, "to": None, "docs": 0}
                )

    def _adopt_orphans(self, source: ShardHandle, orphans: Sequence[Any]) -> None:
        """Requeue a dead/leaving shard's orphans in fed-submission order."""
        touched: set[str] = set()
        fed_order = sorted(
            (self._local_index[(source.instance_id, r.job_id)], r) for r in orphans
        )
        for fed_id, orphan in fed_order:
            self._adopt(self.jobs[fed_id], orphan.request)
            touched.add(orphan.request.tenant)
        self.rebalanced_tenants += len(touched)

    # ------------------------------------------------------------------
    # shard death (loud / pre-membership path)
    # ------------------------------------------------------------------
    async def _kill_shard(self, shard: ShardHandle) -> list[ShardHandle]:
        """Apply a due shard crash; returns the shards that adopted work."""
        if self.shard_fault_plan is not None:
            self.shard_fault_plan.record_crash(shard.instance_id)
        self.shard_deaths += 1
        orphans = await shard.kill()
        self.ring.remove(shard.shard_id)
        cold_tenants = set(self.affinity.forget_shard(shard.shard_id))
        adopted: list[ShardHandle] = []
        # requeue in fed-submission order so replays adopt identically
        fed_order = sorted(
            (self._local_index[(shard.instance_id, r.job_id)], r) for r in orphans
        )
        for fed_id, orphan in fed_order:
            target = self._adopt(self.jobs[fed_id], orphan.request)
            cold_tenants.add(orphan.request.tenant)
            if target not in adopted:
                adopted.append(target)
        self.rebalanced_tenants += len(cold_tenants)
        return adopted

    def _adopt(self, job: FederatedJob, request: JobRequest) -> ShardHandle:
        """Re-place one orphaned/evicted job on the best surviving shard."""
        order = self._placement_order(request.tenant)
        assert order, "guarded: the last live shard is never killed"
        target = order[0]
        record = target.service.adopt(request)
        del self._local_index[(job.shard_id, job.local_job_id)]
        job.shard_id = target.instance_id
        job.local_job_id = record.job_id
        job.placements.append(target.instance_id)
        self._local_index[(target.instance_id, record.job_id)] = job.fed_id
        self.affinity.note_placement(request.tenant, target.shard_id)
        self.requeued_jobs += 1
        target.placements += 1
        return target

    # ------------------------------------------------------------------
    # saturation rebalance
    # ------------------------------------------------------------------
    def _rebalance(self, shard: ShardHandle) -> None:
        """Shed the youngest waiting jobs of a shard over the high-water mark.

        Only runs when another live shard sits *below* the mark — moving
        saturation around the ring would be churn, not relief.  Evicted
        jobs re-enter through the normal affinity order (minus the shard
        they just left), so a warm tenant still lands as close to its
        history as the fleet allows.
        """
        assert self.high_water is not None
        excess = shard.depth - self.high_water
        if excess <= 0:
            return
        relief = [
            s for s in self.live_shards
            if s.shard_id != shard.shard_id and s.depth < self.high_water
        ]
        if not relief:
            return
        evicted = shard.service.evict_queued(excess)
        moved_tenants: set[str] = set()
        for record in evicted:
            fed_id = self._local_index[(shard.instance_id, record.job_id)]
            job = self.jobs[fed_id]
            # never bounce a job straight back: drop the source from its
            # home so the affinity order starts at the ring's next choice
            if self.affinity.home_of(record.request.tenant) == shard.shard_id:
                self.affinity.note_placement(
                    record.request.tenant,
                    self._next_preferred(record.request.tenant, shard.shard_id),
                )
            self._adopt(job, record.request)
            self.migrations += 1
            moved_tenants.add(record.request.tenant)
        self.rebalanced_tenants += len(moved_tenants)

    def _next_preferred(self, tenant: str, excluding: str) -> str:
        for shard_id in self.ring.preference(tenant):
            if shard_id != excluding and self.shards[shard_id].alive:
                return shard_id
        return excluding  # single-shard fleet: nowhere else to point

    # ------------------------------------------------------------------
    # lookup & metrics
    # ------------------------------------------------------------------
    def status(self, fed_id: str) -> dict[str, Any]:
        """The job's wire record, with federation identity spliced in.

        During the silent-crash detection window a crashed shard's
        non-terminal jobs live only in its stashed-orphan list (the dead
        service deleted their records); a status poll in that window
        answers from the stash — the job is pending recovery, not gone.
        """
        job = self.jobs.get(fed_id)
        if job is None:
            raise ProtocolError(f"unknown job {fed_id!r}")
        handle = self.instances[job.shard_id]
        try:
            record = handle.service.status(job.local_job_id)
        except ProtocolError:
            record = self._stashed_record(handle, job.local_job_id)
            if record is None:
                raise
        wire = record.to_wire()
        wire["job_id"] = job.fed_id
        wire["shard"] = job.shard_id
        wire["placements"] = list(job.placements)
        wire["migrations"] = job.migrations
        return wire

    @staticmethod
    def _stashed_record(handle: ShardHandle, local_job_id: str):
        """A crashed-but-unconfirmed shard's orphan, if it holds the job."""
        if handle.alive:
            return None
        for record in handle.stashed_orphans:
            if record.job_id == local_job_id:
                return record
        return None

    def job_states(self) -> dict[str, int]:
        """Fed-level state tally (the conservation the smoke asserts).

        Stashed orphans awaiting death confirmation count as queued:
        they are in flight toward re-admission, not finished.
        """
        tally = {"queued": 0, "running": 0, "completed": 0, "failed": 0}
        for job in self.jobs.values():
            handle = self.instances[job.shard_id]
            record = handle.service.records.get(job.local_job_id)
            if record is not None:
                tally[record.state.value] += 1
            elif self._stashed_record(handle, job.local_job_id) is not None:
                tally["queued"] += 1
        return tally

    def membership_snapshot(self) -> dict[str, Any] | None:
        """The self-healing section: detector view, respawns, migrations."""
        if self.membership is None:
            return None
        detector = self.membership.describe()
        return {
            "detector": detector,
            "heartbeats": self.heartbeats,
            "suspects": self.membership.suspects(),
            "deaths_confirmed": self.membership.deaths_confirmed,
            "epochs": {
                shard_id: self.shards[shard_id].epoch
                for shard_id in sorted(self.shards)
            },
            "respawns": (
                self.supervisor.describe() if self.supervisor is not None else None
            ),
            "migrations_completed": self.migrations_completed,
            "migrations_dropped": self.migrations_dropped,
            "migration_log": [dict(entry) for entry in self.migration_log],
            "state_archive_entries": len(self._state_archive),
            "ring_digest": self.ring.digest(),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Router counters + ring + every shard instance's own snapshot.

        The ``shards`` section is keyed by *instance id*, so a respawned
        shard contributes two entries — its dead predecessor (counters
        frozen at death) and the live incarnation — and fleet-wide
        conservation sums across both.
        """
        states = self.job_states()
        snapshot = {
            "router": {
                "submitted": self._fed_counter,
                "placements": self.placements,
                "failover_placements": self.failover_placements,
                "migrations": self.migrations,
                "shard_deaths": self.shard_deaths,
                "rebalanced_tenants": self.rebalanced_tenants,
                "requeued_jobs": self.requeued_jobs,
                "high_water": self.high_water,
                "job_states": states,
                "ring": self.ring.describe(),
                "tenant_homes": self.affinity.homes(),
                "shard_fault_plan": (
                    self.shard_fault_plan.to_wire()
                    if self.shard_fault_plan is not None
                    else None
                ),
            },
            "fleet": {
                "shards": len(self.shards),
                "alive": [s.shard_id for s in self.live_shards],
                "dead": sorted(
                    iid for iid, s in self.instances.items() if not s.alive
                ),
            },
            "shards": {
                iid: self.instances[iid].service.metrics_snapshot()
                for iid in sorted(self.instances)
            },
            "jobs": {
                fed_id: self._job_wire(job)
                for fed_id, job in sorted(self.jobs.items())
            },
        }
        membership = self.membership_snapshot()
        if membership is not None:
            snapshot["membership"] = membership
        return snapshot

    def _job_wire(self, job: FederatedJob) -> dict[str, Any]:
        wire = job.to_wire()
        record = self.instances[job.shard_id].service.records.get(job.local_job_id)
        wire["state"] = record.state.value if record is not None else None
        return wire
