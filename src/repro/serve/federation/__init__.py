"""Federation tier: the scheduling service sharded across a fleet.

One machine's :class:`~repro.serve.server.SchedulingService` arbitrates
interference- and locality-aware leases; this package runs *N* of them —
each with its own topology, arbiter, fault plan and metrics — behind a
:class:`~repro.serve.federation.router.FederationRouter` that decides
*which machine* a tenant's job runs on:

* a seeded consistent-hash ring with virtual nodes
  (:class:`~repro.serve.federation.ring.ConsistentHashRing`) gives every
  tenant a deterministic shard preference order;
* a warm-PTT affinity policy
  (:class:`~repro.serve.federation.affinity.AffinityPolicy`) keeps a
  tenant on the shard already holding its performance history;
* saturation past a high-water mark sheds the youngest waiting jobs onto
  the ring's next choice, never touching the FIFO head — the per-shard
  strict-FIFO no-starvation invariant survives every rebalance;
* a seeded ``shard_crash`` fault
  (:class:`~repro.serve.federation.faults.ShardFaultPlan`) kills a whole
  shard mid-run: its leases are reclaimed, its jobs requeue through the
  router, and the run replays byte-identically;
* an optional **self-healing** layer: the logical-clock failure detector
  (:class:`~repro.serve.federation.membership.Membership`) finds silent
  crashes by missed heartbeat polls, displaced tenants' PTT checkpoints
  migrate warm to their new owners, and the supervisor
  (:class:`~repro.serve.federation.supervisor.ShardSupervisor`) respawns
  confirmed-dead shards at a new epoch through the live-join path.

The wire front-end
(:class:`~repro.serve.federation.service.FederationService`) speaks the
existing newline-JSON protocol, so single-machine clients and the load
generator drive a fleet unchanged.  Start one with::

    python -m repro.serve.federation --shards 3 --machine small
"""

from repro.serve.federation.affinity import AffinityPolicy
from repro.serve.federation.faults import SHARD_CRASH, ShardFaultPlan
from repro.serve.federation.membership import (
    Membership,
    MemberRecord,
    MembershipEvent,
    MemberState,
)
from repro.serve.federation.ring import ConsistentHashRing, RingError
from repro.serve.federation.router import FederatedJob, FederationRouter
from repro.serve.federation.service import FederationService
from repro.serve.federation.shard import (
    ShardHandle,
    build_shard,
    build_shards,
    respawn_factory,
    shard_fault_seed,
)
from repro.serve.federation.supervisor import RespawnRecord, ShardSupervisor

__all__ = [
    "SHARD_CRASH",
    "AffinityPolicy",
    "ConsistentHashRing",
    "FederatedJob",
    "FederationRouter",
    "FederationService",
    "MemberRecord",
    "MemberState",
    "Membership",
    "MembershipEvent",
    "RespawnRecord",
    "RingError",
    "ShardFaultPlan",
    "ShardHandle",
    "ShardSupervisor",
    "build_shard",
    "build_shards",
    "respawn_factory",
    "shard_fault_seed",
]
