"""One federation shard: a whole :class:`SchedulingService` as a unit.

A shard owns everything the single-machine service owns — its *own*
simulated topology, :class:`~repro.serve.arbiter.NodeArbiter`,
admission queue, worker pool, metrics registry, and (optionally) its own
seeded job-level :class:`~repro.serve.faults.FaultPlan` — plus the
fleet-level identity and lifecycle the router needs: an id, an
alive/dead flag, a router-side placement counter (the logical clock that
triggers seeded shard crashes), and an optional TCP listener so the load
generator can drive an individual shard next to the router in the same
sweep.

Per-shard fault seeds are derived from the fleet fault seed through the
substream discipline (``stream(seed, "fed.shardseed", shard_id)``), so
two shards never share fault decisions even though their local job ids
(``job-00001`` …) collide.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ServeError
from repro.exp.runner import ExperimentConfig
from repro.serve.faults import FaultKind, FaultPlan
from repro.serve.protocol import JobRecord
from repro.serve.server import SchedulingService
from repro.sim.rng import stream
from repro.topology.machine import MachineTopology

__all__ = ["ShardHandle", "build_shards", "shard_fault_seed"]


def shard_fault_seed(seed: int, shard_id: str) -> int:
    """A per-shard fault-plan seed derived from the fleet seed."""
    return int(stream(seed, "fed.shardseed", shard_id).integers(0, 2**31))


class ShardHandle:
    """Identity + lifecycle wrapper around one in-process service."""

    def __init__(self, shard_id: str, service: SchedulingService):
        if not shard_id:
            raise ServeError("a shard needs a non-empty id")
        self.shard_id = shard_id
        self.service = service
        self.alive = True
        #: Router placements absorbed (initial + adopted); the logical
        #: clock the seeded shard-crash schedule counts in.
        self.placements = 0
        self.host: str | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    async def start(self, *, expose: bool = False, host: str = "127.0.0.1") -> None:
        """Start the worker pool; with ``expose``, also a TCP listener."""
        if expose:
            self.host, self.port = await self.service.start(host, 0)
        else:
            self.service.start_workers()

    async def kill(self) -> list[JobRecord]:
        """Die: mark dead, hard-stop the service, return the orphans."""
        self.alive = False
        return await self.service.kill()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs admitted here but not yet taken by a worker."""
        return self.service.admission.depth

    def describe(self) -> dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "alive": self.alive,
            "machine": self.service.topology.describe(),
            "placements": self.placements,
            "queue_depth": self.depth,
            "endpoint": (
                f"{self.host}:{self.port}" if self.port is not None else None
            ),
        }

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ShardHandle({self.shard_id!r}, {state}, placements={self.placements})"


def build_shards(
    count: int,
    topology_factory: Callable[[], MachineTopology],
    *,
    config: ExperimentConfig | None = None,
    queue_capacity: int = 16,
    workers: int | None = None,
    max_attempts: int = 3,
    default_deadline_s: float | None = None,
    fault_probabilities: Mapping[FaultKind | str, float] | None = None,
    fault_seed: int = 0,
    fault_attempts: int = 1,
) -> list[ShardHandle]:
    """Construct ``count`` identical-but-independent shards.

    Each shard gets a *fresh* topology from ``topology_factory`` (never a
    shared instance — the ledgers must not alias) and, when
    ``fault_probabilities`` is given, its own job-level
    :class:`~repro.serve.faults.FaultPlan` seeded per shard id.
    """
    if count < 1:
        raise ServeError(f"a federation needs at least one shard, got {count}")
    shards: list[ShardHandle] = []
    for i in range(count):
        shard_id = f"shard-{i}"
        plan = None
        if fault_probabilities is not None:
            plan = FaultPlan(
                fault_probabilities,
                seed=shard_fault_seed(fault_seed, shard_id),
                fault_attempts=fault_attempts,
            )
        service = SchedulingService(
            topology_factory(),
            config=config,
            queue_capacity=queue_capacity,
            workers=workers,
            fault_plan=plan,
            max_attempts=max_attempts,
            default_deadline_s=default_deadline_s,
        )
        shards.append(ShardHandle(shard_id, service))
    return shards
