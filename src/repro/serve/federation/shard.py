"""One federation shard: a whole :class:`SchedulingService` as a unit.

A shard owns everything the single-machine service owns — its *own*
simulated topology, :class:`~repro.serve.arbiter.NodeArbiter`,
admission queue, worker pool, metrics registry, and (optionally) its own
seeded job-level :class:`~repro.serve.faults.FaultPlan` — plus the
fleet-level identity and lifecycle the router needs: an id, an
alive/dead flag, a router-side placement counter (the logical clock that
triggers seeded shard crashes), and an optional TCP listener so the load
generator can drive an individual shard next to the router in the same
sweep.

With the membership layer, identity gains an **epoch**: the supervised
respawn of a dead shard keeps the ring name (``shard_id``) but runs at
``epoch + 1``, and everything keyed per shard downstream (fault
decisions, local job ids, retired metrics) uses the epoch-qualified
:attr:`ShardHandle.instance_id` so a respawn never collides with its
ghost.  Epoch 0 keeps the bare id, so pre-membership reports are
byte-identical.

Per-shard fault seeds are derived from the fleet fault seed through the
substream discipline (``stream(seed, "fed.shardseed", instance_id)``),
so two shards — or two incarnations of the *same* shard — never share
fault decisions even though their local job ids (``job-00001`` …)
collide.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ServeError
from repro.exp.runner import ExperimentConfig
from repro.serve.faults import FaultKind, FaultPlan
from repro.serve.protocol import JobRecord
from repro.serve.server import SchedulingService
from repro.sim.rng import stream
from repro.topology.machine import MachineTopology

__all__ = [
    "ShardHandle",
    "build_shard",
    "build_shards",
    "respawn_factory",
    "shard_fault_seed",
]


def shard_fault_seed(seed: int, shard_id: str) -> int:
    """A per-shard fault-plan seed derived from the fleet seed.

    ``shard_id`` may be epoch-qualified (``shard-1@e2``): each respawn
    incarnation draws a fresh, independent crash schedule.
    """
    return int(stream(seed, "fed.shardseed", shard_id).integers(0, 2**31))


class ShardHandle:
    """Identity + lifecycle wrapper around one in-process service."""

    def __init__(self, shard_id: str, service: SchedulingService, *, epoch: int = 0):
        if not shard_id:
            raise ServeError("a shard needs a non-empty id")
        if epoch < 0:
            raise ServeError(f"shard epoch must be >= 0, got {epoch}")
        self.shard_id = shard_id
        self.epoch = epoch
        self.service = service
        self.alive = True
        #: Router placements absorbed (initial + adopted); the logical
        #: clock the seeded shard-crash schedule counts in.
        self.placements = 0
        self.host: str | None = None
        self.port: int | None = None
        #: Orphans stashed by a *silent* crash (membership mode): the
        #: router only learns of them when the failure detector confirms
        #: the death, exactly like a real machine's unflushed state.
        self.stashed_orphans: list[JobRecord] = []

    @property
    def instance_id(self) -> str:
        """Epoch-qualified identity; epoch 0 keeps the bare id so the
        first incarnation matches pre-membership wire output."""
        if self.epoch == 0:
            return self.shard_id
        return f"{self.shard_id}@e{self.epoch}"

    # ------------------------------------------------------------------
    async def start(self, *, expose: bool = False, host: str = "127.0.0.1") -> None:
        """Start the worker pool; with ``expose``, also a TCP listener."""
        if expose:
            self.host, self.port = await self.service.start(host, 0)
        else:
            self.service.start_workers()

    async def kill(self) -> list[JobRecord]:
        """Die loudly: mark dead, hard-stop the service, return the orphans."""
        self.alive = False
        return await self.service.kill()

    async def crash(self) -> None:
        """Die *silently*: the orphans are stashed on the handle, and the
        router finds out only when the failure detector confirms the
        death (heartbeats go unanswered) — the membership-mode analogue
        of :meth:`kill`.

        ``alive`` flips only after the kill finishes and the stash is
        set, in one synchronous segment.  Flipping it first opens a race:
        a status poll during the kill's awaits could pump the detector to
        confirmation, and ``take_stashed_orphans`` would run on a stash
        not yet populated — stranding the orphans on a retired handle.
        """
        orphans = await self.service.kill()
        self.stashed_orphans = orphans
        self.alive = False

    def take_stashed_orphans(self) -> list[JobRecord]:
        orphans, self.stashed_orphans = self.stashed_orphans, []
        return orphans

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs admitted here but not yet taken by a worker."""
        return self.service.admission.depth

    def describe(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "shard_id": self.shard_id,
            "alive": self.alive,
            "machine": self.service.topology.describe(),
            "placements": self.placements,
            "queue_depth": self.depth,
            "endpoint": (
                f"{self.host}:{self.port}" if self.port is not None else None
            ),
        }
        if self.epoch:
            doc["epoch"] = self.epoch
        return doc

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ShardHandle({self.instance_id!r}, {state}, placements={self.placements})"


def build_shard(
    shard_id: str,
    topology_factory: Callable[[], MachineTopology],
    *,
    epoch: int = 0,
    config: ExperimentConfig | None = None,
    queue_capacity: int = 16,
    workers: int | None = None,
    max_attempts: int = 3,
    default_deadline_s: float | None = None,
    fault_probabilities: Mapping[FaultKind | str, float] | None = None,
    fault_seed: int = 0,
    fault_attempts: int = 1,
) -> ShardHandle:
    """Construct one shard (fresh topology, per-instance fault seed)."""
    plan = None
    if fault_probabilities is not None:
        instance_id = shard_id if epoch == 0 else f"{shard_id}@e{epoch}"
        plan = FaultPlan(
            fault_probabilities,
            seed=shard_fault_seed(fault_seed, instance_id),
            fault_attempts=fault_attempts,
        )
    service = SchedulingService(
        topology_factory(),
        config=config,
        queue_capacity=queue_capacity,
        workers=workers,
        fault_plan=plan,
        max_attempts=max_attempts,
        default_deadline_s=default_deadline_s,
    )
    return ShardHandle(shard_id, service, epoch=epoch)


def build_shards(
    count: int,
    topology_factory: Callable[[], MachineTopology],
    *,
    config: ExperimentConfig | None = None,
    queue_capacity: int = 16,
    workers: int | None = None,
    max_attempts: int = 3,
    default_deadline_s: float | None = None,
    fault_probabilities: Mapping[FaultKind | str, float] | None = None,
    fault_seed: int = 0,
    fault_attempts: int = 1,
) -> list[ShardHandle]:
    """Construct ``count`` identical-but-independent shards.

    Each shard gets a *fresh* topology from ``topology_factory`` (never a
    shared instance — the ledgers must not alias) and, when
    ``fault_probabilities`` is given, its own job-level
    :class:`~repro.serve.faults.FaultPlan` seeded per shard id.
    """
    if count < 1:
        raise ServeError(f"a federation needs at least one shard, got {count}")
    return [
        build_shard(
            f"shard-{i}",
            topology_factory,
            config=config,
            queue_capacity=queue_capacity,
            workers=workers,
            max_attempts=max_attempts,
            default_deadline_s=default_deadline_s,
            fault_probabilities=fault_probabilities,
            fault_seed=fault_seed,
            fault_attempts=fault_attempts,
        )
        for i in range(count)
    ]


def respawn_factory(
    topology_factory: Callable[[], MachineTopology],
    *,
    config: ExperimentConfig | None = None,
    queue_capacity: int = 16,
    workers: int | None = None,
    max_attempts: int = 3,
    default_deadline_s: float | None = None,
    fault_probabilities: Mapping[FaultKind | str, float] | None = None,
    fault_seed: int = 0,
    fault_attempts: int = 1,
) -> Callable[[str, int], ShardHandle]:
    """A :class:`~repro.serve.federation.supervisor.ShardSupervisor`
    factory that rebuilds shards with the same recipe as
    :func:`build_shards`, at whatever epoch the supervisor asks for."""

    def factory(shard_id: str, epoch: int) -> ShardHandle:
        return build_shard(
            shard_id,
            topology_factory,
            epoch=epoch,
            config=config,
            queue_capacity=queue_capacity,
            workers=workers,
            max_attempts=max_attempts,
            default_deadline_s=default_deadline_s,
            fault_probabilities=fault_probabilities,
            fault_seed=fault_seed,
            fault_attempts=fault_attempts,
        )

    return factory
