"""Deterministic failure detector for the federation fleet.

Production membership protocols (SWIM, Raft's leader leases) run on wall
clocks; this repo's determinism contract forbids that, so the detector
here runs on the router's **logical clock** — the monotonically
increasing placement counter.  Every ``heartbeat_every`` placements the
router polls each registered member and feeds the result to
:meth:`Membership.poll`:

* a member that answered resets its missed-poll counter to zero;
* a member that did not answer increments it.

A member whose counter reaches ``suspect_after`` consecutive missed
polls becomes SUSPECT (excluded from new placements but still on the
ring — a suspect that answers a later poll is fully reinstated).  At
``confirm_after`` missed polls the member is confirmed DEAD and the
transition is returned to the caller, which removes it from the ring,
adopts its orphans and migrates its tenant state.  Counting *polls*
rather than clock deltas means the thresholds keep their meaning when
``heartbeat_every`` changes: "3 missed heartbeats" is three missed
heartbeats whether they are 5 or 50 placements apart.

State machine (strictly one-directional except SUSPECT → ALIVE)::

    ALIVE ──missed >= suspect_after──> SUSPECT ──missed >= confirm_after──> DEAD
      ^                                   │
      └────────── answered poll ──────────┘

    ALIVE/SUSPECT ──voluntary leave──> LEFT        (clean, no migration loss)
    DEAD ──supervised respawn (new epoch)──> fresh ALIVE record

Every transition is recorded in an ordered event log (logical time,
member, old state, new state) so two same-seed runs produce
byte-identical membership histories.  The class touches no RNG and no
wall clock: it is a pure function of the poll sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable

__all__ = ["MemberState", "MemberRecord", "MembershipEvent", "Membership"]


class MemberState(Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"
    LEFT = "left"


@dataclass
class MemberRecord:
    """One member's view in the detector: identity, epoch and health."""

    member_id: str
    epoch: int
    state: MemberState = MemberState.ALIVE
    missed_polls: int = 0
    joined_at: int = 0  # logical time (placements) of admission
    ended_at: int | None = None  # logical time of death / departure

    @property
    def instance_id(self) -> str:
        """Epoch-qualified identity; epoch 0 keeps the bare id so the
        first incarnation is wire-compatible with pre-membership runs."""
        if self.epoch == 0:
            return self.member_id
        return f"{self.member_id}@e{self.epoch}"

    def describe(self) -> dict[str, Any]:
        return {
            "member_id": self.member_id,
            "instance_id": self.instance_id,
            "epoch": self.epoch,
            "state": self.state.value,
            "missed_polls": self.missed_polls,
            "joined_at": self.joined_at,
            "ended_at": self.ended_at,
        }


@dataclass(frozen=True)
class MembershipEvent:
    """One state transition, stamped with the logical clock."""

    at: int  # placements when the transition happened
    member_id: str
    epoch: int
    old_state: str
    new_state: str

    def describe(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "member_id": self.member_id,
            "epoch": self.epoch,
            "old": self.old_state,
            "new": self.new_state,
        }


class Membership:
    """Missed-heartbeat failure detector over the router's logical clock."""

    def __init__(
        self,
        *,
        heartbeat_every: int = 5,
        suspect_after: int = 2,
        confirm_after: int = 3,
    ):
        if heartbeat_every < 1:
            raise ValueError(f"heartbeat_every must be >= 1, got {heartbeat_every}")
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        if confirm_after <= suspect_after:
            raise ValueError(
                f"confirm_after ({confirm_after}) must exceed "
                f"suspect_after ({suspect_after}): a member must pass "
                "through SUSPECT before it can be confirmed dead"
            )
        self.heartbeat_every = heartbeat_every
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        #: Live view: current incarnation of each member id.
        self._members: dict[str, MemberRecord] = {}
        #: Past incarnations (dead or departed), in retirement order.
        self._retired: list[MemberRecord] = []
        self._events: list[MembershipEvent] = []
        # monotone counters for the metrics snapshot
        self.polls = 0
        self.suspects_raised = 0
        self.suspects_cleared = 0
        self.deaths_confirmed = 0
        self.joins = 0
        self.leaves = 0

    # ------------------------------------------------------------------
    # membership changes
    def register(self, member_id: str, *, epoch: int = 0, at: int = 0) -> MemberRecord:
        """Admit a member (initial fleet, live join, or respawn rejoin).

        A respawn must carry an epoch strictly greater than the dead
        incarnation's — stale instances can never re-register.
        """
        existing = self._members.get(member_id)
        if existing is not None:
            if existing.state in (MemberState.ALIVE, MemberState.SUSPECT):
                raise ValueError(f"member {member_id!r} is already registered")
            if epoch <= existing.epoch:
                raise ValueError(
                    f"member {member_id!r} rejoining at epoch {epoch} but "
                    f"epoch {existing.epoch} already {existing.state.value}"
                )
            self._retired.append(existing)
        record = MemberRecord(member_id=member_id, epoch=epoch, joined_at=at)
        self._members[member_id] = record
        self._events.append(
            MembershipEvent(at, member_id, epoch, "none", MemberState.ALIVE.value)
        )
        self.joins += 1
        return record

    def leave(self, member_id: str, *, at: int = 0) -> MemberRecord:
        """Voluntary departure: clean, immediate, no failure detection."""
        record = self._require(member_id)
        if record.state not in (MemberState.ALIVE, MemberState.SUSPECT):
            raise ValueError(
                f"member {member_id!r} cannot leave from state {record.state.value}"
            )
        self._transition(record, MemberState.LEFT, at)
        record.ended_at = at
        self.leaves += 1
        return record

    # ------------------------------------------------------------------
    # failure detection
    def due(self, placements: int) -> bool:
        """Whether the router should run a heartbeat poll at this tick."""
        return placements > 0 and placements % self.heartbeat_every == 0

    def poll(self, responders: Iterable[str], *, at: int) -> list[MemberRecord]:
        """One heartbeat round: ``responders`` answered, everyone else missed.

        Returns the members whose death was *confirmed this round*, in
        sorted member-id order (deterministic recovery ordering).  Raising
        or clearing suspicion is recorded in the event log and counters
        but needs no caller action.
        """
        self.polls += 1
        answered = set(responders)
        confirmed: list[MemberRecord] = []
        for member_id in sorted(self._members):
            record = self._members[member_id]
            if record.state not in (MemberState.ALIVE, MemberState.SUSPECT):
                continue
            if member_id in answered:
                if record.state is MemberState.SUSPECT:
                    self._transition(record, MemberState.ALIVE, at)
                    self.suspects_cleared += 1
                record.missed_polls = 0
                continue
            record.missed_polls += 1
            if (
                record.state is MemberState.ALIVE
                and record.missed_polls >= self.suspect_after
            ):
                self._transition(record, MemberState.SUSPECT, at)
                self.suspects_raised += 1
            if (
                record.state is MemberState.SUSPECT
                and record.missed_polls >= self.confirm_after
            ):
                self._transition(record, MemberState.DEAD, at)
                record.ended_at = at
                self.deaths_confirmed += 1
                confirmed.append(record)
        return confirmed

    # ------------------------------------------------------------------
    # queries
    def get(self, member_id: str) -> MemberRecord | None:
        return self._members.get(member_id)

    def _require(self, member_id: str) -> MemberRecord:
        record = self._members.get(member_id)
        if record is None:
            raise KeyError(f"unknown member {member_id!r}")
        return record

    def state_of(self, member_id: str) -> MemberState:
        return self._require(member_id).state

    def placeable(self) -> list[str]:
        """Members eligible for new placements (ALIVE only), sorted."""
        return sorted(
            m for m, r in self._members.items() if r.state is MemberState.ALIVE
        )

    def suspects(self) -> list[str]:
        return sorted(
            m for m, r in self._members.items() if r.state is MemberState.SUSPECT
        )

    @property
    def events(self) -> list[MembershipEvent]:
        return list(self._events)

    # ------------------------------------------------------------------
    def _transition(self, record: MemberRecord, new: MemberState, at: int) -> None:
        self._events.append(
            MembershipEvent(at, record.member_id, record.epoch, record.state.value, new.value)
        )
        record.state = new

    def describe(self) -> dict[str, Any]:
        """JSON-able snapshot: live view, retirees, counters, event log."""
        return {
            "config": {
                "heartbeat_every": self.heartbeat_every,
                "suspect_after": self.suspect_after,
                "confirm_after": self.confirm_after,
            },
            "members": {
                member_id: self._members[member_id].describe()
                for member_id in sorted(self._members)
            },
            "retired": [record.describe() for record in self._retired],
            "counters": {
                "polls": self.polls,
                "joins": self.joins,
                "leaves": self.leaves,
                "suspects_raised": self.suspects_raised,
                "suspects_cleared": self.suspects_cleared,
                "deaths_confirmed": self.deaths_confirmed,
            },
            "events": [event.describe() for event in self._events],
        }
