"""The federation's wire front-end: one port, the whole fleet behind it.

:class:`FederationService` speaks the *existing* newline-JSON protocol —
``submit`` / ``status`` / ``metrics`` / ``drain`` / ``ping``, plus the
federation-only ``membership`` op exposing the failure detector's view
(member states, epochs, respawns, warm-migration counters) — so every
client built for a single :class:`~repro.serve.server.SchedulingService`
(the :class:`~repro.serve.client.ServiceClient`, the load generator, the
smoke scripts) drives a federation unchanged; only the job ids
(``fed-00001``) and the extra ``shard`` / ``placements`` fields betray
the fleet underneath.

Graceful drain drains every live shard (admitted jobs finish, new
submissions bounce with the typed ``draining`` rejection), then closes
the router listener; :meth:`FederationService.persist_snapshot` writes
the final federated snapshot through
:func:`repro.ioutil.atomic_write_json`, so a killed process leaves the
previous snapshot or the new one, never torn JSON.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.ioutil import atomic_write_json
from repro.serve.federation.router import FederationRouter
from repro.serve.protocol import (
    AdmissionRejected,
    JobRequest,
    ProtocolError,
    error_response,
    ok_response,
    read_message,
    write_message,
)

__all__ = ["FederationService"]


class FederationService:
    """TCP listener dispatching the line protocol onto a router."""

    def __init__(self, router: FederationRouter):
        self.router = router
        self._server: asyncio.base_events.Server | None = None
        self._drained = asyncio.Event()
        self._drain_started = False

    # ------------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        expose_shards: bool = False,
    ) -> tuple[str, int]:
        """Start every shard, then the router listener; returns (host, port)."""
        await self.router.start(expose_shards=expose_shards, host=host)
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        addr = self._server.sockets[0].getsockname()
        return addr[0], addr[1]

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("federation has no TCP listener")
        return self._server.sockets[0].getsockname()[1]

    async def drain(self) -> dict[str, Any]:
        """Drain every live shard, close the listener; idempotent."""
        if not self._drain_started:
            self._drain_started = True
            await self.router.drain()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
            self._drained.set()
        await self._drained.wait()
        return self.router.metrics_snapshot()

    def persist_snapshot(self, path: str | Path) -> Path:
        """Atomically write the federated snapshot (tmp + fsync + rename)."""
        return atomic_write_json(Path(path), self.router.metrics_snapshot())

    # ------------------------------------------------------------------
    # wire handling (same loop shape as the single-machine server)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(writer, error_response("bad_request", str(exc)))
                    continue
                if message is None:
                    return
                response = await self._dispatch(message)
                await write_message(writer, response)
                if message.get("op") == "drain":
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            raise  # cancellation must propagate; `finally` closes the writer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        try:
            if op == "ping":
                return ok_response(
                    pong=True,
                    federation=True,
                    fleet=[s.describe() for s in self.router.live_shards],
                )
            if op == "submit":
                request = JobRequest.from_wire(message.get("job") or {})
                job = await self.router.submit(request)
                local = self.router.status(job.fed_id)
                return ok_response(
                    job_id=job.fed_id, state=local["state"], shard=job.shard_id
                )
            if op == "status":
                # status traffic pumps detection: closed-loop clients
                # polling stranded jobs would otherwise freeze the
                # placement clock and the death would never confirm
                await self.router.pump_detection()
                return ok_response(job=self.router.status(message.get("job_id", "")))
            if op == "metrics":
                return ok_response(metrics=self.router.metrics_snapshot())
            if op == "membership":
                snapshot = self.router.membership_snapshot()
                if snapshot is None:
                    raise ProtocolError(
                        "this federation runs without a membership layer"
                    )
                return ok_response(membership=snapshot)
            if op == "drain":
                snapshot = await self.drain()
                return ok_response(metrics=snapshot)
            raise ProtocolError(f"unknown op {op!r}")
        except AdmissionRejected as exc:
            return error_response(
                exc.code, str(exc), depth=exc.depth, capacity=exc.capacity
            )
        except ProtocolError as exc:
            return error_response("bad_request", str(exc))
        except ReproError as exc:
            return error_response("internal", f"{type(exc).__name__}: {exc}")
