"""Run a federated fleet: ``python -m repro.serve.federation [options]``.

Examples::

    python -m repro.serve.federation --shards 3 --machine small --port 7078
    python -m repro.serve.federation --shards 4 --high-water 8 \\
        --expose-shards          # each shard also gets its own port
    python -m repro.serve.federation --shards 3 --shard-crash 0.4 \\
        --fault-seed 7           # seeded chaos: a whole shard may die
    python -m repro.serve.federation --shards 3 --shard-crash 0.4 \\
        --respawn 2 --heartbeat-every 5 --suspect-after 2  # self-healing:
        # crashes are found by missed heartbeats, tenants migrate warm,
        # and the supervisor respawns the dead shard at a new epoch

The router prints its bound address (and, with ``--expose-shards``, every
shard's address) on startup; clients speak the same newline-JSON protocol
as the single-machine server, so ``python -m repro.serve.loadgen
--connect HOST:PORT`` works against the router port unchanged.  SIGINT
and SIGTERM drain gracefully: every live shard finishes its admitted
jobs, new submissions are rejected with the typed ``draining`` error, and
``--snapshot-out`` writes the final federated snapshot atomically.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.exp.cliopts import (
    add_campaign_arguments,
    add_machine_argument,
    config_from_args,
    resolve_machine,
)
from repro.serve.faults import parse_fault_spec
from repro.serve.federation.faults import ShardFaultPlan
from repro.serve.federation.membership import Membership
from repro.serve.federation.router import FederationRouter
from repro.serve.federation.service import FederationService
from repro.serve.federation.shard import build_shards, respawn_factory
from repro.serve.federation.supervisor import ShardSupervisor

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.federation",
        description="Shard the multi-tenant scheduling service across a "
        "fleet of simulated machines behind a topology-aware router.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7078,
                        help="router bind port (0 = ephemeral)")
    parser.add_argument("--shards", type=int, default=3,
                        help="number of SchedulingService shards (default 3)")
    parser.add_argument("--expose-shards", action="store_true",
                        help="give every shard its own ephemeral TCP port "
                        "next to the router (printed on startup)")
    parser.add_argument("--queue-capacity", type=int, default=16,
                        help="per-shard bounded admission queue size")
    parser.add_argument("--workers", type=int, default=None,
                        help="per-shard concurrent job slots "
                        "(default: one per NUMA node)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="per-shard attempt budget per job")
    parser.add_argument("--default-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="running-time deadline for jobs that set none")
    parser.add_argument("--high-water", type=int, default=None,
                        metavar="DEPTH",
                        help="per-shard queue depth beyond which the router "
                        "sheds the youngest waiting jobs onto the ring's "
                        "next shard (default: no rebalancing)")
    parser.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per shard on the hash ring")
    parser.add_argument("--ring-seed", type=int, default=0,
                        help="consistent-hash ring placement seed")
    chaos = parser.add_argument_group("chaos (seeded fault injection)")
    chaos.add_argument("--fault-spec", default=None, metavar="SPEC",
                       help='per-shard job-level fault plan, e.g. '
                       '"crash=0.1,transient=0.2" (each shard draws from '
                       "its own derived seed)")
    chaos.add_argument("--shard-crash", type=float, default=0.0,
                       metavar="PROB",
                       help="probability that a whole shard dies at a seeded "
                       "placement count (its jobs requeue elsewhere)")
    chaos.add_argument("--crash-after", type=int, nargs=2, default=(1, 4),
                       metavar=("MIN", "MAX"),
                       help="placement-count window a crashing shard's death "
                       "is drawn from (default 1 4)")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="seed for both fault layers (default 0)")
    healing = parser.add_argument_group("self-healing (membership layer)")
    healing.add_argument("--membership", action="store_true",
                         help="enable the logical-clock failure detector: "
                         "seeded shard crashes turn silent and are found "
                         "by missed heartbeats instead of router omniscience")
    healing.add_argument("--heartbeat-every", type=int, default=5,
                         metavar="PLACEMENTS",
                         help="poll every shard each N router placements "
                         "(the logical heartbeat period, default 5)")
    healing.add_argument("--suspect-after", type=int, default=2,
                         metavar="POLLS",
                         help="missed polls before a shard is SUSPECT and "
                         "stops taking new placements (default 2)")
    healing.add_argument("--confirm-after", type=int, default=3,
                         metavar="POLLS",
                         help="missed polls before a death is confirmed and "
                         "recovery runs (must exceed --suspect-after; "
                         "default 3)")
    healing.add_argument("--respawn", type=int, default=None, metavar="N",
                         help="supervise confirmed-dead shards: respawn each "
                         "up to N times at a new epoch with a fresh derived "
                         "fault seed (implies --membership)")
    parser.add_argument("--snapshot-out", default=None, metavar="PATH",
                        help="after the drain, write the federated snapshot "
                        "to PATH (atomic tmp-file + rename write)")
    add_machine_argument(parser)
    add_campaign_arguments(parser)
    return parser


def build_federation(args: argparse.Namespace) -> FederationService:
    """Construct the fleet + router + front-end from parsed flags."""
    probabilities = (
        parse_fault_spec(args.fault_spec) if args.fault_spec is not None else None
    )
    shards = build_shards(
        args.shards,
        lambda: resolve_machine(args.machine),
        config=config_from_args(args, seeds_default=1),
        queue_capacity=args.queue_capacity,
        workers=args.workers,
        max_attempts=args.max_attempts,
        default_deadline_s=args.default_deadline,
        fault_probabilities=probabilities,
        fault_seed=args.fault_seed,
    )
    shard_plan = None
    if args.shard_crash > 0.0:
        lo, hi = args.crash_after
        shard_plan = ShardFaultPlan(
            args.shard_crash,
            seed=args.fault_seed,
            min_placements=lo,
            max_placements=hi,
        )
    membership = None
    supervisor = None
    if args.membership or args.respawn is not None:
        membership = Membership(
            heartbeat_every=args.heartbeat_every,
            suspect_after=args.suspect_after,
            confirm_after=args.confirm_after,
        )
        if args.respawn is not None:
            supervisor = ShardSupervisor(
                respawn_factory(
                    lambda: resolve_machine(args.machine),
                    config=config_from_args(args, seeds_default=1),
                    queue_capacity=args.queue_capacity,
                    workers=args.workers,
                    max_attempts=args.max_attempts,
                    default_deadline_s=args.default_deadline,
                    fault_probabilities=probabilities,
                    fault_seed=args.fault_seed,
                ),
                max_respawns=args.respawn,
            )
    router = FederationRouter(
        shards,
        seed=args.ring_seed,
        vnodes=args.vnodes,
        high_water=args.high_water,
        shard_fault_plan=shard_plan,
        membership=membership,
        supervisor=supervisor,
    )
    return FederationService(router)


async def _serve(args: argparse.Namespace) -> int:
    federation = build_federation(args)
    host, port = await federation.start(
        args.host, args.port, expose_shards=args.expose_shards
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix event loop: ctrl-c falls back to KeyboardInterrupt
    shards = federation.router.live_shards
    print(f"federation of {len(shards)} shard(s), "
          f"{shards[0].service.topology.describe()} each")
    if args.expose_shards:
        for shard in shards:
            print(f"  {shard.shard_id} listening on {shard.host}:{shard.port}")
    print(f"router listening on {host}:{port}; SIGINT/SIGTERM drain gracefully",
          flush=True)
    try:
        try:
            await stop.wait()
        except (KeyboardInterrupt, asyncio.CancelledError):  # repro: noqa EXC001 -- top of the CLI: ctrl-c *is* the drain signal; nothing above this frame needs the cancellation, and re-raising would traceback at the terminal
            pass
        print("draining: finishing admitted jobs on every live shard", flush=True)
        snapshot = await federation.drain()
        router = snapshot["router"]
        states = router["job_states"]
        print(
            f"drained: {states['completed']} completed, {states['failed']} "
            f"failed across {len(snapshot['fleet']['alive'])} live shard(s); "
            f"{router['migrations']} migration(s), "
            f"{router['shard_deaths']} shard death(s)"
        )
        membership = snapshot.get("membership")
        if membership is not None:
            respawns = membership.get("respawns") or {}
            print(
                f"self-healing: {membership['heartbeats']} heartbeat(s), "
                f"{membership['deaths_confirmed']} confirmed death(s), "
                f"{respawns.get('respawns_total', 0)} respawn(s), "
                f"{membership['migrations_completed']} warm migration(s), "
                f"{membership['migrations_dropped']} dropped"
            )
        if args.snapshot_out:
            out = federation.persist_snapshot(args.snapshot_out)
            print(f"final federated snapshot written to {out}")
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.confirm_after <= args.suspect_after:
        raise SystemExit(
            f"--confirm-after ({args.confirm_after}) must exceed "
            f"--suspect-after ({args.suspect_after})"
        )
    with contextlib.suppress(KeyboardInterrupt):
        return asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
