"""Seeded shard-level fault injection: the ``shard_crash`` fault.

PR 3's :class:`~repro.serve.faults.FaultPlan` decides per-*job* faults;
a federation adds the coarser failure domain — a whole shard dies, taking
its worker pool, its admission queue and its leases with it.
:class:`ShardFaultPlan` assigns that fate the same way: each shard id is
hashed into its own named RNG substream (``stream(seed, "fed.fault",
shard_id)``), one draw decides *whether* the shard crashes and a second
decides *after how many router placements* it does.  Crash points are
counted in placements, not seconds, so a replayed run kills the same
shard at the same logical instant regardless of wall-clock timing — the
byte-reproducibility of the federation smoke rests on this.

The plan is pure decision state plus a tally; the router applies the
crash (killing the shard, requeueing its orphans) and reports it back
through :meth:`ShardFaultPlan.record_crash`.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ServeError
from repro.sim.rng import stream

__all__ = ["SHARD_CRASH", "ShardFaultPlan"]

#: The fault-kind name, as it appears in snapshots and smoke reports.
SHARD_CRASH = "shard_crash"


class ShardFaultPlan:
    """Seeded, deterministic per-shard crash schedule."""

    def __init__(
        self,
        crash_probability: float,
        *,
        seed: int = 0,
        min_placements: int = 1,
        max_placements: int = 4,
        scheduled: Mapping[str, int] | None = None,
    ):
        if not (0.0 <= float(crash_probability) <= 1.0):
            raise ServeError(
                f"shard crash probability must be in [0, 1], "
                f"got {crash_probability}"
            )
        if min_placements < 1:
            raise ServeError(
                f"a shard crash needs at least one placement to trigger, "
                f"got min_placements={min_placements}"
            )
        if max_placements < min_placements:
            raise ServeError(
                f"max_placements ({max_placements}) below min_placements "
                f"({min_placements})"
            )
        self.crash_probability = float(crash_probability)
        self.seed = int(seed)
        self.min_placements = int(min_placements)
        self.max_placements = int(max_placements)
        self.crashed: list[str] = []
        self._decisions: dict[str, int | None] = {}
        #: Explicit crash points (``--kill-at`` in the smoke scripts):
        #: these override the probabilistic draw for the named shards,
        #: so a scenario can say "shard-1 dies at placement 7" exactly.
        self.scheduled: dict[str, int] = {}
        for shard_id, point in (scheduled or {}).items():
            if int(point) < 1:
                raise ServeError(
                    f"scheduled crash point for {shard_id!r} must be >= 1, "
                    f"got {point}"
                )
            self.scheduled[str(shard_id)] = int(point)

    # ------------------------------------------------------------------
    def decide(self, shard_id: str) -> int | None:
        """The placement count at which ``shard_id`` dies, or ``None``.

        Memoised and seed-deterministic: the decision depends only on
        ``(seed, shard_id)`` — unless an explicit schedule entry exists,
        which wins outright (and costs no RNG draw, so scheduling one
        shard never perturbs another's fate).
        """
        if shard_id in self.scheduled:
            return self.scheduled[shard_id]
        if shard_id not in self._decisions:
            rng = stream(self.seed, "fed.fault", shard_id)
            decision: int | None = None
            if float(rng.random()) < self.crash_probability:
                decision = int(
                    rng.integers(self.min_placements, self.max_placements + 1)
                )
            self._decisions[shard_id] = decision
        return self._decisions[shard_id]

    def should_crash(self, shard_id: str, placements: int) -> bool:
        """Whether the shard dies now, having absorbed ``placements``."""
        due = self.decide(shard_id)
        return due is not None and placements >= due

    def record_crash(self, shard_id: str) -> None:
        """Tally one applied shard death (surfaces in the snapshot)."""
        self.crashed.append(shard_id)

    # ------------------------------------------------------------------
    def decisions(self) -> dict[str, int | None]:
        """Every decision made so far: shard id → crash point (or None)."""
        return dict(sorted({**self._decisions, **self.scheduled}.items()))

    def to_wire(self) -> dict[str, object]:
        return {
            "kind": SHARD_CRASH,
            "crash_probability": self.crash_probability,
            "seed": self.seed,
            "min_placements": self.min_placements,
            "max_placements": self.max_placements,
            "decisions": self.decisions(),
            "scheduled": dict(sorted(self.scheduled.items())),
            "crashed": list(self.crashed),
        }

    def __repr__(self) -> str:
        return (
            f"ShardFaultPlan({self.crash_probability:g}, seed={self.seed}, "
            f"placements=[{self.min_placements}, {self.max_placements}])"
        )
