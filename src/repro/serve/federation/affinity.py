"""Topology-aware shard affinity: where a tenant's work should land.

The ring (:mod:`repro.serve.federation.ring`) answers *"which shards may
run this tenant, in what deterministic order"*; this module layers the
warm-state preference on top.  Each shard-local
:class:`~repro.serve.server.SchedulingService` learns a tenant's fastest
NUMA node from its PTT history (``_remember_fastest_node``), so the shard
that last ran a tenant holds its warm performance table and its
fastest-node lease seed — re-placing the tenant there turns the next
lease grant into a locality hit instead of a cold re-exploration.

:class:`AffinityPolicy` therefore tracks a *home shard* per tenant —
assigned at placement time, which keeps the ordering a pure function of
the placement history (never of execution timing) — and produces the
final placement order:

1. the tenant's home shard, when it is alive and below the saturation
   high-water mark (warm PTT beats ring order);
2. the remaining live, unsaturated shards in ring-preference order;
3. saturated-but-alive shards in ring-preference order (a saturated
   shard beats a rejection).

Dead shards never appear; a shard death erases every home pointing at it
(the PTT warmth died with the shard).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["AffinityPolicy"]


class AffinityPolicy:
    """Warm-PTT home tracking plus the saturation-aware placement order."""

    def __init__(self) -> None:
        self._home: dict[str, str] = {}

    # ------------------------------------------------------------------
    def home_of(self, tenant: str) -> str | None:
        """The shard holding the tenant's warm PTT state, if any."""
        return self._home.get(tenant)

    def note_placement(self, tenant: str, shard_id: str) -> None:
        """The tenant was placed on ``shard_id``: its PTT warms up there."""
        self._home[tenant] = shard_id

    def rehome(self, tenant: str, shard_id: str) -> None:
        """Warm migration: the tenant's checkpointed PTT state moved to
        ``shard_id``, so that shard is its home *now* — before any new
        placement happens — and the next submission goes straight there."""
        self._home[tenant] = shard_id

    def forget_shard(self, shard_id: str) -> list[str]:
        """A shard died: every tenant homed there goes cold.

        Returns the affected tenants (sorted, for deterministic reports).
        """
        orphaned = sorted(t for t, s in self._home.items() if s == shard_id)
        for tenant in orphaned:
            del self._home[tenant]
        return orphaned

    def homes(self) -> dict[str, str]:
        """Snapshot of every tenant→home assignment (JSON-able)."""
        return dict(sorted(self._home.items()))

    # ------------------------------------------------------------------
    def order(
        self,
        tenant: str,
        ring_preference: Sequence[str],
        *,
        alive: Iterable[str],
        saturated: Iterable[str] = (),
    ) -> list[str]:
        """The placement order for one submission.

        ``ring_preference`` is the ring's clockwise walk for the tenant;
        ``alive`` filters dead shards out entirely; ``saturated`` demotes
        shards at/over the admission high-water mark behind every
        unsaturated one.  The home shard (when alive and unsaturated)
        jumps to the front.
        """
        alive_set = set(alive)
        saturated_set = set(saturated)
        home = self._home.get(tenant)
        preferred: list[str] = []
        demoted: list[str] = []
        if home is not None and home in alive_set and home not in saturated_set:
            preferred.append(home)
        for shard_id in ring_preference:
            if shard_id not in alive_set or shard_id == home:
                continue
            if shard_id in saturated_set:
                demoted.append(shard_id)
            else:
                preferred.append(shard_id)
        if home is not None and home in alive_set and home in saturated_set:
            demoted.insert(0, home)
        return preferred + demoted
