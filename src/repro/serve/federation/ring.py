"""Seeded consistent-hash ring with virtual nodes.

Placement is a pure function of ``(seed, member set, tenant)``: every
shard contributes ``vnodes`` ring points drawn from its own named RNG
substream (``stream(seed, "fed.ring", shard_id)``), and every tenant
hashes to one point the same way (``stream(seed, "fed.ring", tenant)``).
A tenant's owner is the first shard point clockwise from its own point;
its *preference order* keeps walking clockwise collecting distinct
shards, which is what the router falls back through when the owner is
dead or saturated.

The two properties the Hypothesis suite pins down:

* **balance** — with enough virtual nodes, tenant ownership spreads
  across shards within a constant factor of uniform;
* **minimal remap** — removing a shard moves only the tenants it owned
  (everyone else's clockwise walk is unchanged below their old owner),
  and adding a shard moves only the tenants the new shard now owns.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.errors import ServeError
from repro.sim.rng import stream

__all__ = ["ConsistentHashRing", "RingError"]

#: Ring positions are 64-bit; the ring is the circle Z / 2^64.
_RING_BITS = 64


class RingError(ServeError):
    """Invalid ring operation (unknown/duplicate member, empty ring)."""

    code = "ring_error"


class ConsistentHashRing:
    """Deterministic consistent hashing over named shard members."""

    def __init__(
        self,
        members: Iterable[str] = (),
        *,
        seed: int = 0,
        vnodes: int = 64,
    ):
        if vnodes < 1:
            raise RingError(f"a member needs at least one virtual node, got {vnodes}")
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        #: sorted ring points: (position, member) — member breaks position ties
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        self._tenant_points: dict[str, int] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # ------------------------------------------------------------------
    def _member_points(self, member: str) -> list[int]:
        rng = stream(self.seed, "fed.ring", member)
        return [int(p) for p in rng.integers(0, 2**_RING_BITS, size=self.vnodes,
                                             dtype="uint64")]

    def tenant_point(self, tenant: str) -> int:
        """The tenant's fixed position on the ring (memoised)."""
        point = self._tenant_points.get(tenant)
        if point is None:
            rng = stream(self.seed, "fed.ring", tenant)
            point = int(rng.integers(0, 2**_RING_BITS, dtype="uint64"))
            self._tenant_points[tenant] = point
        return point

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Join ``member``: insert its virtual nodes (sorted-merge)."""
        if not member:
            raise RingError("ring member name must be non-empty")
        if member in self._members:
            raise RingError(f"ring member {member!r} already joined")
        self._members.add(member)
        for position in self._member_points(member):
            bisect.insort(self._points, (position, member))

    def remove(self, member: str) -> None:
        """Leave: drop every virtual node of ``member``."""
        if member not in self._members:
            raise RingError(f"ring member {member!r} is not on the ring")
        self._members.discard(member)
        self._points = [(p, m) for p, m in self._points if m != member]

    # ------------------------------------------------------------------
    def owner(self, tenant: str) -> str:
        """The shard owning ``tenant``: first point clockwise from its hash."""
        if not self._points:
            raise RingError("the ring has no members")
        position = self.tenant_point(tenant)
        idx = bisect.bisect_left(self._points, (position, ""))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the circle
        return self._points[idx][1]

    def preference(self, tenant: str) -> list[str]:
        """Every member, ordered by the clockwise walk from the tenant.

        The first entry is :meth:`owner`; subsequent entries are the
        fallback shards in deterministic ring order (each member listed
        once, at its first point encountered).
        """
        if not self._points:
            raise RingError("the ring has no members")
        position = self.tenant_point(tenant)
        start = bisect.bisect_left(self._points, (position, ""))
        seen: list[str] = []
        seen_set: set[str] = set()
        n = len(self._points)
        for step in range(n):
            member = self._points[(start + step) % n][1]
            if member not in seen_set:
                seen_set.add(member)
                seen.append(member)
                if len(seen) == len(self._members):
                    break
        return seen

    def ownership(self, tenants: Sequence[str]) -> dict[str, str]:
        """Batch :meth:`owner` over many tenants (property-test helper)."""
        return {tenant: self.owner(tenant) for tenant in tenants}

    def digest(self) -> str:
        """A short deterministic digest of ``(seed, vnodes, member set)``.

        Two routers agree on placement iff their digests match, so the
        membership snapshot carries this as a one-token fingerprint of
        the ring topology (cheap to compare across epochs and runs).
        """
        basis = f"{self.seed}:{self.vnodes}:" + ",".join(self.members)
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> dict[str, object]:
        """JSON-able summary for the federated metrics snapshot."""
        return {
            "seed": self.seed,
            "vnodes": self.vnodes,
            "members": self.members,
            "points": len(self._points),
            "digest": self.digest(),
        }

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(members={self.members}, seed={self.seed}, "
            f"vnodes={self.vnodes})"
        )
