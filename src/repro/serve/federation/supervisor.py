"""Supervised shard respawn: confirmed-dead shards come back at a new epoch.

The :class:`ShardSupervisor` is the federation's process manager.  When
the failure detector confirms a shard dead, the router hands the corpse
to the supervisor, which builds a **fresh incarnation** via the injected
factory — same ring name (``shard_id``), ``epoch + 1`` — and readmits it
through the normal join path.  The factory owns all construction detail
(topology, queue capacity, fault plan); the supervisor only decides
*whether* (respawn budget) and *at which epoch*.

Epoch discipline is the whole trick: the respawn's fault seed is derived
from the epoch-qualified instance id, so the new incarnation draws a
fresh crash schedule instead of re-dying on its predecessor's; and every
piece of per-shard state downstream (local-job index, fault decisions,
retired-metrics keys) is keyed by instance id, so a respawn can never
collide with its ghost.

Like everything in this package, the supervisor runs on logical time —
a respawn happens at a placement count, not a wall second — and its log
is part of the byte-reproducible run report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.federation.shard import ShardHandle

__all__ = ["RespawnRecord", "ShardSupervisor"]


@dataclass(frozen=True)
class RespawnRecord:
    """One supervised respawn, stamped with the logical clock."""

    at: int  # placements when the respawn happened
    shard_id: str
    old_epoch: int
    new_epoch: int

    def describe(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "shard_id": self.shard_id,
            "old_epoch": self.old_epoch,
            "new_epoch": self.new_epoch,
        }


class ShardSupervisor:
    """Respawns confirmed-dead shards through an injected factory.

    ``factory(shard_id, epoch)`` must return a started-enough
    :class:`~repro.serve.federation.shard.ShardHandle` ready for
    ``service.start()``; ``max_respawns`` caps respawns **per shard id**
    so a shard whose workload is inherently lethal cannot flap forever
    (past the cap it stays dead and its tenants migrate permanently).
    """

    def __init__(
        self,
        factory: Callable[[str, int], "ShardHandle"],
        *,
        max_respawns: int = 3,
    ):
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self._factory = factory
        self.max_respawns = max_respawns
        self._respawn_counts: dict[str, int] = {}
        self._log: list[RespawnRecord] = []

    # ------------------------------------------------------------------
    def can_respawn(self, shard_id: str) -> bool:
        return self._respawn_counts.get(shard_id, 0) < self.max_respawns

    async def respawn(
        self, shard_id: str, *, dead_epoch: int, at: int
    ) -> "ShardHandle | None":
        """Build and start the next incarnation, or ``None`` if over budget."""
        if not self.can_respawn(shard_id):
            return None
        new_epoch = dead_epoch + 1
        handle = self._factory(shard_id, new_epoch)
        if handle.epoch != new_epoch:
            raise ValueError(
                f"factory built {shard_id!r} at epoch {handle.epoch}, "
                f"supervisor asked for {new_epoch}"
            )
        await handle.service.start()
        self._respawn_counts[shard_id] = self._respawn_counts.get(shard_id, 0) + 1
        self._log.append(
            RespawnRecord(
                at=at, shard_id=shard_id, old_epoch=dead_epoch, new_epoch=new_epoch
            )
        )
        return handle

    # ------------------------------------------------------------------
    @property
    def respawns_total(self) -> int:
        return sum(self._respawn_counts.values())

    def describe(self) -> dict[str, Any]:
        return {
            "max_respawns": self.max_respawns,
            "respawns_total": self.respawns_total,
            "per_shard": dict(sorted(self._respawn_counts.items())),
            "log": [record.describe() for record in self._log],
        }
