"""Deterministic, named random streams.

Every stochastic component of the simulator (baseline random stealing,
noise injection, workload imbalance) draws from its own substream derived
from the run seed plus a string path, so

* two runs with the same seed are bit-identical, and
* adding a consumer never perturbs the draws of existing consumers.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stream", "spawn_key"]


def spawn_key(*names: str) -> list[int]:
    """Stable integer key material derived from string path components."""
    return [zlib.crc32(n.encode("utf-8")) for n in names]


def stream(seed: int, *names: str) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for substream ``names`` of ``seed``.

    Example::

        rng = stream(run_seed, "runtime", "steal")
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(spawn_key(*names)))
    return np.random.Generator(np.random.Philox(ss))
