"""Deterministic, named random streams.

Every stochastic component of the simulator (baseline random stealing,
noise injection, workload imbalance) draws from its own substream derived
from the run seed plus a string path, so

* two runs with the same seed are bit-identical, and
* adding a consumer never perturbs the draws of existing consumers.
"""

from __future__ import annotations

import random
import zlib

import numpy as np

__all__ = ["stream", "spawn_key", "pyrandom"]


def spawn_key(*names: str) -> list[int]:
    """Stable integer key material derived from string path components."""
    return [zlib.crc32(n.encode("utf-8")) for n in names]


def stream(seed: int, *names: str) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for substream ``names`` of ``seed``.

    Example::

        rng = stream(run_seed, "runtime", "steal")
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(spawn_key(*names)))
    return np.random.Generator(np.random.Philox(ss))


def pyrandom(seed: int, *names: str) -> random.Random:
    """A seeded :class:`random.Random` for substream ``names`` of ``seed``.

    Same substream addressing as :func:`stream`, for call sites that want
    cheap scalar draws (backoff jitter, reservoir slots) without paying
    for a numpy ``Generator``.  The two never share state: the stdlib
    generator is seeded from 128 bits of the substream's
    :class:`~numpy.random.SeedSequence` output.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(spawn_key(*names)))
    entropy = int.from_bytes(ss.generate_state(4, dtype=np.uint32).tobytes(), "little")
    return random.Random(entropy)
