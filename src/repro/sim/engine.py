"""Discrete-event core: simulation clock and time-ordered event queue.

The taskloop executor advances the clock with variable-size steps (rate
advance, see :mod:`repro.sim.progress`); auxiliary timed events — noise
transitions, measurement epochs — live in the :class:`EventQueue` and bound
each step so state changes are never skipped over.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Clock", "Event", "EventQueue", "Simulator"]


class Clock:
    """Monotonic simulation clock in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if not math.isfinite(start) or start < 0.0:
            raise SimulationError(f"clock must start at a finite non-negative time, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` (must be finite and >= 0)."""
        if not math.isfinite(dt) or dt < 0.0:
            raise SimulationError(f"cannot advance clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (>= now)."""
        if not math.isfinite(t) or t < self._now - 1e-12:
            raise SimulationError(f"cannot move clock backwards to {t} from {self._now}")
        self._now = max(self._now, t)
        return self._now


@dataclass(order=True)
class Event:
    """A timed callback; ordering is (time, insertion sequence)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event`, stable for simultaneous events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def schedule(self, time: float, action: Callable[[], None], tag: str = "") -> Event:
        if not math.isfinite(time) or time < 0.0:
            raise SimulationError(f"cannot schedule event at time {time}")
        ev = Event(time=time, seq=next(self._counter), action=action, tag=tag)
        heapq.heappush(self._heap, ev)
        return ev

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def next_time(self) -> float:
        """Time of the earliest pending event, ``inf`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else math.inf

    def pop_due(self, now: float) -> list[Event]:
        """Pop every non-cancelled event with ``time <= now`` in order."""
        due: list[Event] = []
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time > now + 1e-15:
                break
            due.append(heapq.heappop(self._heap))
        return due

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def is_empty(self) -> bool:
        return len(self) == 0


class Simulator:
    """Clock + event queue + counters: shared spine of one simulated run."""

    def __init__(self) -> None:
        self.clock = Clock()
        self.events = EventQueue()
        self.stats: dict[str, Any] = {}

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_in(self, dt: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` ``dt`` seconds from now."""
        return self.events.schedule(self.now + dt, action, tag)

    def run_due_events(self) -> int:
        """Fire all events due at the current time; returns how many ran."""
        due = self.events.pop_due(self.now)
        for ev in due:
            ev.action()
        return len(due)

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named statistic counter."""
        self.stats[counter] = self.stats.get(counter, 0.0) + amount
