"""Discrete-event core: simulation clock and time-ordered event queue.

The taskloop executor advances the clock with variable-size steps (rate
advance, see :mod:`repro.sim.progress`); auxiliary timed events — noise
transitions, measurement epochs — live in the :class:`EventQueue` and bound
each step so state changes are never skipped over.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Clock", "Event", "EventQueue", "Simulator"]

#: Relative tolerance for "same simulated time": two float timestamps
#: produced by different accumulation orders agree only to a few ulps, so
#: an absolute epsilon stops resolving same-time comparisons once the
#: clock grows past ~0.01 s.  Shared by ``EventQueue.pop_due`` (the PR 3
#: bug), ``Clock.advance_to``'s backwards guard, and the timeline window
#: filter in :mod:`repro.exp.timeline`.
DUE_REL_TOL = 1e-12
DUE_ABS_TOL = 1e-15


class Clock:
    """Monotonic simulation clock in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if not math.isfinite(start) or start < 0.0:
            raise SimulationError(f"clock must start at a finite non-negative time, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` (must be finite and >= 0)."""
        if not math.isfinite(dt) or dt < 0.0:
            raise SimulationError(f"cannot advance clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (>= now).

        "Backwards" uses the relative ``DUE_REL_TOL`` idiom: a target a
        few ulps below ``now`` (accumulated-float noise from a different
        summation order) clamps to ``now`` instead of raising, at any
        clock magnitude.
        """
        if not math.isfinite(t) or (
            t < self._now
            and not math.isclose(t, self._now, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL)
        ):
            raise SimulationError(f"cannot move clock backwards to {t} from {self._now}")
        self._now = max(self._now, t)
        return self._now


@dataclass(order=True)
class Event:
    """A timed callback; ordering is (time, insertion sequence)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    _queue: "EventQueue | None" = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()


class EventQueue:
    """Min-heap of :class:`Event`, stable for simultaneous events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        # live (non-cancelled) event count, maintained incrementally so
        # __len__/is_empty are O(1) in the executor's hot loop
        self._live = 0

    def schedule(self, time: float, action: Callable[[], None], tag: str = "") -> Event:
        if not math.isfinite(time) or time < 0.0:
            raise SimulationError(f"cannot schedule event at time {time}")
        ev = Event(time=time, seq=next(self._counter), action=action, tag=tag,
                   _queue=self)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def _note_cancelled(self) -> None:
        self._live -= 1

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    @staticmethod
    def _due(time: float, now: float) -> bool:
        return time <= now or math.isclose(
            time, now, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL
        )

    def next_time(self) -> float:
        """Time of the earliest pending event, ``inf`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else math.inf

    def pop_due(self, now: float) -> list[Event]:
        """Pop every non-cancelled event with ``time <= now`` in order.

        "Due" uses a relative tolerance: timestamps within a few ulps of
        ``now`` (accumulated-float noise) count as simultaneous at any
        magnitude of simulated time.
        """
        due: list[Event] = []
        while True:
            self._drop_cancelled()
            if not self._heap or not self._due(self._heap[0].time, now):
                break
            ev = heapq.heappop(self._heap)
            ev._queue = None  # popped: a late cancel() must not touch _live
            self._live -= 1
            due.append(ev)
        return due

    def __len__(self) -> int:
        return self._live

    def is_empty(self) -> bool:
        return self._live == 0


class Simulator:
    """Clock + event queue + counters: shared spine of one simulated run."""

    def __init__(self) -> None:
        self.clock = Clock()
        self.events = EventQueue()
        self.stats: dict[str, Any] = {}

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_in(self, dt: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` ``dt`` seconds from now."""
        return self.events.schedule(self.now + dt, action, tag)

    def run_due_events(self) -> int:
        """Fire all events due at the current time; returns how many ran."""
        due = self.events.pop_due(self.now)
        for ev in due:
            ev.action()
        return len(due)

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named statistic counter."""
        self.stats[counter] = self.stats.get(counter, 0.0) + amount
