"""Discrete-event core: simulation clock and time-ordered event queue.

The taskloop executor advances the clock with variable-size steps (rate
advance, see :mod:`repro.sim.progress`); auxiliary timed events — noise
transitions, measurement epochs — live in the :class:`EventQueue` and bound
each step so state changes are never skipped over.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Clock", "Event", "EventQueue", "Simulator"]

#: Relative tolerance for "same simulated time": two float timestamps
#: produced by different accumulation orders agree only to a few ulps, so
#: an absolute epsilon stops resolving same-time comparisons once the
#: clock grows past ~0.01 s.  Shared by ``EventQueue.pop_due`` (the PR 3
#: bug), ``Clock.advance_to``'s backwards guard, and the timeline window
#: filter in :mod:`repro.exp.timeline`.
DUE_REL_TOL = 1e-12
DUE_ABS_TOL = 1e-15


class Clock:
    """Monotonic simulation clock in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if not math.isfinite(start) or start < 0.0:
            raise SimulationError(f"clock must start at a finite non-negative time, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` (must be finite and >= 0)."""
        if not math.isfinite(dt) or dt < 0.0:
            raise SimulationError(f"cannot advance clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (>= now).

        "Backwards" uses the relative ``DUE_REL_TOL`` idiom: a target a
        few ulps below ``now`` (accumulated-float noise from a different
        summation order) clamps to ``now`` instead of raising, at any
        clock magnitude.
        """
        if not math.isfinite(t) or (
            t < self._now
            and not math.isclose(t, self._now, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL)
        ):
            raise SimulationError(f"cannot move clock backwards to {t} from {self._now}")
        self._now = max(self._now, t)
        return self._now


@dataclass(order=True)
class Event:
    """A timed callback; ordering is (time, insertion sequence)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    _queue: "EventQueue | None" = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()


class EventQueue:
    """Min-heap of :class:`Event`, stable for simultaneous events.

    The heap stores ``(time, seq, Event)`` tuples rather than the events
    themselves: sift comparisons then run on plain tuples at C speed
    instead of re-entering the dataclass ``__lt__`` (which builds a
    comparison tuple per probe), and the hot-path operations below avoid
    per-call allocation entirely — ``pop_due`` fills a caller-owned buffer
    and ``next_time`` peeks without popping.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        # live (non-cancelled) event count, maintained incrementally so
        # __len__/is_empty are O(1) in the executor's hot loop
        self._live = 0

    def schedule(self, time: float, action: Callable[[], None], tag: str = "") -> Event:
        if not math.isfinite(time) or time < 0.0:
            raise SimulationError(f"cannot schedule event at time {time}")
        ev = Event(time=time, seq=next(self._counter), action=action, tag=tag,
                   _queue=self)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        self._live += 1
        return ev

    def _note_cancelled(self) -> None:
        self._live -= 1

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    @staticmethod
    def _due(time: float, now: float) -> bool:
        return time <= now or math.isclose(
            time, now, rel_tol=DUE_REL_TOL, abs_tol=DUE_ABS_TOL
        )

    def next_time(self) -> float:
        """Time of the earliest pending event, ``inf`` when empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else math.inf

    def pop_due(self, now: float, out: list[Event] | None = None) -> list[Event]:
        """Pop every non-cancelled event with ``time <= now`` in order.

        "Due" uses a relative tolerance: timestamps within a few ulps of
        ``now`` (accumulated-float noise) count as simultaneous at any
        magnitude of simulated time.

        ``out``, when given, is cleared and reused as the result list so a
        caller polling every simulation step never churns allocations.
        """
        if out is None:
            due: list[Event] = []
        else:
            due = out
            due.clear()
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                heapq.heappop(heap)
                continue
            if not self._due(entry[0], now):
                break
            heapq.heappop(heap)
            ev._queue = None  # popped: a late cancel() must not touch _live
            self._live -= 1
            due.append(ev)
        return due

    def __len__(self) -> int:
        return self._live

    def is_empty(self) -> bool:
        return self._live == 0


class Simulator:
    """Clock + event queue + counters: shared spine of one simulated run."""

    def __init__(self) -> None:
        self.clock = Clock()
        self.events = EventQueue()
        self.stats: dict[str, Any] = {}
        # reused pop_due buffer; swapped out while firing so a reentrant
        # run_due_events (an action that advances the clock) falls back to
        # a fresh list instead of clobbering the in-flight batch
        self._due_buf: list[Event] | None = []

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_in(self, dt: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` ``dt`` seconds from now."""
        return self.events.schedule(self.now + dt, action, tag)

    def run_due_events(self) -> int:
        """Fire all events due at the current time; returns how many ran."""
        events = self.events
        if events._live == 0:
            return 0
        buf = self._due_buf
        self._due_buf = None
        try:
            due = events.pop_due(self.now, out=buf)
            for ev in due:
                ev.action()
            return len(due)
        finally:
            self._due_buf = buf

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named statistic counter."""
        self.stats[counter] = self.stats.get(counter, 0.0) + amount
