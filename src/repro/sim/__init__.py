"""Discrete-event simulation spine: clock, events, rate-based progress.

The executor in :mod:`repro.runtime` drives a :class:`Simulator` and a
:class:`CoreStates` through variable-size time steps whose length is set by
the earliest task completion or external event, with per-step rates coming
from :mod:`repro.interference`.
"""

from repro.sim.engine import Clock, Event, EventQueue, Simulator
from repro.sim.progress import EPS, CoreStates
from repro.sim.rng import spawn_key, stream
from repro.sim.trace import StealRecord, TaskloopRecord, TaskRecord, Trace

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Simulator",
    "EPS",
    "CoreStates",
    "spawn_key",
    "stream",
    "StealRecord",
    "TaskloopRecord",
    "TaskRecord",
    "Trace",
]
