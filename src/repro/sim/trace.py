"""Execution tracing: optional structured records of a simulated run.

Tracing is off by default (it allocates); turn it on to inspect scheduler
decisions, render per-taskloop timelines, or debug workload models.  The
trace is an append-only list of typed records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TaskRecord", "TaskloopRecord", "StealRecord", "Trace"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed chunk: where it ran and what it cost."""

    taskloop: str
    chunk_index: int
    core: int
    node: int
    start: float
    end: float
    base_time: float
    stolen: bool


@dataclass(frozen=True)
class StealRecord:
    """A successful steal: thief took ``chunk_index`` from ``victim_core``."""

    taskloop: str
    chunk_index: int
    thief_core: int
    victim_core: int
    remote: bool
    time: float


@dataclass(frozen=True)
class TaskloopRecord:
    """One taskloop execution: configuration used and measured time."""

    taskloop: str
    iteration: int
    num_threads: int
    node_mask_bits: int
    steal_policy: str
    start: float
    end: float
    overhead: float

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Append-only run trace; disabled traces ignore all appends."""

    enabled: bool = False
    tasks: list[TaskRecord] = field(default_factory=list)
    steals: list[StealRecord] = field(default_factory=list)
    taskloops: list[TaskloopRecord] = field(default_factory=list)

    def add_task(self, record: TaskRecord) -> None:
        if self.enabled:
            self.tasks.append(record)

    def add_steal(self, record: StealRecord) -> None:
        if self.enabled:
            self.steals.append(record)

    def add_taskloop(self, record: TaskloopRecord) -> None:
        if self.enabled:
            self.taskloops.append(record)

    def taskloop_history(self, name: str) -> Iterator[TaskloopRecord]:
        """All executions of taskloop ``name`` in program order."""
        return (r for r in self.taskloops if r.taskloop == name)

    def remote_steal_count(self) -> int:
        return sum(1 for s in self.steals if s.remote)

    def clear(self) -> None:
        self.tasks.clear()
        self.steals.clear()
        self.taskloops.clear()
