"""Incremental slowdown recomputation: the ``--engine=incremental`` core.

The reference engine (:meth:`repro.interference.model.InterferenceModel.
slowdowns`) rebuilds every active core's slowdown from scratch on every
simulation step.  Almost all of that work is redundant: slowdowns are a
pure function of ``(active, mem_frac, gamma, weights, online)`` and those
inputs change *only* when a core starts or finishes a task or flips its
online state — all logged by the :class:`CoreStates` speed-mutation choke
point (pure speed-factor transitions such as noise or DVFS change core
speed, which feeds completion times but never slowdowns, so they stay out
of the log).

:class:`IncrementalInterference` therefore caches the slowdown vector and
refreshes only what a consumed change log says is stale:

1. per-node demand is always recomputed with the reference expression —
   it is a sum over the active set, so any membership change can perturb
   every node's float sum;
2. nodes whose saturation *ratio* changed (exact bitwise ``!=`` against
   the cached vector) form the dirty-node set;
3. the rows refreshed are exactly (cores that started, finished, or
   flipped online state) ∪ (active cores with a nonzero home-node weight
   on a dirty node) — a superset of every core whose slowdown can have
   changed.  An offline core's frozen task issues no demand (the
   reference compacts over ``active & online``), which the fast path
   mirrors by zeroing the offline rows of its demand cache.

Byte-identity with the reference engine is a design invariant, not an
approximation: every refreshed quantity is recomputed with the *same
numpy expressions* the reference uses, and a skipped row is skipped only
when recomputing it would be a no-op (its inputs — weights, latency,
gamma, mem_frac and the ratio entries its nonzero weights select — are
bitwise unchanged, and row-wise ``sum(axis=1)`` reductions are
independent across rows).  The differential suite in
``tests/sim/test_engine_equivalence.py`` pins this down run-for-run.

One caveat is inherited from the reference expression itself: a zero
weight silences a dirty node's ratio only because ``0.0 * penalty == 0.0``
for finite penalties.  A penalty overflowing to ``inf`` (``ratio ** (1 +
gamma) > 1e308``, far outside the model's calibrated range) would poison
the reference's row with ``nan`` while the incremental path keeps its
finite cache; the equivalence suite bounds ``gamma`` accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.interference.model import InterferenceModel
from repro.sim.progress import CoreStates

__all__ = ["IncrementalInterference"]


class IncrementalInterference:
    """Cached, change-driven view of one machine's interference state.

    Bound to one ``(model, states)`` pair; ``states.track_changes`` must
    be on for the whole lifetime so no start/finish escapes the log.
    """

    __slots__ = (
        "model",
        "states",
        "_s",
        "_ratio",
        "_sat",
        "_sat_mean",
        "_sat_max",
        "_scalars_stale",
        "_prod",
        "_demand_full",
    )

    def __init__(self, model: InterferenceModel, states: CoreStates):
        num_nodes = states.num_nodes
        if model.latency.shape != (states.num_cores, num_nodes):
            raise SimulationError("core states do not match this machine")
        self.model = model
        self.states = states
        if not states.track_changes:
            states.track_changes = True
        # caches mirror the all-idle reference outputs exactly
        self._s = np.ones(states.num_cores)
        self._ratio = np.ones(num_nodes)
        self._sat = np.zeros(num_nodes)
        self._sat_mean = 0.0
        self._sat_max = 0.0
        self._scalars_stale = False
        # Demand cache: prod[c] == mem_frac[c] * weights[c] for active
        # cores, an all-zero row otherwise, so that prod.sum(axis=0)
        # reproduces the reference's compacted active-row sum bit for bit
        # (see _padded_sum_matches_compacted).  When the identity cannot
        # be relied on, fall back to the reference node_demand per step.
        self._prod = np.zeros((states.num_cores, num_nodes))
        self._demand_full = num_nodes < 2 or not _padded_sum_matches_compacted(
            min(states.num_cores, 257), num_nodes
        )

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Bring the cached slowdown/saturation state up to date.

        Consumes the :class:`CoreStates` change log; a no-change call is
        O(1).
        """
        states = self.states
        changed = states.changed
        if not changed:
            return
        model = self.model
        a = states.active
        if not a.any():
            # reference all-idle outputs: s = 1, sat = 0, ratio = 1
            self._s[:] = 1.0
            self._sat[:] = 0.0
            self._ratio[:] = 1.0
            self._sat_mean = 0.0
            self._sat_max = 0.0
            self._scalars_stale = False
            if not self._demand_full:
                prod = self._prod
                for core in changed:
                    prod[core] = 0.0
            changed.clear()
            return
        # demand/saturation/ratio: recomputed on every membership change —
        # the active-set sum's rounding depends on set membership, so any
        # start/finish can move any node's demand by ulps.  The fast path
        # keeps prod rows current from the change log and reduces the full
        # matrix (idle rows are exact +0.0 identities in the sequential
        # axis-0 sum); the fallback is the reference expression verbatim.
        if self._demand_full:
            demand = model.node_demand(states)
        else:
            prod = self._prod
            mem_frac = states.mem_frac
            weights = states.weights
            online = states.online
            for core in changed:
                if a[core] and online[core]:
                    prod[core] = mem_frac[core] * weights[core]
                else:
                    prod[core] = 0.0
            demand = model.bandwidth.core_bandwidth * np.add.reduce(prod, axis=0)
        sat = demand / model.bandwidth.node_bandwidth
        ratio = np.maximum(sat, 1.0)
        dirty_nodes = np.nonzero(ratio != self._ratio)[0]
        # rows to refresh: every started/finished core, plus every active
        # core whose chunk has weight on a node whose ratio moved
        dirty = np.zeros(states.num_cores, dtype=bool)
        s = self._s
        for core in changed:
            if a[core]:
                dirty[core] = True
            else:
                s[core] = 1.0
        if dirty_nodes.size:
            np.logical_or(
                dirty,
                (states.weights[:, dirty_nodes] != 0.0).any(axis=1) & a,
                out=dirty,
            )
            dirty &= a
        cores = np.nonzero(dirty)[0]
        if cores.size:
            # identical per-row expressions to InterferenceModel.slowdowns;
            # both branches agree bitwise on every row (ratio == 1 makes the
            # penalty exactly 1.0), so the branch choice is pure speed
            if np.all(ratio == 1.0):
                mem_mult = (states.weights[cores] * model.latency[cores]).sum(axis=1)
            else:
                log_r = np.log(ratio)
                penalty = np.exp(np.outer(1.0 + states.gamma[cores], log_r))
                mem_mult = (
                    states.weights[cores] * model.latency[cores] * penalty
                ).sum(axis=1)
            mf = states.mem_frac[cores]
            s[cores] = (1.0 - mf) + mf * mem_mult
        self._sat = sat
        self._ratio = ratio
        self._scalars_stale = True
        changed.clear()

    # ------------------------------------------------------------------
    def slowdowns(self) -> np.ndarray:
        """Per-core body slowdown vector (callers must not mutate it)."""
        self.refresh()
        return self._s

    def slowdowns_and_saturation(self) -> tuple[np.ndarray, np.ndarray]:
        """Both cached vectors, refreshed; mirrors the reference API."""
        self.refresh()
        return self._s, self._sat

    def saturation_scalars(self) -> tuple[float, float]:
        """``(mean, max)`` of per-node saturation, cached across steps.

        Bit-identical to ``float(sat.mean())`` / ``float(sat.max())`` on
        the reference's saturation vector, which is how
        :meth:`repro.counters.metrics.CounterBoard.step` consumes it.
        """
        self.refresh()
        if self._scalars_stale:
            # np.add.reduce / np.maximum.reduce are the kernels ndarray
            # .mean()/.max() bottom out in (umr_sum / umr_maximum), minus
            # the python wrapper cost; the division by the int length is
            # the same op _mean performs
            sat = self._sat
            self._sat_mean = float(np.add.reduce(sat) / sat.shape[0])
            self._sat_max = float(np.maximum.reduce(sat))
            self._scalars_stale = False
        return self._sat_mean, self._sat_max


def _padded_sum_matches_compacted(num_rows: int, num_cols: int) -> bool:
    """Probe numpy's axis-0 reduction for the zero-row identity.

    The demand fast path replaces the reference's compacted active-row sum
    with a full-matrix sum whose idle rows are exactly 0.0.  The two are
    bit-identical when the axis-0 reduction accumulates rows sequentially
    (numpy's behaviour whenever the reduction stride is non-contiguous,
    i.e. ``num_cols > 1``) because ``x + 0.0 == x`` for the non-negative
    partial sums involved; pairwise blocking would regroup the tree and
    break it (observable at ``num_cols == 1``).  Probing the actual
    behaviour at startup keeps the fast path safe against numpy changes:
    on any mismatch the engine silently falls back to the reference
    expression per step.
    """
    rows = np.arange(num_rows, dtype=np.float64)[:, None]
    cols = np.arange(num_cols, dtype=np.float64)[None, :]
    # association-sensitive values: sums of reciprocals round differently
    # under almost any regrouping of the accumulation tree
    x = 1.0 / (3.0 + 5.0 * rows + 7.0 * cols)
    idx = np.arange(num_rows)
    for modulus in (2, 3, 5):
        mask = (idx % modulus) != 0
        if not mask.any():
            continue
        padded = np.where(mask[:, None], x, 0.0)
        if not np.array_equal(x[mask].sum(axis=0), padded.sum(axis=0)):
            return False
    return True
