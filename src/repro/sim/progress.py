"""Rate-based task progress: the vectorised per-core execution state.

Tasks do not run for a precomputed duration; they hold *remaining base
work* (seconds under ideal conditions) and progress at a rate set by the
current interference state.  Whenever any core starts or finishes a task
the rates change, so the executor advances the whole machine in variable
steps:

1. compute per-core slowdowns from the interference model,
2. find the earliest completion (or external event),
3. advance every active core by that wall-time step,
4. handle completions / dispatch new work, repeat.

All state is structure-of-arrays over cores so that one step costs a
handful of numpy operations regardless of core count.

A task's cost is split into a *body* (subject to slowdown ``s >= 1``) and
*runtime overhead* (dequeue/steal/bookkeeping, burned at core speed,
unaffected by memory contention).  Overhead is burned first, matching a
worker that pays scheduling costs before touching the task body.

Speed mutations — noise episodes, DVFS steps, thermal throttling,
transient co-tenants, core offlining (see
:mod:`repro.interference.timeline`) — all flow through one choke point:
:meth:`CoreStates.set_speed_layer` / :meth:`CoreStates.set_online`.  The
choke point composes named multiplicative factor layers over the base
speeds, maintains the offline mask, bumps :attr:`CoreStates.speed_epoch`
so outstanding completion predictions are invalidated (the
stale-prediction guard in :meth:`CoreStates.advance`), and records online
transitions in the change log the incremental engine consumes — so both
execution engines observe every change identically.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.errors import SimulationError

__all__ = ["CoreStates", "EPS"]

EPS = 1e-12


class CoreStates:
    """Structure-of-arrays execution state for every core of the machine.

    Attributes (all indexed by core id)
    -----------------------------------
    active:
        Whether the core is currently executing a task.
    rem:
        Remaining base-time of the task body, seconds.
    ov:
        Remaining runtime-overhead time, seconds (burned before the body).
    mem_frac:
        Fraction of the task body that is memory-bound (0 = pure compute).
    gamma:
        Contention exponent of the running task's access pattern.
    weights:
        ``(num_cores, num_nodes)`` home-node weights of the running chunks.
    speed:
        Current core speed: base speed times the product of all factor
        layers, exactly ``0.0`` for offline cores.
    speed_div:
        Division-safe view of ``speed``: identical (the same array) while
        every core is online; offline lanes hold ``1.0`` so maskless
        ``x / speed_div`` never divides by zero.  Multiply by ``speed``,
        divide by ``speed_div``.
    online:
        Whether the core is available at all.  An offline core freezes the
        task it was running (resumed on re-online; no migration) and is
        skipped by dispatch.
    speed_epoch / online_epoch:
        Monotonic mutation counters bumped by the choke point;
        ``speed_epoch`` invalidates outstanding completion predictions,
        ``online_epoch`` tells the executor that dispatch eligibility
        changed without any task completing.
    """

    __slots__ = (
        "num_cores",
        "num_nodes",
        "active",
        "rem",
        "ov",
        "mem_frac",
        "gamma",
        "weights",
        "speed",
        "speed_div",
        "base_speed",
        "online",
        "offline",
        "any_offline",
        "speed_epoch",
        "online_epoch",
        "payload",
        "busy_time",
        "work_done",
        "track_changes",
        "changed",
        "_layers",
        "_all_online",
        "_no_offline",
        "_pred_epoch",
    )

    def __init__(self, num_cores: int, num_nodes: int, base_speed: np.ndarray | None = None):
        if num_cores < 1 or num_nodes < 1:
            raise SimulationError("need at least one core and one node")
        self.num_cores = num_cores
        self.num_nodes = num_nodes
        self.active = np.zeros(num_cores, dtype=bool)
        self.rem = np.zeros(num_cores)
        self.ov = np.zeros(num_cores)
        self.mem_frac = np.zeros(num_cores)
        self.gamma = np.zeros(num_cores)
        self.weights = np.zeros((num_cores, num_nodes))
        if base_speed is None:
            base_speed = np.ones(num_cores)
        base_speed = np.asarray(base_speed, dtype=np.float64)
        if base_speed.shape != (num_cores,) or np.any(base_speed <= 0):
            raise SimulationError("base_speed must be positive with one entry per core")
        self.base_speed = base_speed.copy()
        self.speed = base_speed.copy()
        # all online: speed_div aliases speed (both are rebound, never
        # mutated in place, so the alias is safe and division-exact)
        self.speed_div = self.speed
        self._all_online = np.ones(num_cores, dtype=bool)
        self._no_offline = np.zeros(num_cores, dtype=bool)
        self.online = self._all_online
        self.offline = self._no_offline
        self.any_offline = False
        self.speed_epoch = 0
        self.online_epoch = 0
        self.payload: list[Any] = [None] * num_cores
        # accumulated per-core busy wall-time and completed base work, used
        # for per-node performance tracing (the PTT's node statistics).
        self.busy_time = np.zeros(num_cores)
        self.work_done = np.zeros(num_cores)
        # Change tracking for the incremental interference engine: when
        # enabled, every start/finish records its core here, and so does
        # every online/offline transition (an offline core stops issuing
        # memory traffic, so its node's demand — and hence other cores'
        # slowdowns — changes; see InterferenceModel.node_demand).  Pure
        # speed-factor changes still never alter slowdowns, so they bump
        # speed_epoch but stay out of the log.  The consumer
        # (repro.sim.incremental) drains it; tracking defaults to off so
        # the reference engine is untouched.
        self.track_changes = False
        self.changed: list[int] = []
        # named multiplicative speed layers composed by the choke point
        self._layers: dict[str, np.ndarray] = {}
        # speed epoch stamped by the last completion_times() call; -1
        # means no prediction is outstanding
        self._pred_epoch = -1

    # ------------------------------------------------------------------
    def start(
        self,
        core: int,
        *,
        body: float,
        overhead: float,
        mem_frac: float,
        gamma: float,
        weights: np.ndarray,
        payload: Any,
    ) -> None:
        """Begin executing a task on an idle ``core``."""
        self._check_core(core)
        if self.active[core]:
            raise SimulationError(f"core {core} is already running a task")
        if body < 0 or overhead < 0 or body + overhead <= 0:
            raise SimulationError(f"task must have positive cost (body={body}, overhead={overhead})")
        if not (0.0 <= mem_frac <= 1.0):
            raise SimulationError(f"mem_frac must lie in [0, 1], got {mem_frac}")
        if gamma < 0:
            raise SimulationError(f"gamma must be non-negative, got {gamma}")
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.num_nodes,):
            raise SimulationError(f"weights must have shape ({self.num_nodes},), got {w.shape}")
        self.active[core] = True
        self.rem[core] = body
        self.ov[core] = overhead
        self.mem_frac[core] = mem_frac
        self.gamma[core] = gamma
        self.weights[core] = w
        self.payload[core] = payload
        if self.track_changes:
            self.changed.append(core)

    def finish(self, core: int) -> Any:
        """Retire the completed task on ``core``; returns its payload."""
        self._check_core(core)
        if not self.active[core]:
            raise SimulationError(f"core {core} is not running a task")
        payload = self.payload[core]
        self.active[core] = False
        self.rem[core] = 0.0
        self.ov[core] = 0.0
        self.mem_frac[core] = 0.0
        self.gamma[core] = 0.0
        self.weights[core] = 0.0
        self.payload[core] = None
        if self.track_changes:
            self.changed.append(core)
        return payload

    # ------------------------------------------------------------------
    # the speed-mutation choke point
    # ------------------------------------------------------------------
    def set_speed_layer(self, name: str, factors: np.ndarray) -> None:
        """Set one named multiplicative speed layer (> 0 per core).

        Layers compose in sorted-name order onto ``base_speed``; setting a
        layer to all-ones keeps it (the composition of ``1.0`` factors is
        exact), :meth:`clear_speed_layer` removes it.  Every call bumps
        ``speed_epoch``: outstanding completion predictions are stale.
        """
        f = np.asarray(factors, dtype=np.float64)
        if f.shape != (self.num_cores,) or np.any(f <= 0) or not np.all(np.isfinite(f)):
            raise SimulationError(
                f"speed layer {name!r} factors must be positive and finite, one per core"
            )
        self._layers[name] = f.copy()
        self._recompute_speed()

    def clear_speed_layer(self, name: str) -> None:
        """Remove a named speed layer (no-op if absent)."""
        if self._layers.pop(name, None) is not None:
            self._recompute_speed()

    def set_noise(self, factors: np.ndarray) -> None:
        """Apply per-core noise factors on top of base speeds (> 0).

        Kept as the noise process's entry point; now a thin wrapper over
        the ``"noise"`` layer of the choke point.
        """
        self.set_speed_layer("noise", factors)

    def set_online(self, online: np.ndarray) -> None:
        """Set the per-core online mask through the choke point.

        A core going offline freezes mid-task (its remaining work resumes
        when the core returns; no migration) and stops contributing memory
        demand, so every flipped core lands in the change log: the
        incremental engine must mark the affected slowdown rows dirty.
        Bumps ``online_epoch`` (and ``speed_epoch``) only when the mask
        actually changes.
        """
        o = np.asarray(online, dtype=bool)
        if o.shape != (self.num_cores,):
            raise SimulationError("online mask must have one entry per core")
        flipped = np.flatnonzero(o != self.online)
        if flipped.size == 0:
            return
        self.online = self._all_online if o.all() else o.copy()
        self.online_epoch += 1
        if self.track_changes:
            self.changed.extend(int(c) for c in flipped)
        self._recompute_speed()

    def _recompute_speed(self) -> None:
        """Recompose ``speed``/``speed_div`` from layers and the online mask.

        With no layers and everyone online this reproduces the pre-layer
        expressions bitwise (``base * f`` for a single layer is exactly the
        old ``set_noise`` result), so runs without asymmetry keep their
        bytes.
        """
        f: np.ndarray | None = None
        for name in sorted(self._layers):
            layer = self._layers[name]
            f = layer if f is None else f * layer
        speed = self.base_speed.copy() if f is None else self.base_speed * f
        if self.online is self._all_online or self.online.all():
            self.any_offline = False
            self.offline = self._no_offline
            self.speed = speed
            self.speed_div = speed
        else:
            self.any_offline = True
            self.offline = ~self.online
            self.speed = np.where(self.online, speed, 0.0)
            self.speed_div = np.where(self.online, speed, 1.0)
        self.speed_epoch += 1

    # ------------------------------------------------------------------
    def any_active(self) -> bool:
        return bool(self.active.any())

    def idle_cores(self, eligible: np.ndarray | None = None) -> list[int]:
        """Idle core ids, optionally restricted to a boolean mask."""
        mask = ~self.active
        if eligible is not None:
            mask = mask & eligible
        return [int(c) for c in np.flatnonzero(mask)]

    def completion_times(self, slowdown: np.ndarray) -> np.ndarray:
        """Wall time until each active core completes, ``inf`` if idle.

        ``slowdown`` is the per-core body slowdown from the interference
        model (>= 1 for active cores; ignored for idle ones).  An offline
        active core never completes on its own: ``inf``.

        The returned prediction is valid only until the next speed
        mutation; :meth:`advance` enforces that (the stale-prediction
        guard).
        """
        if slowdown.shape != (self.num_cores,):
            raise SimulationError("slowdown must have one entry per core")
        t = np.full(self.num_cores, math.inf)
        a = self.active
        t[a] = (self.ov[a] + self.rem[a] * slowdown[a]) / self.speed_div[a]
        if self.any_offline:
            t[a & self.offline] = math.inf
        self._pred_epoch = self.speed_epoch
        return t

    def advance(self, dt: float, slowdown: np.ndarray) -> list[int]:
        """Advance every active core by wall time ``dt``.

        Overhead burns first at core speed; the remainder of the step
        progresses the body at ``speed / slowdown``.  Offline cores freeze:
        they burn nothing and progress nothing (busy time still accrues —
        the occupied core is unavailable, which is exactly what the PTT's
        node statistics should see).  Returns the cores whose task
        completed within the step (caller must ``finish`` them).

        Raises when completion predictions derived before a speed mutation
        survive into this step: advancing by a ``dt`` computed from the
        pre-change speeds would fire completions early or late, the latent
        discrete-event bug the choke point exists to catch.  Callers must
        re-derive (:meth:`completion_times`) after every mutation.
        """
        if self._pred_epoch not in (-1, self.speed_epoch):
            raise SimulationError(
                "stale completion predictions: core speeds changed (epoch "
                f"{self._pred_epoch} -> {self.speed_epoch}) after "
                "completion_times(); re-derive predictions before advancing"
            )
        if dt < 0 or not math.isfinite(dt):
            raise SimulationError(f"cannot advance by {dt}")
        if dt == 0.0:
            return []
        a = self.active
        if not a.any():
            return []
        speed = self.speed[a]
        ov = self.ov[a]
        ov_wall = ov / self.speed_div[a]
        if self.any_offline:
            # offline lanes: burn the whole step as (frozen) overhead wall
            # time so neither overhead nor body progresses
            ov_wall[self.offline[a]] = math.inf
        burn_wall = np.minimum(ov_wall, dt)
        self.ov[a] = ov - burn_wall * speed
        body_wall = dt - burn_wall
        progressed = body_wall * speed / slowdown[a]
        before = self.rem[a]
        rem = np.maximum(before - progressed, 0.0)
        self.rem[a] = rem
        self.busy_time[a] += dt
        self.work_done[a] += before - rem
        done_local = (rem <= EPS) & (self.ov[a] <= EPS)
        cores = np.flatnonzero(a)
        return [int(c) for c in cores[done_local]]

    def _check_core(self, core: int) -> None:
        if not (0 <= core < self.num_cores):
            raise SimulationError(f"unknown core {core}")
