"""Rate-based task progress: the vectorised per-core execution state.

Tasks do not run for a precomputed duration; they hold *remaining base
work* (seconds under ideal conditions) and progress at a rate set by the
current interference state.  Whenever any core starts or finishes a task
the rates change, so the executor advances the whole machine in variable
steps:

1. compute per-core slowdowns from the interference model,
2. find the earliest completion (or external event),
3. advance every active core by that wall-time step,
4. handle completions / dispatch new work, repeat.

All state is structure-of-arrays over cores so that one step costs a
handful of numpy operations regardless of core count.

A task's cost is split into a *body* (subject to slowdown ``s >= 1``) and
*runtime overhead* (dequeue/steal/bookkeeping, burned at core speed,
unaffected by memory contention).  Overhead is burned first, matching a
worker that pays scheduling costs before touching the task body.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.errors import SimulationError

__all__ = ["CoreStates", "EPS"]

EPS = 1e-12


class CoreStates:
    """Structure-of-arrays execution state for every core of the machine.

    Attributes (all indexed by core id)
    -----------------------------------
    active:
        Whether the core is currently executing a task.
    rem:
        Remaining base-time of the task body, seconds.
    ov:
        Remaining runtime-overhead time, seconds (burned before the body).
    mem_frac:
        Fraction of the task body that is memory-bound (0 = pure compute).
    gamma:
        Contention exponent of the running task's access pattern.
    weights:
        ``(num_cores, num_nodes)`` home-node weights of the running chunks.
    speed:
        Current core speed (base speed x noise factor); scales both body
        and overhead progress.
    """

    __slots__ = (
        "num_cores",
        "num_nodes",
        "active",
        "rem",
        "ov",
        "mem_frac",
        "gamma",
        "weights",
        "speed",
        "base_speed",
        "payload",
        "busy_time",
        "work_done",
        "track_changes",
        "changed",
    )

    def __init__(self, num_cores: int, num_nodes: int, base_speed: np.ndarray | None = None):
        if num_cores < 1 or num_nodes < 1:
            raise SimulationError("need at least one core and one node")
        self.num_cores = num_cores
        self.num_nodes = num_nodes
        self.active = np.zeros(num_cores, dtype=bool)
        self.rem = np.zeros(num_cores)
        self.ov = np.zeros(num_cores)
        self.mem_frac = np.zeros(num_cores)
        self.gamma = np.zeros(num_cores)
        self.weights = np.zeros((num_cores, num_nodes))
        if base_speed is None:
            base_speed = np.ones(num_cores)
        base_speed = np.asarray(base_speed, dtype=np.float64)
        if base_speed.shape != (num_cores,) or np.any(base_speed <= 0):
            raise SimulationError("base_speed must be positive with one entry per core")
        self.base_speed = base_speed.copy()
        self.speed = base_speed.copy()
        self.payload: list[Any] = [None] * num_cores
        # accumulated per-core busy wall-time and completed base work, used
        # for per-node performance tracing (the PTT's node statistics).
        self.busy_time = np.zeros(num_cores)
        self.work_done = np.zeros(num_cores)
        # Change tracking for the incremental interference engine: when
        # enabled, every start/finish records its core here.  Slowdowns
        # depend only on (active, mem_frac, gamma, weights), all of which
        # change exclusively through start/finish — noise changes `speed`,
        # which affects completion times but never slowdowns — so this log
        # is a complete dirty set for slowdown recomputation.  The consumer
        # (repro.sim.incremental) drains it; tracking defaults to off so
        # the reference engine is untouched.
        self.track_changes = False
        self.changed: list[int] = []

    # ------------------------------------------------------------------
    def start(
        self,
        core: int,
        *,
        body: float,
        overhead: float,
        mem_frac: float,
        gamma: float,
        weights: np.ndarray,
        payload: Any,
    ) -> None:
        """Begin executing a task on an idle ``core``."""
        self._check_core(core)
        if self.active[core]:
            raise SimulationError(f"core {core} is already running a task")
        if body < 0 or overhead < 0 or body + overhead <= 0:
            raise SimulationError(f"task must have positive cost (body={body}, overhead={overhead})")
        if not (0.0 <= mem_frac <= 1.0):
            raise SimulationError(f"mem_frac must lie in [0, 1], got {mem_frac}")
        if gamma < 0:
            raise SimulationError(f"gamma must be non-negative, got {gamma}")
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.num_nodes,):
            raise SimulationError(f"weights must have shape ({self.num_nodes},), got {w.shape}")
        self.active[core] = True
        self.rem[core] = body
        self.ov[core] = overhead
        self.mem_frac[core] = mem_frac
        self.gamma[core] = gamma
        self.weights[core] = w
        self.payload[core] = payload
        if self.track_changes:
            self.changed.append(core)

    def finish(self, core: int) -> Any:
        """Retire the completed task on ``core``; returns its payload."""
        self._check_core(core)
        if not self.active[core]:
            raise SimulationError(f"core {core} is not running a task")
        payload = self.payload[core]
        self.active[core] = False
        self.rem[core] = 0.0
        self.ov[core] = 0.0
        self.mem_frac[core] = 0.0
        self.gamma[core] = 0.0
        self.weights[core] = 0.0
        self.payload[core] = None
        if self.track_changes:
            self.changed.append(core)
        return payload

    def set_noise(self, factors: np.ndarray) -> None:
        """Apply per-core noise factors on top of base speeds (> 0)."""
        f = np.asarray(factors, dtype=np.float64)
        if f.shape != (self.num_cores,) or np.any(f <= 0):
            raise SimulationError("noise factors must be positive, one per core")
        self.speed = self.base_speed * f

    # ------------------------------------------------------------------
    def any_active(self) -> bool:
        return bool(self.active.any())

    def idle_cores(self, eligible: np.ndarray | None = None) -> list[int]:
        """Idle core ids, optionally restricted to a boolean mask."""
        mask = ~self.active
        if eligible is not None:
            mask = mask & eligible
        return [int(c) for c in np.flatnonzero(mask)]

    def completion_times(self, slowdown: np.ndarray) -> np.ndarray:
        """Wall time until each active core completes, ``inf`` if idle.

        ``slowdown`` is the per-core body slowdown from the interference
        model (>= 1 for active cores; ignored for idle ones).
        """
        if slowdown.shape != (self.num_cores,):
            raise SimulationError("slowdown must have one entry per core")
        t = np.full(self.num_cores, math.inf)
        a = self.active
        t[a] = (self.ov[a] + self.rem[a] * slowdown[a]) / self.speed[a]
        return t

    def advance(self, dt: float, slowdown: np.ndarray) -> list[int]:
        """Advance every active core by wall time ``dt``.

        Overhead burns first at core speed; the remainder of the step
        progresses the body at ``speed / slowdown``.  Returns the cores
        whose task completed within the step (caller must ``finish`` them).
        """
        if dt < 0 or not math.isfinite(dt):
            raise SimulationError(f"cannot advance by {dt}")
        if dt == 0.0:
            return []
        a = self.active
        if not a.any():
            return []
        speed = self.speed[a]
        ov = self.ov[a]
        ov_wall = ov / speed
        burn_wall = np.minimum(ov_wall, dt)
        self.ov[a] = ov - burn_wall * speed
        body_wall = dt - burn_wall
        progressed = body_wall * speed / slowdown[a]
        before = self.rem[a]
        rem = np.maximum(before - progressed, 0.0)
        self.rem[a] = rem
        self.busy_time[a] += dt
        self.work_done[a] += before - rem
        done_local = (rem <= EPS) & (self.ov[a] <= EPS)
        cores = np.flatnonzero(a)
        return [int(c) for c in cores[done_local]]

    def _check_core(self, core: int) -> None:
        if not (0 <= core < self.num_cores):
            raise SimulationError(f"unknown core {core}")
