"""Chrome ``trace_event`` export of a simulated run.

Converts a :class:`repro.sim.trace.Trace` into the Chrome/Perfetto JSON
trace-event format (the JSON Array/Object format understood by
``chrome://tracing`` and https://ui.perfetto.dev), complementing the
ASCII timelines of :mod:`repro.exp.timeline` with an interactive view.

Mapping:

* each NUMA node becomes a *process* (``pid`` = node id) and each of its
  cores a *thread* (``tid`` = core id), labelled via metadata events, so
  Perfetto groups execution exactly like the machine's topology;
* every executed chunk is a complete ``"X"`` slice on its core's track,
  marked ``stolen`` in its args when it arrived by work stealing;
* every steal is an instant ``"i"`` event on the thief's track;
* every taskloop execution is a slice on a synthetic *runtime* process
  (``pid`` = one past the last node id) carrying the chosen
  configuration (threads, node mask, steal policy) in its args.

Simulated seconds are exported as microseconds (the format's native
unit), preserving full float precision.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.ioutil import atomic_write
from repro.sim.trace import Trace
from repro.topology.machine import MachineTopology

__all__ = ["RUNTIME_TRACK_NAME", "chrome_trace_events", "write_chrome_trace"]

#: Label of the synthetic process that carries per-taskloop slices.
RUNTIME_TRACK_NAME = "taskloop runtime"

_US = 1e6  # simulated seconds → trace microseconds


def _metadata(topology: MachineTopology) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    runtime_pid = topology.num_nodes
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": runtime_pid,
            "tid": 0,
            "args": {"name": RUNTIME_TRACK_NAME},
        }
    )
    events.append(
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": runtime_pid,
            "tid": 0,
            "args": {"sort_index": -1},  # show the runtime track first
        }
    )
    for node in topology.node_ids():
        socket = topology.socket_of_node(node)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"name": f"node {node} (socket {socket})"},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"sort_index": node},
            }
        )
        for core in topology.cores_of_node(node):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": node,
                    "tid": core,
                    "args": {"name": f"core {core}"},
                }
            )
    return events


def chrome_trace_events(trace: Trace, topology: MachineTopology) -> list[dict[str, Any]]:
    """All trace events (metadata + slices + instants), ready to serialise."""
    events = _metadata(topology)
    runtime_pid = topology.num_nodes
    for rec in trace.taskloops:
        events.append(
            {
                "name": rec.taskloop,
                "cat": "taskloop",
                "ph": "X",
                "ts": rec.start * _US,
                "dur": max(rec.end - rec.start, 0.0) * _US,
                "pid": runtime_pid,
                "tid": 0,
                "args": {
                    "iteration": rec.iteration,
                    "num_threads": rec.num_threads,
                    "node_mask": f"0x{rec.node_mask_bits:x}",
                    "steal_policy": rec.steal_policy,
                    "overhead_s": rec.overhead,
                },
            }
        )
    for task in trace.tasks:
        events.append(
            {
                "name": f"{task.taskloop}[{task.chunk_index}]",
                "cat": "task.stolen" if task.stolen else "task",
                "ph": "X",
                "ts": task.start * _US,
                "dur": max(task.end - task.start, 0.0) * _US,
                "pid": task.node,
                "tid": task.core,
                "args": {
                    "taskloop": task.taskloop,
                    "chunk": task.chunk_index,
                    "base_time_s": task.base_time,
                    "stolen": task.stolen,
                },
            }
        )
    for steal in trace.steals:
        events.append(
            {
                "name": f"steal {steal.taskloop}[{steal.chunk_index}]",
                "cat": "steal.remote" if steal.remote else "steal.local",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": steal.time * _US,
                "pid": topology.node_of_core(steal.thief_core),
                "tid": steal.thief_core,
                "args": {
                    "victim_core": steal.victim_core,
                    "remote": steal.remote,
                },
            }
        )
    return events


def write_chrome_trace(
    path: str | Path, trace: Trace, topology: MachineTopology
) -> Path:
    """Write ``trace`` as a Perfetto-loadable JSON object file.

    Refuses an empty trace (tracing was off or nothing ran) — an empty
    file would silently load as a blank timeline, which always means a
    caller forgot ``trace=True``.
    """
    if not (trace.tasks or trace.taskloops or trace.steals):
        raise ExperimentError(
            "trace is empty — was the run executed with tracing enabled?"
        )
    payload = {
        "traceEvents": chrome_trace_events(trace, topology),
        "displayTimeUnit": "ms",
        "otherData": {"machine": topology.describe()},
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write(out, json.dumps(payload))
