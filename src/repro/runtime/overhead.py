"""Scheduling-overhead cost model and its accounting.

The paper approximates scheduler overhead "by accumulating the time spent
in the core scheduling components of the runtime" (Section 5.5).  The
simulator charges explicit costs for those components and accumulates them
per run, which is what the Figure 5 benchmark reports:

* task creation — the encountering thread partitions the loop and enqueues
  tasks serially before workers start;
* dequeue — a worker taking a task from its own queue;
* steals — local (same NUMA node) and remote (cross-node; pricier because
  the deque's cache lines bounce across the interconnect);
* barrier — taskloop completion synchronisation, growing with the number
  of active threads (fan-in);
* ILAN-specific costs: configuration selection and the PTT update.

All values are seconds; defaults are microsecond-scale, calibrated so that
overheads sit in the low percent range of millisecond-scale taskloops, as
in the paper's runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["OverheadParams", "OverheadLedger"]

_US = 1e-6


@dataclass(frozen=True)
class OverheadParams:
    """Unit costs of the runtime's scheduling components (seconds)."""

    task_create: float = 0.25 * _US
    dequeue: float = 0.20 * _US
    steal_local: float = 1.2 * _US
    steal_remote: float = 2.5 * _US
    steal_fail: float = 0.15 * _US
    barrier_base: float = 2.0 * _US
    barrier_per_thread: float = 0.30 * _US
    worksharing_fork: float = 3.0 * _US
    ilan_select: float = 2.0 * _US
    ilan_ptt_update: float = 1.0 * _US

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"overhead {name} must be non-negative")

    def barrier_cost(self, num_threads: int) -> float:
        """Fan-in synchronisation cost for ``num_threads`` active threads."""
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        return self.barrier_base + self.barrier_per_thread * num_threads


@dataclass
class OverheadLedger:
    """Accumulated scheduling overhead of one run, split by component."""

    task_create: float = 0.0
    dequeue: float = 0.0
    steal_local: float = 0.0
    steal_remote: float = 0.0
    steal_fail: float = 0.0
    barrier: float = 0.0
    fork: float = 0.0
    select: float = 0.0
    ptt_update: float = 0.0
    counts: dict[str, int] = field(default_factory=dict)

    def charge(self, component: str, amount: float, count: int = 1) -> None:
        if not hasattr(self, component):
            raise ConfigurationError(f"unknown overhead component {component!r}")
        setattr(self, component, getattr(self, component) + amount)
        self.counts[component] = self.counts.get(component, 0) + count

    @property
    def total(self) -> float:
        return (
            self.task_create
            + self.dequeue
            + self.steal_local
            + self.steal_remote
            + self.steal_fail
            + self.barrier
            + self.fork
            + self.select
            + self.ptt_update
        )

    def merge(self, other: "OverheadLedger") -> None:
        """Fold another ledger (e.g. one taskloop's) into this one."""
        for name in (
            "task_create",
            "dequeue",
            "steal_local",
            "steal_remote",
            "steal_fail",
            "barrier",
            "fork",
            "select",
            "ptt_update",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value
