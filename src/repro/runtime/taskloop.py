"""Taskloop partitioning: split an iteration space into chunk tasks.

Mirrors what the LLVM runtime does when a thread encounters ``omp
taskloop``: the trip count is divided into ``num_tasks`` near-equal
contiguous blocks (the runtime's default when ``grainsize`` is not given).

Load imbalance is carried by the work's *weight profile*: a normalised
density vector over the iteration space.  A chunk's base time is the total
loop time multiplied by the profile mass its iteration range covers, so the
same profile yields consistent costs for any partitioning — including the
one-block-per-thread partitioning of the static work-sharing baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeModelError
from repro.runtime.task import Chunk, TaskloopWork

__all__ = ["partition", "chunk_bounds", "profile_mass"]


def chunk_bounds(total_iters: int, num_chunks: int) -> list[tuple[int, int]]:
    """Near-equal contiguous ``[lo, hi)`` blocks covering ``total_iters``.

    The first ``total_iters % num_chunks`` blocks get one extra iteration,
    matching LLVM's taskloop splitting.
    """
    if num_chunks < 1:
        raise RuntimeModelError(f"num_chunks must be >= 1, got {num_chunks}")
    if num_chunks > total_iters:
        raise RuntimeModelError(
            f"cannot split {total_iters} iterations into {num_chunks} chunks"
        )
    base, extra = divmod(total_iters, num_chunks)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for i in range(num_chunks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def profile_mass(weights: np.ndarray, lo_frac: float, hi_frac: float) -> float:
    """Fraction of total work inside the fractional span ``[lo_frac, hi_frac)``.

    The weight vector is interpreted as a piecewise-constant density over
    ``[0, 1)``; partial cells contribute proportionally, so masses of a
    tiling exactly sum to 1.
    """
    n = weights.size
    if not (0.0 <= lo_frac <= hi_frac <= 1.0 + 1e-12):
        raise RuntimeModelError(f"bad span [{lo_frac}, {hi_frac})")
    a = lo_frac * n
    b = min(hi_frac, 1.0) * n
    i0, i1 = int(a), min(int(np.ceil(b)), n)
    if i0 >= i1:
        return 0.0
    mass = float(weights[i0:i1].sum())
    mass -= (a - i0) * float(weights[i0])
    if i1 > 0 and b < i1:
        mass -= (i1 - b) * float(weights[i1 - 1])
    return max(mass, 0.0)


def partition(work: TaskloopWork, num_chunks: int | None = None) -> list[Chunk]:
    """Split ``work`` into chunk tasks with profile-weighted base times.

    ``num_chunks`` overrides ``work.num_tasks`` (the work-sharing scheduler
    passes the thread count to get one block per thread).
    """
    n_chunks = work.num_tasks if num_chunks is None else num_chunks
    bounds = chunk_bounds(work.total_iters, n_chunks)
    chunks: list[Chunk] = []
    total = work.total_iters
    for i, (lo, hi) in enumerate(bounds):
        lo_f, hi_f = lo / total, hi / total
        mass = profile_mass(work.weights, lo_f, hi_f)
        body = work.work_seconds * mass
        if body <= 0.0:
            # degenerate profile cell: give the chunk a floor cost so the
            # simulator never sees a zero-length task
            body = work.work_seconds * 1e-9
        chunks.append(
            Chunk(
                work=work,
                index=i,
                lo=lo,
                hi=hi,
                lo_frac=lo_f,
                hi_frac=hi_f,
                body_time=body,
            )
        )
    return chunks
