"""Run context: the simulated machine bundle one application run executes on.

Everything stateful about a run lives here — the event spine, per-core
execution state, the memory map, tracing, and named RNG substreams — so a
fresh context gives a fully independent, reproducible run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.counters.metrics import CounterBoard
from repro.errors import SimulationError
from repro.interference.model import InterferenceModel
from repro.interference.noise import NoiseParams, NoiseProcess
from repro.interference.timeline import AsymmetrySpec, AsymmetryTimeline
from repro.memory.allocator import MemoryMap
from repro.memory.bandwidth import BandwidthModel
from repro.memory.cache import CacheModel
from repro.memory.pages import DEFAULT_PAGE_BYTES
from repro.runtime.overhead import OverheadParams
from repro.sim.engine import Simulator
from repro.sim.incremental import IncrementalInterference
from repro.sim.progress import CoreStates
from repro.sim.rng import stream
from repro.sim.trace import Trace
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology
from repro.topology.presets import default_distances

__all__ = ["ENGINES", "RunContext"]

#: Recognised execution engines: the from-scratch reference recompute and
#: the change-driven incremental recompute (byte-identical by contract;
#: see repro.sim.incremental and tests/sim/test_engine_equivalence.py).
ENGINES = ("reference", "incremental")


@dataclass
class RunContext:
    """All per-run state plus the static machine description."""

    topology: MachineTopology
    distances: DistanceMatrix
    bandwidth: BandwidthModel
    cache: CacheModel
    interference: InterferenceModel
    mem: MemoryMap
    sim: Simulator
    states: CoreStates
    trace: Trace
    counters: CounterBoard
    params: OverheadParams
    noise: NoiseProcess
    seed: int
    asym: AsymmetryTimeline | None = None
    engine: str = "reference"
    incremental: IncrementalInterference | None = None
    _rngs: dict[tuple[str, ...], np.random.Generator] = field(default_factory=dict)

    @staticmethod
    def create(
        topology: MachineTopology,
        *,
        seed: int = 0,
        distances: DistanceMatrix | None = None,
        bandwidth: BandwidthModel | None = None,
        params: OverheadParams | None = None,
        noise_params: NoiseParams | None = None,
        asym_params: AsymmetrySpec | None = None,
        asym_seed: int | None = None,
        trace: bool = False,
        counters: bool = True,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        engine: str = "reference",
    ) -> "RunContext":
        """Build a fresh run context for ``topology``.

        Distances, bandwidth and overhead parameters default to the
        Zen 4-calibrated models; noise and the asymmetry timeline default
        to disabled (``asym_seed`` lets experiments vary the timeline
        independently of the run seed; it defaults to ``seed``).
        ``engine`` selects how per-step slowdowns are computed:
        ``"reference"`` recomputes from scratch, ``"incremental"``
        refreshes only cores whose node contention state changed —
        byte-identical outputs by contract.
        """
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        distances = distances or default_distances(topology)
        bandwidth = bandwidth or BandwidthModel.from_topology(topology)
        cache = CacheModel.from_topology(topology)
        interference = InterferenceModel(topology, distances, bandwidth)
        sim = Simulator()
        base_speed = np.array([c.base_speed for c in topology.cores])
        states = CoreStates(topology.num_cores, topology.num_nodes, base_speed)
        ctx = RunContext(
            topology=topology,
            distances=distances,
            bandwidth=bandwidth,
            cache=cache,
            interference=interference,
            mem=MemoryMap(topology.num_nodes, page_bytes=page_bytes),
            sim=sim,
            states=states,
            trace=Trace(enabled=trace),
            counters=CounterBoard(enabled=counters),
            params=params or OverheadParams(),
            noise=NoiseProcess(
                sim, states, noise_params or NoiseParams(), stream(seed, "noise")
            ),
            seed=seed,
            asym=AsymmetryTimeline(
                sim,
                states,
                asym_params or AsymmetrySpec(),
                stream(seed if asym_seed is None else asym_seed, "asym"),
                interference.node_of_core,
            ),
            engine=engine,
            incremental=(
                IncrementalInterference(interference, states)
                if engine == "incremental"
                else None
            ),
        )
        ctx.noise.start()
        assert ctx.asym is not None
        ctx.asym.start()
        return ctx

    def rng(self, *names: str) -> np.random.Generator:
        """Memoised named RNG substream for this run's seed."""
        key = tuple(names)
        gen = self._rngs.get(key)
        if gen is None:
            gen = stream(self.seed, *names)
            self._rngs[key] = gen
        return gen

    @property
    def max_threads(self) -> int:
        return self.topology.num_cores

    def advance_serial(self, duration: float) -> None:
        """Advance the clock through a serial (no-task) phase.

        Steps through any pending timed events (noise transitions) so their
        state changes land at the right simulated times.
        """
        end = self.sim.now + duration
        while True:
            nxt = self.sim.events.next_time()
            if nxt >= end:
                break
            self.sim.clock.advance_to(nxt)
            self.sim.run_due_events()
        self.sim.clock.advance_to(end)
        self.sim.run_due_events()
