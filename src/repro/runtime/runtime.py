"""The runtime facade: run a whole application under one scheduler.

:class:`OpenMPRuntime` is the library's main entry point.  It owns a fresh
:class:`RunContext` (simulated machine state) per run, drives the
application's timestep loop, hands every taskloop encounter to the
scheduler for planning and to the executor for simulation, and feeds
measurements back to the scheduler.

Applications follow a small protocol (see
:class:`repro.workloads.base.Application`):

* ``name`` — identifier;
* ``timesteps`` — number of outer iterations;
* ``setup(ctx)`` — allocate data regions into ``ctx.mem``;
* ``encounters(t, ctx)`` — yield :class:`TaskloopWork` and
  :class:`SerialPhase` items for timestep ``t`` in program order.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.errors import RuntimeModelError
from repro.interference.noise import NoiseParams
from repro.interference.timeline import AsymmetrySpec
from repro.memory.bandwidth import BandwidthModel
from repro.memory.pages import DEFAULT_PAGE_BYTES
from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.overhead import OverheadParams
from repro.runtime.results import AppRunResult
from repro.runtime.schedulers.base import Scheduler, create_scheduler
from repro.runtime.task import SerialPhase, TaskloopWork
from repro.topology.distances import DistanceMatrix
from repro.topology.machine import MachineTopology

__all__ = ["OpenMPRuntime", "ApplicationProtocol"]


class ApplicationProtocol(Protocol):
    """Structural type every runnable application satisfies."""

    name: str
    timesteps: int

    def setup(self, ctx: RunContext) -> None: ...

    def encounters(self, t: int, ctx: RunContext) -> Iterable[TaskloopWork | SerialPhase]: ...


class OpenMPRuntime:
    """Simulated OpenMP runtime bound to a machine and a scheduler."""

    def __init__(
        self,
        topology: MachineTopology,
        scheduler: Scheduler | str = "baseline",
        *,
        seed: int = 0,
        distances: DistanceMatrix | None = None,
        bandwidth: BandwidthModel | None = None,
        overhead: OverheadParams | None = None,
        noise: NoiseParams | None = None,
        asym: AsymmetrySpec | None = None,
        asym_seed: int | None = None,
        trace: bool = False,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        engine: str = "reference",
    ):
        self.topology = topology
        self.scheduler = (
            scheduler if isinstance(scheduler, Scheduler) else create_scheduler(scheduler)
        )
        self.seed = seed
        self._distances = distances
        self._bandwidth = bandwidth
        self._overhead = overhead
        self._noise = noise
        self._asym = asym
        self._asym_seed = asym_seed
        self._trace = trace
        self._page_bytes = page_bytes
        self.engine = engine
        self.last_ctx: RunContext | None = None

    # ------------------------------------------------------------------
    def create_context(self, seed: int | None = None) -> RunContext:
        """A fresh simulated-machine state for one run."""
        return RunContext.create(
            self.topology,
            seed=self.seed if seed is None else seed,
            distances=self._distances,
            bandwidth=self._bandwidth,
            params=self._overhead,
            noise_params=self._noise,
            asym_params=self._asym,
            asym_seed=self._asym_seed,
            trace=self._trace,
            page_bytes=self._page_bytes,
            engine=self.engine,
        )

    def run_application(
        self,
        app: ApplicationProtocol,
        *,
        seed: int | None = None,
        timesteps: int | None = None,
    ) -> AppRunResult:
        """Run ``app`` start to finish; returns per-run measurements.

        The scheduler's learned state is reset first, so repeated calls are
        independent runs (matching the paper's 30-repetition methodology).
        """
        ctx = self.create_context(seed)
        self.last_ctx = ctx
        self.scheduler.reset()
        app.setup(ctx)
        executor = TaskloopExecutor(ctx)
        result = AppRunResult(
            app_name=app.name,
            scheduler=self.scheduler.name,
            seed=ctx.seed,
            total_time=0.0,
        )
        steps = app.timesteps if timesteps is None else timesteps
        if steps < 1:
            raise RuntimeModelError(f"timesteps must be >= 1, got {steps}")
        t_begin = ctx.sim.now
        for t in range(steps):
            for item in app.encounters(t, ctx):
                if isinstance(item, SerialPhase):
                    ctx.advance_serial(item.seconds)
                    continue
                if not isinstance(item, TaskloopWork):
                    raise RuntimeModelError(
                        f"application yielded unexpected item {type(item).__name__}"
                    )
                plan = self.scheduler.plan(item, ctx)
                loop_result = executor.run(item, plan)
                self.scheduler.record(item, plan, loop_result)
                result.taskloops.append(loop_result)
        result.total_time = ctx.sim.now - t_begin
        return result
