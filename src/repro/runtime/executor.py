"""The taskloop executor: runs one plan on the simulated machine.

This is the heart of the simulation.  The executor owns the
dispatch-advance loop:

1. every idle participating core tries to acquire work (own queue, then
   the plan's steal policy);
2. per-core slowdowns are recomputed from the interference model;
3. the machine advances by the smallest of (earliest task completion,
   next timed event);
4. completions commit their memory side effects (first-touch, last-touch)
   and free their cores; due events (noise transitions) fire; repeat.

When the last chunk retires, the barrier cost for the active thread count
is charged and the measured taskloop time — what ILAN's PTT stores — is
the wall time from encounter to barrier exit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.memory.access import chunk_access
from repro.runtime.context import RunContext
from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import TaskloopResult
from repro.runtime.schedulers.base import TaskloopPlan
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.threads import Worker, WorkerPool
from repro.sim.progress import EPS
from repro.sim.trace import StealRecord, TaskloopRecord, TaskRecord

__all__ = ["TaskloopExecutor"]


@dataclass
class _Running:
    """Executor-side payload attached to a running chunk."""

    chunk: Chunk
    access: "object"
    worker: Worker
    start: float
    source: str
    victim_core: int


class TaskloopExecutor:
    """Executes taskloop plans against a :class:`RunContext`."""

    def __init__(self, ctx: RunContext):
        self.ctx = ctx

    # ------------------------------------------------------------------
    def run(self, work: TaskloopWork, plan: TaskloopPlan) -> TaskloopResult:
        """Run ``plan`` to completion; returns the measured result."""
        ctx = self.ctx
        plan.validate(work)
        if ctx.states.any_active():
            raise SimulationError("taskloops execute one at a time; machine is busy")

        ledger = OverheadLedger()
        t_start = ctx.sim.now
        busy_before = ctx.states.busy_time.copy()
        work_before = ctx.states.work_done.copy()
        ctx.counters.begin(work.uid)

        # serial prologue on the encountering thread: scheduler decision
        # cost plus task creation (work sharing pays a fork instead)
        total_chunks = plan.total_chunks
        if plan.extra_overhead > 0:
            ledger.charge("select", plan.extra_overhead)
        if plan.static:
            ledger.charge("fork", ctx.params.worksharing_fork)
            prologue = plan.extra_overhead + ctx.params.worksharing_fork
        else:
            create = ctx.params.task_create * total_chunks
            ledger.charge("task_create", create, count=total_chunks)
            prologue = plan.extra_overhead + create
        ctx.advance_serial(prologue)

        pool = WorkerPool(ctx.topology, plan.worker_cores, owner_lifo=plan.owner_lifo)
        for core, chunks in plan.initial_queues.items():
            pool.worker_for_core(core).queue.extend(chunks)

        rng = ctx.rng("runtime", "steal")
        if ctx.engine == "incremental":
            executed, steals_local, steals_remote = self._loop_incremental(
                work, plan, pool, rng, ledger
            )
        else:
            executed, steals_local, steals_remote = self._loop_reference(
                work, plan, pool, rng, ledger
            )

        # taskloop barrier: all active threads synchronise
        barrier = ctx.params.barrier_cost(plan.num_threads)
        ledger.charge("barrier", barrier)
        ctx.advance_serial(barrier)

        elapsed = ctx.sim.now - t_start
        counters = ctx.counters.finish(elapsed)
        node_perf, node_busy = self._node_performance(busy_before, work_before)
        result = TaskloopResult(
            uid=work.uid,
            name=work.name,
            elapsed=elapsed,
            num_threads=plan.num_threads,
            node_mask_bits=plan.node_mask_bits,
            steal_policy=plan.steal_mode,
            overhead=ledger,
            node_perf=node_perf,
            node_busy=node_busy,
            tasks_executed=executed,
            steals_local=steals_local,
            steals_remote=steals_remote,
            counters=counters,
        )
        ctx.trace.add_taskloop(
            TaskloopRecord(
                taskloop=work.uid,
                iteration=-1,
                num_threads=plan.num_threads,
                node_mask_bits=plan.node_mask_bits,
                steal_policy=plan.steal_mode,
                start=t_start,
                end=ctx.sim.now,
                overhead=ledger.total,
            )
        )
        return result

    # ------------------------------------------------------------------
    def _loop_reference(
        self,
        work: TaskloopWork,
        plan: TaskloopPlan,
        pool: WorkerPool,
        rng: np.random.Generator,
        ledger: OverheadLedger,
    ) -> tuple[int, int, int]:
        """The from-scratch dispatch-advance loop: the differential oracle.

        Every step recomputes all slowdowns and scans every worker during
        dispatch.  ``--engine=incremental`` (:meth:`_loop_incremental`)
        must reproduce this loop's output bit for bit.
        """
        ctx = self.ctx
        executed = 0
        steals_local = 0
        steals_remote = 0
        total_chunks = plan.total_chunks

        dispatched = self._dispatch_idle(work, plan, pool, rng, ledger)
        steals_local += dispatched[0]
        steals_remote += dispatched[1]

        states = ctx.states
        model = ctx.interference
        sample_counters = ctx.counters.enabled
        while executed < total_chunks:
            if not states.any_active() and not (
                # offline cores with timed events pending: availability (or
                # stealability) can still change, so wait instead of dying
                states.any_offline and not ctx.sim.events.is_empty()
            ):
                ctx.counters.abort()
                raise SimulationError(
                    f"deadlock: {total_chunks - executed} chunks of {work.uid!r} "
                    "remain but no core can acquire work"
                )
            if sample_counters:
                slowdown, saturation = model.slowdowns_and_saturation(states)
            else:
                slowdown = model.slowdowns(states)
            times = states.completion_times(slowdown)
            dt_complete = float(np.min(times))
            dt_event = ctx.sim.events.next_time() - ctx.sim.now
            dt = min(dt_complete, max(dt_event, 0.0))
            if not math.isfinite(dt):
                ctx.counters.abort()
                raise SimulationError("no finite next step; simulation is stuck")
            if sample_counters:
                ctx.counters.step(
                    dt, saturation, int(states.active.sum()), plan.num_threads
                )
            online_epoch = states.online_epoch
            completed = states.advance(dt, slowdown)
            ctx.sim.clock.advance(dt)
            ctx.sim.run_due_events()
            for core in completed:
                running: _Running = states.finish(core)
                running.access.commit()
                executed += 1
                self._trace_task(running, core)
            if completed or states.online_epoch != online_epoch:
                # cores freed by completions — or made eligible (returned
                # online) / in need of replacement (went offline with queued
                # work now only reachable by others) — get a dispatch pass
                dispatched = self._dispatch_idle(work, plan, pool, rng, ledger)
                steals_local += dispatched[0]
                steals_remote += dispatched[1]
        return executed, steals_local, steals_remote

    def _loop_incremental(
        self,
        work: TaskloopWork,
        plan: TaskloopPlan,
        pool: WorkerPool,
        rng: np.random.Generator,
        ledger: OverheadLedger,
    ) -> tuple[int, int, int]:
        """The change-driven loop behind ``--engine=incremental``.

        Same protocol as :meth:`_loop_reference`, with three hot-path
        substitutions that are bit-identical by construction:

        * slowdowns come from the :class:`~repro.sim.incremental.
          IncrementalInterference` cache (only dirty rows recomputed,
          with the reference's own expressions);
        * dispatch walks a maintained idle-core list in ascending core
          order — the same ``acquire`` call sequence the reference's
          full-pool scan makes, without touching active workers;
        * completion times and the advance run maskless over all cores
          into preallocated buffers, with idle cores parked at
          ``rem = inf`` so every idle lane is an exact bitwise no-op of
          the reference's masked computation.
        """
        ctx = self.ctx
        states = ctx.states
        inc = ctx.incremental
        if inc is None:
            raise SimulationError("incremental engine requested but not initialised")
        sim = ctx.sim
        events = sim.events
        clock = sim.clock
        counters = ctx.counters
        sample_counters = counters.enabled
        total_chunks = plan.total_chunks
        num_threads = plan.num_threads
        executed = 0
        steals_local = 0
        steals_remote = 0

        # every participating core is idle at entry (run() checked), so the
        # idle list starts as the pool's ascending core order
        idle = [w.core_id for w in pool]
        num_workers = len(idle)
        sl, sr, idle = self._dispatch_idle_incremental(
            work, plan, pool, rng, ledger, idle
        )
        steals_local += sl
        steals_remote += sr
        active_count = num_workers - len(idle)

        num_cores = states.num_cores
        rem = states.rem
        ov = states.ov
        active = states.active
        busy_time = states.busy_time
        work_done = states.work_done
        # preallocated step buffers (per taskloop, not per step)
        times = np.empty(num_cores)
        ov_wall = np.empty(num_cores)
        burn = np.empty(num_cores)
        tmp = np.empty(num_cores)
        body_wall = np.empty(num_cores)
        prog = np.empty(num_cores)
        before = np.empty(num_cores)
        delta = np.empty(num_cores)
        done = np.empty(num_cores, dtype=bool)
        ov_small = np.empty(num_cores, dtype=bool)
        inactive = np.empty(num_cores, dtype=bool)

        # park idle cores at rem = inf: (ov + inf*s)/speed = inf reproduces
        # the reference's inf fill without building a mask every step
        rem[~active] = np.inf
        try:
            while executed < total_chunks:
                if active_count == 0 and not (
                    # same wait condition as the reference loop: offline
                    # cores plus pending events mean the machine can recover
                    states.any_offline and not events.is_empty()
                ):
                    counters.abort()
                    raise SimulationError(
                        f"deadlock: {total_chunks - executed} chunks of "
                        f"{work.uid!r} remain but no core can acquire work"
                    )
                slowdown = inc.slowdowns()
                if sample_counters:
                    mean_sat, max_sat = inc.saturation_scalars()
                # noise/asymmetry rebind these arrays; re-read every step
                speed = states.speed
                speed_div = states.speed_div
                any_offline = states.any_offline
                offline = states.offline
                # completion times: (ov + rem * s) / speed, maskless;
                # offline lanes (speed_div = 1) are pinned to inf like the
                # reference's completion_times
                np.multiply(rem, slowdown, out=times)
                np.add(ov, times, out=times)
                np.divide(times, speed_div, out=times)
                if any_offline:
                    np.copyto(times, np.inf, where=offline)
                dt_complete = float(times.min())
                dt_event = events.next_time() - clock.now
                dt = min(dt_complete, max(dt_event, 0.0))
                if not math.isfinite(dt):
                    counters.abort()
                    raise SimulationError("no finite next step; simulation is stuck")
                if sample_counters:
                    counters.step_scalars(
                        dt, mean_sat, max_sat, active_count, num_threads
                    )
                if dt != 0.0:
                    # fused CoreStates.advance: expression-identical on
                    # active lanes, exact no-op on idle lanes (ov = 0,
                    # rem = inf, slowdown = 1) and on offline lanes (burn
                    # covers the step at speed 0: nothing progresses)
                    np.divide(ov, speed_div, out=ov_wall)
                    if any_offline:
                        np.copyto(ov_wall, np.inf, where=offline)
                    np.minimum(ov_wall, dt, out=burn)
                    np.multiply(burn, speed, out=tmp)
                    np.subtract(ov, tmp, out=ov)
                    np.subtract(dt, burn, out=body_wall)
                    np.multiply(body_wall, speed, out=prog)
                    np.divide(prog, slowdown, out=prog)
                    before[:] = rem
                    np.subtract(before, prog, out=tmp)
                    np.maximum(tmp, 0.0, out=rem)
                    np.multiply(active, dt, out=tmp)
                    busy_time += tmp
                    np.logical_not(active, out=inactive)
                    # masked: idle lanes would be inf - inf; zeroed instead
                    np.subtract(before, rem, out=delta, where=active)
                    np.copyto(delta, 0.0, where=inactive)
                    work_done += delta
                    np.less_equal(rem, EPS, out=done)
                    np.less_equal(ov, EPS, out=ov_small)
                    done &= ov_small
                    completed = (
                        [int(c) for c in np.nonzero(done)[0]] if done.any() else []
                    )
                else:
                    completed = []
                online_epoch = states.online_epoch
                clock.advance(dt)
                sim.run_due_events()
                for core in completed:
                    running: _Running = states.finish(core)
                    rem[core] = np.inf  # finish reset it to 0.0; re-park
                    running.access.commit()
                    executed += 1
                    self._trace_task(running, core)
                if completed or states.online_epoch != online_epoch:
                    if completed:
                        idle.extend(completed)
                        idle.sort()
                    sl, sr, idle = self._dispatch_idle_incremental(
                        work, plan, pool, rng, ledger, idle
                    )
                    steals_local += sl
                    steals_remote += sr
                    active_count = num_workers - len(idle)
        finally:
            # leave idle cores exactly as the reference does (rem = 0.0)
            rem[~states.active] = 0.0
        return executed, steals_local, steals_remote

    # ------------------------------------------------------------------
    def _dispatch_idle(
        self,
        work: TaskloopWork,
        plan: TaskloopPlan,
        pool: WorkerPool,
        rng: np.random.Generator,
        ledger: OverheadLedger,
    ) -> tuple[int, int]:
        """Give every idle participating core a task if one is available.

        Loops until a full pass makes no progress, because one worker's
        acquisition can expose work to another (e.g. a remote steal only
        becomes legal once the thief's node is fully drained).
        """
        ctx = self.ctx
        steals_local = 0
        steals_remote = 0
        active = ctx.states.active
        # stable within a dispatch pass: no simulated time elapses here, so
        # no online/offline event can fire mid-scan
        online = ctx.states.online
        progress = True
        while progress and pool.any_work():
            progress = False
            for worker in pool:
                if active[worker.core_id] or not online[worker.core_id]:
                    continue
                acq = plan.policy.acquire(worker, pool, rng, ctx.params, ledger)
                if acq is None:
                    continue
                progress = True
                if acq.source == "steal_local":
                    steals_local += 1
                elif acq.source == "steal_remote":
                    steals_remote += 1
                self._start_chunk(work, acq.chunk, worker, acq.overhead, acq.source, acq.victim_core)
        return steals_local, steals_remote

    def _dispatch_idle_incremental(
        self,
        work: TaskloopWork,
        plan: TaskloopPlan,
        pool: WorkerPool,
        rng: np.random.Generator,
        ledger: OverheadLedger,
        idle: list[int],
    ) -> tuple[int, int, list[int]]:
        """:meth:`_dispatch_idle` over a maintained idle-core list.

        The reference scans every pool worker per pass and skips the
        active ones; since an ``acquire`` can only activate the acquiring
        worker (cores never turn idle mid-dispatch), iterating the sorted
        idle list makes the *identical* sequence of ``acquire`` calls —
        same workers, same order, same RNG draws, same ledger charges —
        without touching the active majority.  Returns the updated list.
        """
        ctx = self.ctx
        steals_local = 0
        steals_remote = 0
        policy = plan.policy
        params = ctx.params
        by_core = pool.by_core
        online = ctx.states.online
        progress = True
        while progress and idle and pool.any_work():
            progress = False
            still_idle: list[int] = []
            for core in idle:
                if not online[core]:
                    # offline cores stay idle (and in the list) but make no
                    # acquire call — mirroring the reference's skip
                    still_idle.append(core)
                    continue
                worker = by_core[core]
                acq = policy.acquire(worker, pool, rng, params, ledger)
                if acq is None:
                    still_idle.append(core)
                    continue
                progress = True
                if acq.source == "steal_local":
                    steals_local += 1
                elif acq.source == "steal_remote":
                    steals_remote += 1
                self._start_chunk(
                    work, acq.chunk, worker, acq.overhead, acq.source, acq.victim_core
                )
            idle = still_idle
        return steals_local, steals_remote, idle

    def _start_chunk(
        self,
        work: TaskloopWork,
        chunk: Chunk,
        worker: Worker,
        overhead: float,
        source: str,
        victim_core: int,
    ) -> None:
        """Resolve the chunk's memory view for this core and start it."""
        ctx = self.ctx
        node = worker.node_id
        access = chunk_access(work.region, work.pattern, chunk.lo_frac, chunk.hi_frac, node)
        reuse_eff = ctx.cache.effective_reuse(
            node, work.reuse, access.reuse_fraction, work.effective_working_set
        )
        mem0 = chunk.body_time * work.mem_frac
        mem_eff = mem0 * (1.0 - reuse_eff)
        body = chunk.body_time * (1.0 - work.mem_frac) + mem_eff
        mem_frac_eff = mem_eff / body if body > 0 else 0.0
        if ctx.counters.enabled:
            # modelled DRAM traffic: solo streaming rate times memory time
            bytes_total = mem_eff * ctx.bandwidth.core_bandwidth
            remote_w = 1.0 - float(access.node_weights[node])
            ctx.counters.add_chunk_traffic(bytes_total, bytes_total * remote_w)
        ctx.states.start(
            worker.core_id,
            body=body,
            overhead=overhead,
            mem_frac=mem_frac_eff,
            gamma=work.gamma,
            weights=access.node_weights,
            payload=_Running(
                chunk=chunk,
                access=access,
                worker=worker,
                start=ctx.sim.now,
                source=source,
                victim_core=victim_core,
            ),
        )
        if source == "steal_remote" and ctx.trace.enabled:
            ctx.trace.add_steal(
                StealRecord(
                    taskloop=work.uid,
                    chunk_index=chunk.index,
                    thief_core=worker.core_id,
                    victim_core=victim_core,
                    remote=True,
                    time=ctx.sim.now,
                )
            )

    def _trace_task(self, running: _Running, core: int) -> None:
        ctx = self.ctx
        if not ctx.trace.enabled:
            return
        ctx.trace.add_task(
            TaskRecord(
                taskloop=running.chunk.work.uid,
                chunk_index=running.chunk.index,
                core=core,
                node=running.worker.node_id,
                start=running.start,
                end=ctx.sim.now,
                base_time=running.chunk.body_time,
                stolen=running.chunk.stolen,
            )
        )

    def _node_performance(
        self, busy_before: np.ndarray, work_before: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-node throughput (base work / busy second) for this execution."""
        ctx = self.ctx
        d_busy = ctx.states.busy_time - busy_before
        d_work = ctx.states.work_done - work_before
        nodes = ctx.interference.node_of_core
        busy = np.zeros(ctx.topology.num_nodes)
        done = np.zeros(ctx.topology.num_nodes)
        np.add.at(busy, nodes, d_busy)
        np.add.at(done, nodes, d_work)
        perf = np.full(ctx.topology.num_nodes, np.nan)
        used = busy > 0
        perf[used] = done[used] / busy[used]
        return perf, busy
