"""The taskloop executor: runs one plan on the simulated machine.

This is the heart of the simulation.  The executor owns the
dispatch-advance loop:

1. every idle participating core tries to acquire work (own queue, then
   the plan's steal policy);
2. per-core slowdowns are recomputed from the interference model;
3. the machine advances by the smallest of (earliest task completion,
   next timed event);
4. completions commit their memory side effects (first-touch, last-touch)
   and free their cores; due events (noise transitions) fire; repeat.

When the last chunk retires, the barrier cost for the active thread count
is charged and the measured taskloop time — what ILAN's PTT stores — is
the wall time from encounter to barrier exit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.memory.access import chunk_access
from repro.runtime.context import RunContext
from repro.runtime.overhead import OverheadLedger
from repro.runtime.results import TaskloopResult
from repro.runtime.schedulers.base import TaskloopPlan
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.threads import Worker, WorkerPool
from repro.sim.trace import StealRecord, TaskloopRecord, TaskRecord

__all__ = ["TaskloopExecutor"]


@dataclass
class _Running:
    """Executor-side payload attached to a running chunk."""

    chunk: Chunk
    access: "object"
    worker: Worker
    start: float
    source: str
    victim_core: int


class TaskloopExecutor:
    """Executes taskloop plans against a :class:`RunContext`."""

    def __init__(self, ctx: RunContext):
        self.ctx = ctx

    # ------------------------------------------------------------------
    def run(self, work: TaskloopWork, plan: TaskloopPlan) -> TaskloopResult:
        """Run ``plan`` to completion; returns the measured result."""
        ctx = self.ctx
        plan.validate(work)
        if ctx.states.any_active():
            raise SimulationError("taskloops execute one at a time; machine is busy")

        ledger = OverheadLedger()
        t_start = ctx.sim.now
        busy_before = ctx.states.busy_time.copy()
        work_before = ctx.states.work_done.copy()
        ctx.counters.begin(work.uid)

        # serial prologue on the encountering thread: scheduler decision
        # cost plus task creation (work sharing pays a fork instead)
        total_chunks = plan.total_chunks
        if plan.extra_overhead > 0:
            ledger.charge("select", plan.extra_overhead)
        if plan.static:
            ledger.charge("fork", ctx.params.worksharing_fork)
            prologue = plan.extra_overhead + ctx.params.worksharing_fork
        else:
            create = ctx.params.task_create * total_chunks
            ledger.charge("task_create", create, count=total_chunks)
            prologue = plan.extra_overhead + create
        ctx.advance_serial(prologue)

        pool = WorkerPool(ctx.topology, plan.worker_cores, owner_lifo=plan.owner_lifo)
        for core, chunks in plan.initial_queues.items():
            pool.worker_for_core(core).queue.extend(chunks)

        rng = ctx.rng("runtime", "steal")
        executed = 0
        steals_local = 0
        steals_remote = 0

        dispatched = self._dispatch_idle(work, plan, pool, rng, ledger)
        steals_local += dispatched[0]
        steals_remote += dispatched[1]

        states = ctx.states
        model = ctx.interference
        sample_counters = ctx.counters.enabled
        while executed < total_chunks:
            if not states.any_active():
                ctx.counters.abort()
                raise SimulationError(
                    f"deadlock: {total_chunks - executed} chunks of {work.uid!r} "
                    "remain but no core can acquire work"
                )
            if sample_counters:
                slowdown, saturation = model.slowdowns_and_saturation(states)
            else:
                slowdown = model.slowdowns(states)
            times = states.completion_times(slowdown)
            dt_complete = float(np.min(times))
            dt_event = ctx.sim.events.next_time() - ctx.sim.now
            dt = min(dt_complete, max(dt_event, 0.0))
            if not math.isfinite(dt):
                ctx.counters.abort()
                raise SimulationError("no finite next step; simulation is stuck")
            if sample_counters:
                ctx.counters.step(
                    dt, saturation, int(states.active.sum()), plan.num_threads
                )
            completed = states.advance(dt, slowdown)
            ctx.sim.clock.advance(dt)
            ctx.sim.run_due_events()
            for core in completed:
                running: _Running = states.finish(core)
                running.access.commit()
                executed += 1
                self._trace_task(running, core)
            if completed:
                dispatched = self._dispatch_idle(work, plan, pool, rng, ledger)
                steals_local += dispatched[0]
                steals_remote += dispatched[1]

        # taskloop barrier: all active threads synchronise
        barrier = ctx.params.barrier_cost(plan.num_threads)
        ledger.charge("barrier", barrier)
        ctx.advance_serial(barrier)

        elapsed = ctx.sim.now - t_start
        counters = ctx.counters.finish(elapsed)
        node_perf, node_busy = self._node_performance(busy_before, work_before)
        result = TaskloopResult(
            uid=work.uid,
            name=work.name,
            elapsed=elapsed,
            num_threads=plan.num_threads,
            node_mask_bits=plan.node_mask_bits,
            steal_policy=plan.steal_mode,
            overhead=ledger,
            node_perf=node_perf,
            node_busy=node_busy,
            tasks_executed=executed,
            steals_local=steals_local,
            steals_remote=steals_remote,
            counters=counters,
        )
        ctx.trace.add_taskloop(
            TaskloopRecord(
                taskloop=work.uid,
                iteration=-1,
                num_threads=plan.num_threads,
                node_mask_bits=plan.node_mask_bits,
                steal_policy=plan.steal_mode,
                start=t_start,
                end=ctx.sim.now,
                overhead=ledger.total,
            )
        )
        return result

    # ------------------------------------------------------------------
    def _dispatch_idle(
        self,
        work: TaskloopWork,
        plan: TaskloopPlan,
        pool: WorkerPool,
        rng: np.random.Generator,
        ledger: OverheadLedger,
    ) -> tuple[int, int]:
        """Give every idle participating core a task if one is available.

        Loops until a full pass makes no progress, because one worker's
        acquisition can expose work to another (e.g. a remote steal only
        becomes legal once the thief's node is fully drained).
        """
        ctx = self.ctx
        steals_local = 0
        steals_remote = 0
        active = ctx.states.active
        progress = True
        while progress and pool.any_work():
            progress = False
            for worker in pool:
                if active[worker.core_id]:
                    continue
                acq = plan.policy.acquire(worker, pool, rng, ctx.params, ledger)
                if acq is None:
                    continue
                progress = True
                if acq.source == "steal_local":
                    steals_local += 1
                elif acq.source == "steal_remote":
                    steals_remote += 1
                self._start_chunk(work, acq.chunk, worker, acq.overhead, acq.source, acq.victim_core)
        return steals_local, steals_remote

    def _start_chunk(
        self,
        work: TaskloopWork,
        chunk: Chunk,
        worker: Worker,
        overhead: float,
        source: str,
        victim_core: int,
    ) -> None:
        """Resolve the chunk's memory view for this core and start it."""
        ctx = self.ctx
        node = worker.node_id
        access = chunk_access(work.region, work.pattern, chunk.lo_frac, chunk.hi_frac, node)
        reuse_eff = ctx.cache.effective_reuse(
            node, work.reuse, access.reuse_fraction, work.effective_working_set
        )
        mem0 = chunk.body_time * work.mem_frac
        mem_eff = mem0 * (1.0 - reuse_eff)
        body = chunk.body_time * (1.0 - work.mem_frac) + mem_eff
        mem_frac_eff = mem_eff / body if body > 0 else 0.0
        if ctx.counters.enabled:
            # modelled DRAM traffic: solo streaming rate times memory time
            bytes_total = mem_eff * ctx.bandwidth.core_bandwidth
            remote_w = 1.0 - float(access.node_weights[node])
            ctx.counters.add_chunk_traffic(bytes_total, bytes_total * remote_w)
        ctx.states.start(
            worker.core_id,
            body=body,
            overhead=overhead,
            mem_frac=mem_frac_eff,
            gamma=work.gamma,
            weights=access.node_weights,
            payload=_Running(
                chunk=chunk,
                access=access,
                worker=worker,
                start=ctx.sim.now,
                source=source,
                victim_core=victim_core,
            ),
        )
        if source == "steal_remote" and ctx.trace.enabled:
            ctx.trace.add_steal(
                StealRecord(
                    taskloop=work.uid,
                    chunk_index=chunk.index,
                    thief_core=worker.core_id,
                    victim_core=victim_core,
                    remote=True,
                    time=ctx.sim.now,
                )
            )

    def _trace_task(self, running: _Running, core: int) -> None:
        ctx = self.ctx
        if not ctx.trace.enabled:
            return
        ctx.trace.add_task(
            TaskRecord(
                taskloop=running.chunk.work.uid,
                chunk_index=running.chunk.index,
                core=core,
                node=running.worker.node_id,
                start=running.start,
                end=ctx.sim.now,
                base_time=running.chunk.body_time,
                stolen=running.chunk.stolen,
            )
        )

    def _node_performance(
        self, busy_before: np.ndarray, work_before: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-node throughput (base work / busy second) for this execution."""
        ctx = self.ctx
        d_busy = ctx.states.busy_time - busy_before
        d_work = ctx.states.work_done - work_before
        nodes = ctx.interference.node_of_core
        busy = np.zeros(ctx.topology.num_nodes)
        done = np.zeros(ctx.topology.num_nodes)
        np.add.at(busy, nodes, d_busy)
        np.add.at(done, nodes, d_work)
        perf = np.full(ctx.topology.num_nodes, np.nan)
        used = busy > 0
        perf[used] = done[used] / busy[used]
        return perf, busy
