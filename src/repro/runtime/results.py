"""Result records: per-taskloop measurements and whole-run aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.counters.metrics import TaskloopCounters
from repro.runtime.overhead import OverheadLedger

__all__ = ["TaskloopResult", "AppRunResult"]


@dataclass
class TaskloopResult:
    """Measurements of one taskloop execution.

    ``node_perf`` is the per-NUMA-node throughput observed during the
    execution (completed base work per busy second; ``nan`` for nodes that
    executed nothing).  This is the performance tracing ILAN's PTT consumes
    for node-mask selection.
    """

    uid: str
    name: str
    elapsed: float
    num_threads: int
    node_mask_bits: int
    steal_policy: str
    overhead: OverheadLedger
    node_perf: np.ndarray
    node_busy: np.ndarray
    tasks_executed: int
    steals_local: int
    steals_remote: int
    counters: TaskloopCounters | None = None

    @property
    def overhead_total(self) -> float:
        return self.overhead.total


@dataclass
class AppRunResult:
    """Aggregates of one application run under one scheduler."""

    app_name: str
    scheduler: str
    seed: int
    total_time: float
    taskloops: list[TaskloopResult] = field(default_factory=list)

    @property
    def total_overhead(self) -> float:
        return sum(r.overhead_total for r in self.taskloops)

    @property
    def weighted_avg_threads(self) -> float:
        """Execution-time-weighted average active thread count (Figure 3)."""
        total = sum(r.elapsed for r in self.taskloops)
        if total <= 0:
            return 0.0
        return sum(r.num_threads * r.elapsed for r in self.taskloops) / total

    @property
    def total_steals_remote(self) -> int:
        return sum(r.steals_remote for r in self.taskloops)

    @property
    def total_steals_local(self) -> int:
        return sum(r.steals_local for r in self.taskloops)

    def loop_times(self, uid: str) -> list[float]:
        """Elapsed times of every execution of taskloop ``uid``, in order."""
        return [r.elapsed for r in self.taskloops if r.uid == uid]

    def overhead_by_component(self) -> dict[str, float]:
        merged = OverheadLedger()
        for r in self.taskloops:
            merged.merge(r.overhead)
        return {
            "task_create": merged.task_create,
            "dequeue": merged.dequeue,
            "steal_local": merged.steal_local,
            "steal_remote": merged.steal_remote,
            "steal_fail": merged.steal_fail,
            "barrier": merged.barrier,
            "fork": merged.fork,
            "select": merged.select,
            "ptt_update": merged.ptt_update,
        }
