"""Worker threads pinned 1:1 to cores.

The ILAN implementation pins logical OpenMP threads to physical cores so
that performance tracing can attribute measurements to cores and NUMA
nodes; the simulated runtime does the same.  A :class:`WorkerPool` is the
set of workers participating in one taskloop execution (the "active
threads" of the current configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeModelError
from repro.runtime.queues import WorkQueue
from repro.topology.machine import MachineTopology

__all__ = ["Worker", "WorkerPool"]


@dataclass
class Worker:
    """One OpenMP worker thread pinned to a core."""

    worker_id: int
    core_id: int
    node_id: int
    queue: WorkQueue

    def __post_init__(self) -> None:
        if self.queue.owner_id != self.core_id:
            raise RuntimeModelError(
                f"worker queue owner {self.queue.owner_id} != core {self.core_id}"
            )


class WorkerPool:
    """Workers of one taskloop execution, indexed by core id.

    Workers are created for the plan's active core list; lookups by node
    support the hierarchical steal policy's locality checks.  The pool
    listens to every queue's empty/non-empty transitions and maintains
    O(1)-updatable victim-candidate sets (globally and per node) so steal
    attempts never scan all workers.
    """

    def __init__(self, topology: MachineTopology, core_ids: list[int], *, owner_lifo: bool = True):
        if not core_ids:
            raise RuntimeModelError("a worker pool needs at least one core")
        if len(set(core_ids)) != len(core_ids):
            raise RuntimeModelError("duplicate core ids in worker pool")
        self.topology = topology
        self.workers: list[Worker] = []
        self.by_core: dict[int, Worker] = {}
        self.by_node: dict[int, list[Worker]] = {}
        # core ids whose queues currently hold work
        self.nonempty: set[int] = set()
        self.nonempty_by_node: dict[int, set[int]] = {}
        for wid, core in enumerate(sorted(core_ids)):
            node = topology.node_of_core(core)
            worker = Worker(
                worker_id=wid,
                core_id=core,
                node_id=node,
                queue=WorkQueue(core, owner_lifo=owner_lifo),
            )
            worker.queue.listener = self
            self.workers.append(worker)
            self.by_core[core] = worker
            self.by_node.setdefault(node, []).append(worker)
            self.nonempty_by_node.setdefault(node, set())

    # -- QueueListener ---------------------------------------------------
    def queue_nonempty(self, owner_id: int) -> None:
        self.nonempty.add(owner_id)
        self.nonempty_by_node[self.by_core[owner_id].node_id].add(owner_id)

    def queue_empty(self, owner_id: int) -> None:
        self.nonempty.discard(owner_id)
        self.nonempty_by_node[self.by_core[owner_id].node_id].discard(owner_id)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def core_ids(self) -> list[int]:
        return [w.core_id for w in self.workers]

    def node_ids(self) -> list[int]:
        return sorted(self.by_node)

    def worker_for_core(self, core_id: int) -> Worker:
        try:
            return self.by_core[core_id]
        except KeyError:
            raise RuntimeModelError(f"core {core_id} is not part of this pool") from None

    def workers_in_node(self, node_id: int) -> list[Worker]:
        return self.by_node.get(node_id, [])

    def primary_worker_of_node(self, node_id: int) -> Worker:
        """The pool worker on the node's lowest-numbered active core."""
        workers = self.workers_in_node(node_id)
        if not workers:
            raise RuntimeModelError(f"node {node_id} has no workers in this pool")
        return min(workers, key=lambda w: w.core_id)

    def node_queues_empty(self, node_id: int) -> bool:
        """True when every queue of ``node_id``'s workers is empty."""
        return not self.nonempty_by_node.get(node_id)

    def any_work(self) -> bool:
        """True when any queue in the pool holds work."""
        return bool(self.nonempty)

    def total_queued(self) -> int:
        return sum(len(w.queue) for w in self.workers)
