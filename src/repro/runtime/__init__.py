"""Simulated OpenMP tasking runtime.

Pinned worker threads, per-thread task deques, taskloop partitioning,
pluggable steal policies, static work sharing, overhead accounting, and the
executor that runs taskloop plans on the simulated machine.
"""

from repro.runtime.context import RunContext
from repro.runtime.executor import TaskloopExecutor
from repro.runtime.overhead import OverheadLedger, OverheadParams
from repro.runtime.queues import WorkQueue
from repro.runtime.results import AppRunResult, TaskloopResult
from repro.runtime.runtime import ApplicationProtocol, OpenMPRuntime
from repro.runtime.schedulers import (
    SCHEDULERS,
    BaselineScheduler,
    Scheduler,
    TaskloopPlan,
    WorksharingScheduler,
    create_scheduler,
    register_scheduler,
)
from repro.runtime.task import Chunk, SerialPhase, TaskloopWork
from repro.runtime.taskloop import chunk_bounds, partition, profile_mass
from repro.runtime.threads import Worker, WorkerPool
from repro.runtime.worksteal import (
    Acquisition,
    HierarchicalStealPolicy,
    NoStealPolicy,
    RandomStealPolicy,
    StealPolicy,
)

__all__ = [
    "RunContext",
    "TaskloopExecutor",
    "OverheadLedger",
    "OverheadParams",
    "WorkQueue",
    "AppRunResult",
    "TaskloopResult",
    "ApplicationProtocol",
    "OpenMPRuntime",
    "SCHEDULERS",
    "BaselineScheduler",
    "Scheduler",
    "TaskloopPlan",
    "WorksharingScheduler",
    "create_scheduler",
    "register_scheduler",
    "Chunk",
    "SerialPhase",
    "TaskloopWork",
    "chunk_bounds",
    "partition",
    "profile_mass",
    "Worker",
    "WorkerPool",
    "Acquisition",
    "HierarchicalStealPolicy",
    "NoStealPolicy",
    "RandomStealPolicy",
    "StealPolicy",
]
