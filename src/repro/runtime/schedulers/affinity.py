"""The OpenMP ``affinity`` clause as a scheduler: hints without enforcement.

Section 3.4 of the paper discusses the OpenMP 5.0/6.0 ``affinity`` clause:
a programmer can hint that tasks belong near certain data, but "the
affinity clause is interpreted by the runtime as a hint", it "does not
provide interference-awareness", and it cannot adapt thread counts.

This scheduler models a *best-case* affinity-clause implementation on the
default runtime: every chunk carries a perfect data-affinity hint (the
deterministic block mapping — the same one ILAN uses), and the runtime
honours it for **initial placement only**.  Everything else stays the
LLVM default: all cores run, work stealing is random and topology-blind,
nothing is NUMA-strict, and there is no moldability.  Comparing it to
``ilan-nomold`` isolates what ILAN's *enforced* hierarchy adds over hints,
and to ``ilan`` what moldability adds on top.
"""

from __future__ import annotations

from repro.runtime.context import RunContext
from repro.runtime.schedulers.base import Scheduler, TaskloopPlan, register_scheduler
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.taskloop import partition
from repro.runtime.worksteal import RandomStealPolicy
from repro.topology.affinity import NodeMask

__all__ = ["AffinityHintScheduler"]


class AffinityHintScheduler(Scheduler):
    """Default scheduler plus perfect data-affinity placement hints."""

    name = "affinity-hint"

    def plan(self, work: TaskloopWork, ctx: RunContext) -> TaskloopPlan:
        # deferred: repro.core sits above the runtime package in the layer
        # order, so importing it at module load would be circular
        from repro.core.distribution import distribute_chunks

        topo = ctx.topology
        cores = list(topo.core_ids())
        chunks = partition(work)
        # the affinity hint: map iteration blocks to the nodes owning their
        # data (identical to ILAN's deterministic mapping)...
        per_node = distribute_chunks(chunks, list(topo.node_ids()), strict_fraction=0.0)
        rng = ctx.rng("affinity", "placement")
        queues: dict[int, list[Chunk]] = {c: [] for c in cores}
        for node, node_chunks in per_node.items():
            node_cores = topo.cores_of_node(node)
            # ...honoured for initial placement onto a queue of that node,
            # but the hint creates no obligation: chunks spread over the
            # node's queues and random stealing may migrate them anywhere
            targets = rng.integers(0, len(node_cores), size=len(node_chunks))
            for chunk, t in zip(node_chunks, targets):
                chunk.strict = False
                queues[node_cores[int(t)]].append(chunk)
        return TaskloopPlan(
            worker_cores=cores,
            initial_queues=queues,
            policy=RandomStealPolicy(),
            owner_lifo=True,
            num_threads=len(cores),
            node_mask_bits=NodeMask.for_topology(topo).bits,
            steal_mode="random",
        )


register_scheduler("affinity-hint", AffinityHintScheduler)
