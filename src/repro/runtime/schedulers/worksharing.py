"""OpenMP static work sharing (``omp for schedule(static)``).

The natural data-parallel scheduler the paper compares against in Section
5.6: the iteration space is split into one contiguous block per thread, no
tasks are created and no stealing happens.  Placement is fully
deterministic, which gives excellent locality on balanced loops (FT) and
poor load balance on imbalanced ones (CG).
"""

from __future__ import annotations

from repro.runtime.context import RunContext
from repro.runtime.schedulers.base import Scheduler, TaskloopPlan, register_scheduler
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.taskloop import partition
from repro.runtime.worksteal import NoStealPolicy
from repro.topology.affinity import NodeMask

__all__ = ["WorksharingScheduler"]


class WorksharingScheduler(Scheduler):
    """Static loop scheduling: one contiguous iteration block per thread."""

    name = "worksharing"

    def plan(self, work: TaskloopWork, ctx: RunContext) -> TaskloopPlan:
        cores = list(ctx.topology.core_ids())
        n_blocks = min(len(cores), work.total_iters)
        chunks = partition(work, num_chunks=n_blocks)
        queues: dict[int, list[Chunk]] = {c: [] for c in cores}
        # block i belongs to thread i; threads are pinned in core order, so
        # consecutive blocks land on consecutive cores (and NUMA nodes)
        for chunk, core in zip(chunks, cores):
            queues[core].append(chunk)
        return TaskloopPlan(
            worker_cores=cores,
            initial_queues=queues,
            policy=NoStealPolicy(),
            owner_lifo=False,
            num_threads=len(cores),
            node_mask_bits=NodeMask.for_topology(ctx.topology).bits,
            steal_mode="static",
            static=True,
        )


register_scheduler("worksharing", WorksharingScheduler)
