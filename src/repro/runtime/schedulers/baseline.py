"""The baseline: LLVM's default topology-agnostic tasking scheduler.

Matches Section 3 of the paper: initial tasks land on arbitrary (random)
queues, idle threads steal from uniformly random victims, and neither step
consults the NUMA topology or contention state.

By default all cores participate, mirroring ``OMP_NUM_THREADS`` unset on a
dedicated node.  ``num_threads`` and ``proc_bind`` model the standard's
manual affinity controls the paper contrasts ILAN against (Section 3.4):
the *close* and *spread* policies place a reduced thread team compactly or
sparsely across the topology — static, programmer-supplied hints with no
interference awareness.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.context import RunContext
from repro.runtime.schedulers.base import Scheduler, TaskloopPlan, register_scheduler
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.taskloop import partition
from repro.runtime.worksteal import RandomStealPolicy
from repro.topology.affinity import NodeMask, proc_bind_close, proc_bind_spread

__all__ = ["BaselineScheduler"]

_PROC_BIND = {"close": proc_bind_close, "spread": proc_bind_spread}


class BaselineScheduler(Scheduler):
    """LLVM default work-stealing taskloop scheduler (the paper's baseline).

    Parameters
    ----------
    num_threads:
        Fixed thread-team size; ``None`` uses every core.
    proc_bind:
        Thread placement policy for a reduced team: ``"close"`` packs
        threads onto consecutive cores, ``"spread"`` distributes them
        across NUMA nodes.  Ignored when the team covers the machine.
    """

    name = "baseline"

    def __init__(self, num_threads: int | None = None, proc_bind: str = "close"):
        if proc_bind not in _PROC_BIND:
            raise ConfigurationError(
                f"unknown proc_bind policy {proc_bind!r}; choose close or spread"
            )
        if num_threads is not None and num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self.proc_bind = proc_bind

    def plan(self, work: TaskloopWork, ctx: RunContext) -> TaskloopPlan:
        chunks = partition(work)
        n = self.num_threads or ctx.topology.num_cores
        if n > ctx.topology.num_cores:
            raise ConfigurationError(
                f"num_threads {n} exceeds the machine's {ctx.topology.num_cores} cores "
                "(the simulated runtime pins threads 1:1)"
            )
        cores = sorted(set(_PROC_BIND[self.proc_bind](ctx.topology, n)))
        rng = ctx.rng("baseline", "placement")
        queues: dict[int, list[Chunk]] = {c: [] for c in cores}
        # arbitrary initial placement: each task goes to a random queue
        targets = rng.integers(0, len(cores), size=len(chunks))
        for chunk, t in zip(chunks, targets):
            queues[cores[int(t)]].append(chunk)
        nodes = sorted({ctx.topology.node_of_core(c) for c in cores})
        return TaskloopPlan(
            worker_cores=cores,
            initial_queues=queues,
            policy=RandomStealPolicy(),
            owner_lifo=True,
            num_threads=len(cores),
            node_mask_bits=NodeMask.from_indices(nodes, ctx.topology.num_nodes).bits,
            steal_mode="random",
        )


register_scheduler("baseline", BaselineScheduler)
