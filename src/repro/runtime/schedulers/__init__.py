"""Scheduler registry and the built-in scheduler implementations.

Importing this package registers ``baseline`` and ``worksharing``; the
ILAN schedulers register on import of :mod:`repro.core.scheduler` (done
lazily by :func:`create_scheduler`).
"""

from repro.runtime.schedulers.base import (
    SCHEDULERS,
    Scheduler,
    TaskloopPlan,
    create_scheduler,
    register_scheduler,
)
from repro.runtime.schedulers.affinity import AffinityHintScheduler
from repro.runtime.schedulers.baseline import BaselineScheduler
from repro.runtime.schedulers.worksharing import WorksharingScheduler

__all__ = [
    "SCHEDULERS",
    "Scheduler",
    "TaskloopPlan",
    "create_scheduler",
    "register_scheduler",
    "AffinityHintScheduler",
    "BaselineScheduler",
    "WorksharingScheduler",
]
