"""Scheduler interface: plan a taskloop execution, learn from its result.

A scheduler turns a :class:`TaskloopWork` into a :class:`TaskloopPlan`:
which cores participate, where the initial tasks are enqueued, and which
steal policy governs work movement.  After the executor runs the plan the
scheduler sees the measurements (``record``), which is how ILAN's PTT
learns; stateless schedulers ignore it.

Schedulers register themselves by name in :data:`SCHEDULERS` so the
experiment harness can instantiate them from strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.runtime.context import RunContext
from repro.runtime.results import TaskloopResult
from repro.runtime.task import Chunk, TaskloopWork
from repro.runtime.worksteal import StealPolicy

__all__ = ["TaskloopPlan", "Scheduler", "SCHEDULERS", "register_scheduler", "create_scheduler"]


@dataclass
class TaskloopPlan:
    """Executable placement decision for one taskloop encounter.

    Attributes
    ----------
    worker_cores:
        Cores whose (pinned) threads participate in this execution.
    initial_queues:
        Initial chunk lists per core; every chunk appears exactly once.
    policy:
        Steal policy instance governing work movement.
    owner_lifo:
        Queue discipline (see :class:`repro.runtime.queues.WorkQueue`).
    num_threads / node_mask_bits / steal_mode:
        The configuration triple the paper controls per taskloop, recorded
        into results and the PTT.
    extra_overhead:
        Additional serial cost charged before execution (e.g. ILAN's
        configuration selection).
    static:
        True for work sharing: chunk creation is charged as a fork, not as
        per-task creation.
    """

    worker_cores: list[int]
    initial_queues: dict[int, list[Chunk]]
    policy: StealPolicy
    owner_lifo: bool
    num_threads: int
    node_mask_bits: int
    steal_mode: str
    extra_overhead: float = 0.0
    static: bool = False

    def validate(self, work: TaskloopWork) -> None:
        if not self.worker_cores:
            raise ConfigurationError("plan has no worker cores")
        if len(set(self.worker_cores)) != len(self.worker_cores):
            raise ConfigurationError("plan lists duplicate worker cores")
        cores = set(self.worker_cores)
        seen: set[int] = set()
        total = 0
        for core, chunks in self.initial_queues.items():
            if core not in cores:
                raise ConfigurationError(f"queue assigned to non-worker core {core}")
            for chunk in chunks:
                if chunk.index in seen:
                    raise ConfigurationError(f"chunk {chunk.index} assigned twice")
                seen.add(chunk.index)
                total += 1
        if total == 0:
            raise ConfigurationError("plan assigns no chunks")
        if self.num_threads != len(self.worker_cores):
            raise ConfigurationError(
                f"num_threads {self.num_threads} != worker count {len(self.worker_cores)}"
            )

    @property
    def total_chunks(self) -> int:
        return sum(len(c) for c in self.initial_queues.values())


class Scheduler(ABC):
    """Base class of the taskloop schedulers under evaluation."""

    name: str = "abstract"

    @abstractmethod
    def plan(self, work: TaskloopWork, ctx: RunContext) -> TaskloopPlan:
        """Decide configuration and initial task placement for ``work``."""

    def record(self, work: TaskloopWork, plan: TaskloopPlan, result: TaskloopResult) -> None:
        """Observe the measured execution (default: stateless, ignore)."""

    def reset(self) -> None:
        """Drop learned state before a fresh run (default: nothing)."""


SCHEDULERS: dict[str, Callable[[], Scheduler]] = {}


def register_scheduler(name: str, factory: Callable[[], Scheduler]) -> None:
    """Register a scheduler factory under ``name`` (idempotent re-register)."""
    SCHEDULERS[name] = factory


def create_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    # importing the implementations registers them; deferred to avoid cycles
    from repro.runtime.schedulers import affinity, baseline, worksharing  # noqa: F401
    from repro.core import scheduler as _ilan  # noqa: F401

    try:
        factory = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ConfigurationError(f"unknown scheduler {name!r}; known: {known}") from None
    sched = factory(**kwargs) if kwargs else factory()
    return sched
