"""Task model: taskloop work descriptions and the chunks they split into.

A :class:`TaskloopWork` is one *encounter* of an ``omp taskloop`` construct:
the total work, its memory character, and the data region it touches.  The
partitioner (:mod:`repro.runtime.taskloop`) splits it into
:class:`Chunk` tasks; the scheduler decides where chunks go; the executor
runs them on the simulated machine.

``uid`` identifies the *callsite* (not the encounter): the ILAN PTT is
keyed by it, so repeated encounters of the same loop share learned state —
exactly how the paper identifies taskloops across application iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RuntimeModelError
from repro.memory.access import AccessPattern
from repro.memory.allocator import DataRegion

__all__ = ["TaskloopWork", "Chunk", "SerialPhase"]


@dataclass(frozen=True)
class SerialPhase:
    """A serial program region between taskloops (single-thread work)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise RuntimeModelError(f"serial phase cannot be negative: {self.seconds}")


@dataclass
class TaskloopWork:
    """One encounter of a taskloop construct.

    Attributes
    ----------
    uid:
        Stable callsite identity; the PTT key.
    name:
        Human-readable name (for traces and reports).
    total_iters:
        Loop trip count.
    num_tasks:
        How many explicit tasks the runtime partitions the loop into.
    work_seconds:
        Total single-core base time of the whole loop body (compute plus
        uncontended local memory time), seconds.
    mem_frac:
        Fraction of ``work_seconds`` that is memory-bound.
    weights:
        Normalised per-cell work-density profile over the iteration space
        (see :func:`repro.runtime.taskloop.partition`); encodes load
        imbalance consistently for any partitioning.
    region:
        The data region the loop reads/writes.
    pattern:
        Memory access pattern over the region.
    reuse:
        Cache-reuse potential in [0, 1] when re-executed with warm caches.
    gamma:
        Contention exponent of the access pattern (0 = fair sharing).
    working_set_bytes:
        Per-node working set used for the cache-capacity discount; defaults
        to region size / number of tasks when 0.
    """

    uid: str
    name: str
    total_iters: int
    num_tasks: int
    work_seconds: float
    mem_frac: float
    weights: np.ndarray
    region: DataRegion
    pattern: AccessPattern
    reuse: float = 0.0
    gamma: float = 0.0
    working_set_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.total_iters < 1:
            raise RuntimeModelError(f"total_iters must be >= 1, got {self.total_iters}")
        if self.num_tasks < 1:
            raise RuntimeModelError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.num_tasks > self.total_iters:
            raise RuntimeModelError(
                f"cannot split {self.total_iters} iterations into {self.num_tasks} tasks"
            )
        if self.work_seconds <= 0:
            raise RuntimeModelError(f"work_seconds must be positive, got {self.work_seconds}")
        if not (0.0 <= self.mem_frac <= 1.0):
            raise RuntimeModelError(f"mem_frac must lie in [0, 1], got {self.mem_frac}")
        if not (0.0 <= self.reuse <= 1.0):
            raise RuntimeModelError(f"reuse must lie in [0, 1], got {self.reuse}")
        if self.gamma < 0:
            raise RuntimeModelError(f"gamma must be non-negative, got {self.gamma}")
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0 or np.any(w < 0) or w.sum() <= 0:
            raise RuntimeModelError("weights must be a non-empty non-negative vector")
        self.weights = w / w.sum()

    @property
    def effective_working_set(self) -> float:
        if self.working_set_bytes > 0:
            return self.working_set_bytes
        return self.region.num_bytes / self.num_tasks


@dataclass
class Chunk:
    """One explicit task: a contiguous block of taskloop iterations.

    ``home_node`` is the NUMA node the scheduler assigned the chunk to
    (``-1`` for topology-agnostic scheduling); ``strict`` marks ILAN's
    NUMA-strict tasks that must never migrate across nodes.
    """

    work: TaskloopWork = field(repr=False)
    index: int
    lo: int
    hi: int
    lo_frac: float
    hi_frac: float
    body_time: float
    home_node: int = -1
    strict: bool = False
    stolen: bool = False

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise RuntimeModelError(f"chunk [{self.lo}, {self.hi}) is empty")
        if self.body_time <= 0:
            raise RuntimeModelError(f"chunk body time must be positive, got {self.body_time}")

    @property
    def num_iters(self) -> int:
        return self.hi - self.lo
