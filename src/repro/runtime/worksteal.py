"""Work acquisition: own-queue pops and the steal policies.

Three policies cover the schedulers in the paper's evaluation:

* :class:`RandomStealPolicy` — the LLVM-default tasking scheduler: a worker
  pops its own queue LIFO and otherwise steals from uniformly random
  victims with no regard for topology ("placing initial tasks onto
  selected queues arbitrarily and enabling idle threads to steal tasks
  without considering NUMA topology", Section 3).
* :class:`HierarchicalStealPolicy` — ILAN's two-level policy: steal within
  the worker's NUMA node first; only when the entire node is out of queued
  work, and only when the taskloop runs with ``steal_policy=full``, take a
  NUMA-stealable (non-strict) task from a remote node.
* :class:`NoStealPolicy` — static work sharing: own queue only.

``acquire`` returns the chunk together with the scheduling overhead the
acquisition costs; the executor charges it to the task's start.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.runtime.overhead import OverheadLedger, OverheadParams
from repro.runtime.task import Chunk
from repro.runtime.threads import Worker, WorkerPool

__all__ = [
    "Acquisition",
    "StealPolicy",
    "RandomStealPolicy",
    "HierarchicalStealPolicy",
    "NoStealPolicy",
]


@dataclass
class Acquisition:
    """A successfully acquired task and how it was obtained."""

    chunk: Chunk
    source: str  # "own" | "steal_local" | "steal_remote"
    overhead: float
    victim_core: int


class StealPolicy(ABC):
    """Decides where an idle worker gets its next task from."""

    name: str = "abstract"

    def acquire(
        self,
        worker: Worker,
        pool: WorkerPool,
        rng: np.random.Generator,
        params: OverheadParams,
        ledger: OverheadLedger,
    ) -> Acquisition | None:
        """Next task for ``worker``, or ``None`` if nothing is available.

        Tries the worker's own queue first (charging the dequeue cost),
        then delegates to :meth:`steal`.
        """
        chunk = worker.queue.pop_own()
        if chunk is not None:
            ledger.charge("dequeue", params.dequeue)
            return Acquisition(
                chunk=chunk, source="own", overhead=params.dequeue, victim_core=worker.core_id
            )
        return self.steal(worker, pool, rng, params, ledger)

    @abstractmethod
    def steal(
        self,
        worker: Worker,
        pool: WorkerPool,
        rng: np.random.Generator,
        params: OverheadParams,
        ledger: OverheadLedger,
    ) -> Acquisition | None:
        """Attempt to steal a task for ``worker``."""

    # ------------------------------------------------------------------
    @staticmethod
    def _take(
        worker: Worker,
        victim: Worker,
        chunk: Chunk,
        probes: int,
        params: OverheadParams,
        ledger: OverheadLedger,
        pool: WorkerPool,
    ) -> Acquisition:
        remote = victim.node_id != worker.node_id
        cost = params.steal_remote if remote else params.steal_local
        fail_cost = probes * params.steal_fail
        ledger.charge("steal_remote" if remote else "steal_local", cost)
        if probes:
            ledger.charge("steal_fail", fail_cost, count=probes)
        chunk.stolen = True
        return Acquisition(
            chunk=chunk,
            source="steal_remote" if remote else "steal_local",
            overhead=cost + fail_cost,
            victim_core=victim.core_id,
        )


class RandomStealPolicy(StealPolicy):
    """LLVM-default stealing: uniformly random victims, topology-blind."""

    name = "random"

    def steal(self, worker, pool, rng, params, ledger):
        candidates = pool.nonempty - {worker.core_id}
        if not candidates:
            return None
        # a real thief probes random workers until it finds a non-empty
        # queue; the expected number of misses scales with the fraction of
        # empty queues
        empties = len(pool) - 1 - len(candidates)
        probes = int(rng.integers(0, empties + 1)) if empties > 0 else 0
        victim_core = (
            next(iter(candidates))
            if len(candidates) == 1
            else sorted(candidates)[int(rng.integers(len(candidates)))]
        )
        victim = pool.by_core[victim_core]
        chunk = victim.queue.steal()
        if chunk is None:
            return None
        return self._take(worker, victim, chunk, probes, params, ledger, pool)


class HierarchicalStealPolicy(StealPolicy):
    """ILAN's hierarchical stealing.

    Intra-node steals are unrestricted (this is how a node's chunks spread
    from the primary thread's queue to the node's workers).  Inter-node
    steals require all three of: the taskloop runs with
    ``steal_policy=full`` (``allow_inter_node``), the thief's node is
    completely out of queued work, and the victim's exposed task is not
    NUMA-strict.
    """

    name = "hierarchical"

    def __init__(self, allow_inter_node: bool):
        self.allow_inter_node = allow_inter_node

    def steal(self, worker, pool, rng, params, ledger):
        local = pool.nonempty_by_node[worker.node_id] - {worker.core_id}
        if local:
            victim_core = (
                next(iter(local))
                if len(local) == 1
                else sorted(local)[int(rng.integers(len(local)))]
            )
            victim = pool.by_core[victim_core]
            chunk = victim.queue.steal()
            if chunk is not None:
                return self._take(worker, victim, chunk, 0, params, ledger, pool)
        if not self.allow_inter_node:
            return None
        if not pool.node_queues_empty(worker.node_id):
            return None
        remote = sorted(pool.nonempty - pool.nonempty_by_node[worker.node_id])
        if not remote:
            return None
        probes = 0
        order = rng.permutation(len(remote)) if len(remote) > 1 else range(len(remote))
        for idx in order:
            victim = pool.by_core[remote[int(idx)]]
            chunk = victim.queue.steal(predicate=lambda c: not c.strict)
            if chunk is not None:
                return self._take(worker, victim, chunk, probes, params, ledger, pool)
            probes += 1
        if probes:
            ledger.charge("steal_fail", probes * params.steal_fail, count=probes)
        return None


class NoStealPolicy(StealPolicy):
    """Static work sharing: each thread only runs its own partition."""

    name = "none"

    def steal(self, worker, pool, rng, params, ledger):
        return None
