"""Per-worker task queues with owner/thief ends.

Each worker thread owns one double-ended queue.  Which end the owner pops
and which end thieves steal from is a scheduler property:

* the LLVM-default scheduler pushes new tasks to the owner end and pops
  LIFO while thieves steal FIFO from the opposite end (classic
  work-stealing deque);
* ILAN enqueues a node's chunks in iteration order on the node's primary
  thread; the owner consumes from the *front* (preserving iteration order
  and therefore spatial locality) while thieves take from the *back*,
  where ILAN places the NUMA-stealable tail.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import RuntimeModelError
from repro.runtime.task import Chunk

__all__ = ["WorkQueue", "QueueListener"]


class QueueListener:
    """Observer interface for queue empty <-> non-empty transitions."""

    def queue_nonempty(self, owner_id: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def queue_empty(self, owner_id: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class WorkQueue:
    """Double-ended task queue owned by one worker.

    ``owner_lifo`` selects the owner's pop end: ``True`` pops the most
    recently pushed task (LLVM default), ``False`` pops in push order
    (ILAN's in-order consumption).  Thieves always take from the end
    opposite the owner.
    """

    __slots__ = (
        "owner_id",
        "owner_lifo",
        "_dq",
        "pushed",
        "popped",
        "stolen_from",
        "listener",
    )

    def __init__(self, owner_id: int, *, owner_lifo: bool = True):
        self.owner_id = owner_id
        self.owner_lifo = owner_lifo
        self._dq: deque[Chunk] = deque()
        self.pushed = 0
        self.popped = 0
        self.stolen_from = 0
        # optional observer notified on empty <-> non-empty transitions;
        # the worker pool uses it to keep O(1) victim-candidate sets
        self.listener: "QueueListener | None" = None

    # ------------------------------------------------------------------
    def push(self, chunk: Chunk) -> None:
        """Owner-side push (back of the deque)."""
        was_empty = not self._dq
        self._dq.append(chunk)
        self.pushed += 1
        if was_empty and self.listener is not None:
            self.listener.queue_nonempty(self.owner_id)

    def extend(self, chunks: list[Chunk]) -> None:
        if not chunks:
            return
        was_empty = not self._dq
        self._dq.extend(chunks)
        self.pushed += len(chunks)
        if was_empty and self.listener is not None:
            self.listener.queue_nonempty(self.owner_id)

    def pop_own(self) -> Chunk | None:
        """Owner pops its next task; ``None`` when empty."""
        if not self._dq:
            return None
        chunk = self._dq.pop() if self.owner_lifo else self._dq.popleft()
        self.popped += 1
        if not self._dq and self.listener is not None:
            self.listener.queue_empty(self.owner_id)
        return chunk

    def steal(self, predicate: Callable[[Chunk], bool] | None = None) -> Chunk | None:
        """Thief-side take from the end opposite the owner.

        ``predicate`` filters eligibility (e.g. "not NUMA-strict"); only
        the exposed thief-end task is considered — thieves do not rummage
        through a victim's queue, matching real work-stealing deques.
        """
        if not self._dq:
            return None
        victim_end = self._dq[0] if self.owner_lifo else self._dq[-1]
        if predicate is not None and not predicate(victim_end):
            return None
        chunk = self._dq.popleft() if self.owner_lifo else self._dq.pop()
        self.stolen_from += 1
        if not self._dq and self.listener is not None:
            self.listener.queue_empty(self.owner_id)
        return chunk

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._dq)

    def is_empty(self) -> bool:
        return not self._dq

    def peek_thief_end(self) -> Chunk | None:
        if not self._dq:
            return None
        return self._dq[0] if self.owner_lifo else self._dq[-1]

    def drain(self) -> list[Chunk]:
        """Remove and return all queued tasks (teardown/testing helper)."""
        out = list(self._dq)
        self._dq.clear()
        if out and self.listener is not None:
            self.listener.queue_empty(self.owner_id)
        return out

    def require_empty(self) -> None:
        if self._dq:
            raise RuntimeModelError(
                f"queue of worker {self.owner_id} still holds {len(self._dq)} tasks"
            )
