"""Hardware-performance-counter-style metrics for simulated runs.

The ILAN artifact exposes a ``PERF_COUNTERS`` build flag and the paper
notes that "hardware performance counters can easily be integrated into
the ILAN scheduler and used as a basis for the selection of taskloop
configuration".  This module is that integration for the simulated
platform: the executor samples counter-like quantities while a taskloop
runs, and counter-aware schedulers (see :mod:`repro.counters.hints`) read
them to shorten the exploration.

Counters per taskloop execution:

* ``mem_time_weighted_saturation`` — time-integral of the mean per-node
  ``demand / bandwidth`` ratio over the execution, divided by elapsed
  time: > 1 means memory controllers were oversubscribed on average
  (the signature of interference moldability can relieve);
* ``peak_saturation`` — the worst per-node ratio observed;
* ``remote_byte_fraction`` — fraction of memory traffic served by a node
  other than the executing core's (the locality signal);
* ``bytes_total`` — modelled DRAM traffic, for the energy model;
* ``busy_time`` / ``idle_time`` — core-seconds of work vs. idling among
  the participating threads (load-balance signal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

__all__ = ["TaskloopCounters", "CounterBoard"]


@dataclass
class TaskloopCounters:
    """Counter sample of one taskloop execution."""

    uid: str
    elapsed: float = 0.0
    sat_time_integral: float = 0.0
    peak_saturation: float = 0.0
    bytes_total: float = 0.0
    bytes_remote: float = 0.0
    busy_time: float = 0.0
    idle_time: float = 0.0

    @property
    def avg_saturation(self) -> float:
        """Time-averaged mean node saturation over the execution."""
        return self.sat_time_integral / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def remote_byte_fraction(self) -> float:
        return self.bytes_remote / self.bytes_total if self.bytes_total > 0 else 0.0

    @property
    def utilization(self) -> float:
        total = self.busy_time + self.idle_time
        return self.busy_time / total if total > 0 else 0.0


class CounterBoard:
    """Collects counter samples for every taskloop execution of a run.

    The executor drives it through :meth:`begin`, :meth:`step` (once per
    simulation advance, with the pre-advance machine state) and
    :meth:`finish`; schedulers read :meth:`last` / :meth:`history`.
    Disabled boards ignore everything at near-zero cost.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._current: TaskloopCounters | None = None
        self._history: dict[str, list[TaskloopCounters]] = {}

    # ------------------------------------------------------------------
    def begin(self, uid: str) -> None:
        if not self.enabled:
            return
        if self._current is not None:
            raise SimulationError("counter sampling already active; nested taskloops?")
        self._current = TaskloopCounters(uid=uid)

    def step(
        self,
        dt: float,
        saturation: np.ndarray,
        active_cores: int,
        participating: int,
    ) -> None:
        """Integrate one simulation step of length ``dt``."""
        cur = self._current
        if not self.enabled or cur is None or dt <= 0:
            return
        mean_sat = float(saturation.mean())
        cur.sat_time_integral += mean_sat * dt
        cur.peak_saturation = max(cur.peak_saturation, float(saturation.max()))
        cur.busy_time += active_cores * dt
        cur.idle_time += max(participating - active_cores, 0) * dt

    def step_scalars(
        self,
        dt: float,
        mean_sat: float,
        max_sat: float,
        active_cores: int,
        participating: int,
    ) -> None:
        """Integrate one step from precomputed saturation scalars.

        The incremental engine caches ``float(sat.mean())`` and
        ``float(sat.max())`` across steps whose saturation vector did not
        change; the accumulation below is expression-for-expression the
        same as :meth:`step`, so the two entry points are bit-identical.
        """
        cur = self._current
        if not self.enabled or cur is None or dt <= 0:
            return
        cur.sat_time_integral += mean_sat * dt
        cur.peak_saturation = max(cur.peak_saturation, max_sat)
        cur.busy_time += active_cores * dt
        cur.idle_time += max(participating - active_cores, 0) * dt

    def add_chunk_traffic(self, bytes_total: float, bytes_remote: float) -> None:
        cur = self._current
        if not self.enabled or cur is None:
            return
        cur.bytes_total += bytes_total
        cur.bytes_remote += bytes_remote

    def finish(self, elapsed: float) -> TaskloopCounters | None:
        """Close the active sample; returns it (``None`` when disabled)."""
        if not self.enabled:
            return None
        cur = self._current
        if cur is None:
            raise SimulationError("no counter sampling active")
        cur.elapsed = elapsed
        self._history.setdefault(cur.uid, []).append(cur)
        self._current = None
        return cur

    def abort(self) -> None:
        """Drop an in-flight sample (error-path cleanup)."""
        self._current = None

    # ------------------------------------------------------------------
    def last(self, uid: str) -> TaskloopCounters | None:
        samples = self._history.get(uid)
        return samples[-1] if samples else None

    def history(self, uid: str) -> list[TaskloopCounters]:
        return list(self._history.get(uid, []))

    def uids(self) -> list[str]:
        return sorted(self._history)
