"""Counter-driven exploration hints.

The paper: "More performance statistics can also reduce the exploration
overhead by utilizing the additional information to arrive at the optimal
configuration more quickly."  This module turns counter samples into such
hints:

* a full-machine execution with **no memory saturation** cannot benefit
  from fewer threads (the contention term of the cost model is inactive),
  so the thread-count search can stop at ``m_max`` immediately — saving
  the entire bootstrap/midpoint descent on compute-bound loops;
* a heavily saturated execution is the opposite signal: exploration is
  worth its cost and proceeds normally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.metrics import TaskloopCounters

__all__ = ["ExplorationHint", "hint_from_counters", "SATURATION_EXPLORE_THRESHOLD"]

# below this time-averaged node saturation the memory system has headroom:
# molding cannot pay (it only removes parallelism)
SATURATION_EXPLORE_THRESHOLD = 0.95


@dataclass(frozen=True)
class ExplorationHint:
    """What the counters recommend for the upcoming exploration."""

    skip_search: bool
    reason: str


def hint_from_counters(counters: TaskloopCounters | None) -> ExplorationHint:
    """Derive the exploration hint from a full-machine counter sample."""
    if counters is None:
        return ExplorationHint(skip_search=False, reason="no counter data")
    if counters.avg_saturation < SATURATION_EXPLORE_THRESHOLD:
        return ExplorationHint(
            skip_search=True,
            reason=(
                f"avg node saturation {counters.avg_saturation:.2f} < "
                f"{SATURATION_EXPLORE_THRESHOLD}: memory has headroom, "
                "molding cannot pay"
            ),
        )
    return ExplorationHint(
        skip_search=False,
        reason=f"avg node saturation {counters.avg_saturation:.2f}: contended, explore",
    )
