"""Performance-counter layer: sampling, and counter-driven exploration.

The simulated analogue of the artifact's ``PERF_COUNTERS`` support plus
the paper's proposed extension of using counters to cut exploration cost.
"""

from repro.counters.hints import (
    SATURATION_EXPLORE_THRESHOLD,
    ExplorationHint,
    hint_from_counters,
)
from repro.counters.metrics import CounterBoard, TaskloopCounters

__all__ = [
    "SATURATION_EXPLORE_THRESHOLD",
    "ExplorationHint",
    "hint_from_counters",
    "CounterBoard",
    "TaskloopCounters",
]
