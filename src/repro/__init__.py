"""repro: the ILAN NUMA taskloop scheduler, reproduced on a simulated platform.

Reproduction of Mellberg, Carlsson, Chen, Pericas, *ILAN: The
Interference- and Locality-Aware NUMA Scheduler* (SC Workshops '25).
Because low-level thread scheduling is out of reach for pure Python, the
whole platform is simulated: a Zen 4-like NUMA machine model, a
discrete-event execution engine with a contention/locality cost model,
and an OpenMP-like tasking runtime on which ILAN, the LLVM-default
baseline, static work sharing, and the no-moldability ablation run.

Quickstart::

    from repro import OpenMPRuntime, zen4_9354
    from repro.workloads import make_cg

    machine = zen4_9354()
    app = make_cg(timesteps=20)
    base = OpenMPRuntime(machine, scheduler="baseline", seed=0).run_application(app)
    ilan = OpenMPRuntime(machine, scheduler="ilan", seed=0).run_application(app)
    print(f"speedup: {base.total_time / ilan.total_time:.3f}")
"""

from repro.core import IlanAdaptiveScheduler, IlanNoMoldScheduler, IlanScheduler
from repro.counters import CounterBoard, TaskloopCounters
from repro.energy import EnergyModel
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    MemoryModelError,
    ReproError,
    RuntimeModelError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.runtime import (
    AppRunResult,
    BaselineScheduler,
    OpenMPRuntime,
    OverheadParams,
    TaskloopResult,
    WorksharingScheduler,
    create_scheduler,
)
from repro.topology import (
    DistanceMatrix,
    MachineTopology,
    NodeMask,
    dual_socket_small,
    single_node,
    tiny_two_node,
    zen4_9354,
)

__version__ = "1.0.0"

__all__ = [
    "IlanAdaptiveScheduler",
    "IlanNoMoldScheduler",
    "IlanScheduler",
    "CounterBoard",
    "TaskloopCounters",
    "EnergyModel",
    "ConfigurationError",
    "ExperimentError",
    "MemoryModelError",
    "ReproError",
    "RuntimeModelError",
    "SimulationError",
    "TopologyError",
    "WorkloadError",
    "AppRunResult",
    "BaselineScheduler",
    "OpenMPRuntime",
    "OverheadParams",
    "TaskloopResult",
    "WorksharingScheduler",
    "create_scheduler",
    "DistanceMatrix",
    "MachineTopology",
    "NodeMask",
    "dual_socket_small",
    "single_node",
    "tiny_two_node",
    "zen4_9354",
    "__version__",
]
