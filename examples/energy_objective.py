#!/usr/bin/env python
"""Energy-aware moldability: optimise joules instead of seconds.

Section 3.5 of the paper notes the PTT-driven selection can optimise
"other metrics, such as energy efficiency".  This example runs a
memory-bound workload under ILAN with three objectives — time, energy,
and energy-delay product — and compares the settled configurations, run
times and total energy, plus the counter-driven exploration shortcut on a
compute-bound kernel.

Run:
    python examples/energy_objective.py
"""

from repro import OpenMPRuntime, zen4_9354
from repro.core.scheduler import IlanScheduler
from repro.energy import EnergyModel
from repro.workloads import make_matmul, make_synthetic


def main() -> None:
    machine = zen4_9354()
    model = EnergyModel()
    app = make_synthetic(
        name="bandwidth",
        mem_frac=0.8,
        blocked_fraction=0.0,
        reuse=0.1,
        gamma=1.2,
        timesteps=25,
        region_mib=512,
    )

    print(f"{'objective':<10} {'time[s]':>9} {'energy[J]':>10} {'settled threads':>16}")
    for objective in ("time", "energy", "edp"):
        sched = IlanScheduler(objective=objective, energy_model=model)
        result = OpenMPRuntime(machine, scheduler=sched, seed=0).run_application(app)
        cfg = sched.controller("bandwidth.loop").settled_config
        print(f"{objective:<10} {result.total_time:>9.4f} "
              f"{model.run_energy(result):>10.2f} {cfg.num_threads:>16}")

    print("\ncounter-driven exploration shortcut (compute-bound Matmul):")
    mm = make_matmul(timesteps=15)
    for use_counters in (False, True):
        sched = IlanScheduler(use_counters=use_counters)
        result = OpenMPRuntime(machine, scheduler=sched, seed=0).run_application(mm)
        widths = sorted({r.num_threads for r in result.taskloops})
        label = "counters on " if use_counters else "counters off"
        print(f"  {label}: total {result.total_time:.4f}s, explored widths {widths}")


if __name__ == "__main__":
    main()
