#!/usr/bin/env python
"""Visualise scheduler behaviour: per-core timelines of one taskloop.

Runs the same imbalanced taskloop under the baseline (random placement and
stealing) and under ILAN (hierarchical distribution), then renders ASCII
Gantt charts from the execution traces.  The structural difference is
visible directly: ILAN's rows start from each node's primary thread and
stay node-local; the baseline's stolen-task marks scatter everywhere.

Run:
    python examples/execution_timeline.py
"""

from repro import OpenMPRuntime
from repro.exp.timeline import render_node_utilisation, render_taskloop_timeline
from repro.topology import dual_socket_small
from repro.workloads import make_synthetic


def main() -> None:
    machine = dual_socket_small()  # 16 cores / 4 nodes: timelines stay readable
    app = make_synthetic(
        name="demo",
        mem_frac=0.4,
        blocked_fraction=1.0,
        reuse=0.3,
        gamma=0.3,
        imbalance="linear",
        imbalance_cv=0.4,
        timesteps=6,
        num_tasks=48,
        total_iters=960,
        region_mib=128,
    )

    for sched in ("baseline", "ilan"):
        rt = OpenMPRuntime(machine, scheduler=sched, seed=0, trace=True)
        rt.run_application(app)
        trace = rt.last_ctx.trace
        print(f"\n===== {sched} (last encounter) =====")
        last = sum(1 for r in trace.taskloops if r.taskloop == "demo.loop") - 1
        print(render_taskloop_timeline(trace, machine, "demo.loop", occurrence=last))
        print()
        print(render_node_utilisation(trace, machine, "demo.loop", occurrence=last))


if __name__ == "__main__":
    main()
