#!/usr/bin/env python
"""Convert a work-sharing program to taskloops — the paper's helper tool.

The paper's benchmarks are ``omp parallel for`` codes; the authors built a
small converter to rewrite them as ``omp taskloop`` so the tasking
schedulers apply.  This example does the same on the workload IR: define a
work-sharing program, convert it, and compare the natural work-sharing
execution against the baseline and ILAN tasking schedulers (the paper's
Section 5.6 comparison in miniature).

Run:
    python examples/convert_for_to_taskloop.py
"""

from repro import OpenMPRuntime, zen4_9354
from repro.memory.access import AccessPattern
from repro.workloads import (
    ParallelFor,
    Program,
    RegionSpec,
    convert_for_to_taskloop,
    program_to_application,
)

MIB = 1024 * 1024


def build_program() -> Program:
    """A small stencil code written with work-sharing loops."""
    return Program(
        name="stencil-app",
        regions=(RegionSpec("grid", 512 * MIB),),
        constructs=(
            ParallelFor(
                name="halo_pack",
                region="grid",
                trip_count=2048,
                work_seconds=0.08,
                mem_frac=0.6,
                pattern=AccessPattern.strided(0.4),
                gamma=0.5,
            ),
            ParallelFor(
                name="stencil_sweep",
                region="grid",
                trip_count=4096,
                work_seconds=0.5,
                mem_frac=0.45,
                pattern=AccessPattern.blocked(),
                reuse=0.3,
                gamma=0.3,
                imbalance="linear",
                imbalance_cv=0.3,
            ),
        ),
        timesteps=25,
    )


def main() -> None:
    machine = zen4_9354()
    program = build_program()
    print(f"program {program.name!r}: {len(program.constructs)} parallel-for constructs")

    converted = convert_for_to_taskloop(program, num_threads=machine.num_cores)
    for before, after in zip(program.constructs, converted.constructs):
        print(f"  omp for {before.name!r} ({before.trip_count} iters)"
              f"  ->  omp taskloop num_tasks({after.num_tasks})")

    app = program_to_application(converted)
    results = {}
    for sched in ("worksharing", "baseline", "ilan"):
        results[sched] = OpenMPRuntime(machine, scheduler=sched, seed=0).run_application(app)

    base = results["baseline"].total_time
    print(f"\n{'scheduler':<14} {'time[s]':>9} {'vs baseline':>12}")
    for sched, res in results.items():
        print(f"{sched:<14} {res.total_time:>9.4f} {base / res.total_time:>12.3f}")


if __name__ == "__main__":
    main()
