#!/usr/bin/env python
"""Inspect ILAN's exploration: the PTT and Algorithm 1 step by step.

Runs the SP benchmark model (the paper's headline moldability case) under
ILAN and prints each encounter's configuration with the measured time —
the binary-search-like descent of Algorithm 1 made visible — followed by
the final PTT contents.

Run:
    python examples/moldability_trace.py
"""

from repro import OpenMPRuntime, zen4_9354
from repro.core.scheduler import IlanScheduler
from repro.topology.affinity import NodeMask
from repro.workloads import make_sp


def main() -> None:
    machine = zen4_9354()
    app = make_sp(timesteps=16)
    sched = IlanScheduler()
    rt = OpenMPRuntime(machine, scheduler=sched, seed=0)
    result = rt.run_application(app)

    uid = "sp.x_sweep"
    print(f"exploration trajectory of {uid!r}:")
    print(f"{'enc':>4} {'threads':>8} {'node_mask':>14} {'steal':>7} {'time[ms]':>9}")
    for i, r in enumerate(res for res in result.taskloops if res.uid == uid):
        mask = NodeMask(bits=r.node_mask_bits, width=machine.num_nodes)
        print(f"{i:>4} {r.num_threads:>8} {str(mask):>14} {r.steal_policy:>7} "
              f"{r.elapsed * 1e3:>9.2f}")

    ctrl = sched.controller(uid)
    print(f"\nsettled: {ctrl.settled_config.describe()}")

    print("\nPerformance Trace Table (strict rows, mean time per config):")
    table = sched.ptt.table(uid)
    rows = sorted(table.entries.items(), key=lambda kv: kv[0])
    print(f"{'threads':>8} {'node_mask':>14} {'steal':>7} {'runs':>5} {'mean[ms]':>9}")
    for (threads, bits, policy), stats in rows:
        mask = NodeMask(bits=bits, width=machine.num_nodes)
        print(f"{threads:>8} {str(mask):>14} {policy:>7} {stats.count:>5} "
              f"{stats.mean * 1e3:>9.2f}")

    perf = table.node_perf
    print("\nper-node throughput trace (relative):")
    best = max(p for p in perf if p == p)  # nanmax without numpy import
    for node, p in enumerate(perf):
        bar = "#" * int(30 * p / best) if p == p else ""
        label = f"{p / best:5.2f}" if p == p else "  n/a"
        print(f"  node {node}: {label} {bar}")


if __name__ == "__main__":
    main()
