#!/usr/bin/env python
"""Define a custom application and watch per-taskloop moldability.

The workload mixes a compute-bound dense kernel with a memory-bound
irregular kernel (like an application alternating assembly and solve).
A per-taskloop scheduler should learn *different* configurations for the
two loops: the dense loop keeps the whole machine; the irregular loop is
molded down to relieve memory contention.

Run:
    python examples/custom_workload.py
"""

from repro import OpenMPRuntime, zen4_9354
from repro.core.scheduler import IlanScheduler
from repro.memory.access import AccessPattern
from repro.workloads import Application, RegionSpec, TaskloopSpec

MIB = 1024 * 1024


def build_app() -> Application:
    return Application(
        name="assemble-solve",
        regions=[
            RegionSpec("elements", 256 * MIB),
            RegionSpec("csr_matrix", 768 * MIB),
        ],
        loops=[
            TaskloopSpec(
                name="assemble",
                region="elements",
                work_seconds=0.5,
                mem_frac=0.15,          # dense element kernels: compute bound
                pattern=AccessPattern.blocked(),
                reuse=0.4,
                gamma=0.1,
                imbalance="uniform",
            ),
            TaskloopSpec(
                name="solve_spmv",
                region="csr_matrix",
                work_seconds=0.45,
                mem_frac=0.8,           # indirect access: bandwidth bound
                pattern=AccessPattern.uniform(),
                reuse=0.1,
                gamma=1.5,              # superlinear penalty under saturation
                imbalance="clustered",
                imbalance_cv=0.5,
            ),
        ],
        timesteps=30,
    )


def main() -> None:
    machine = zen4_9354()
    app = build_app()

    base = OpenMPRuntime(machine, scheduler="baseline", seed=1).run_application(app)
    sched = IlanScheduler()
    ilan = OpenMPRuntime(machine, scheduler=sched, seed=1).run_application(app)

    print(f"baseline: {base.total_time:.4f}s   ILAN: {ilan.total_time:.4f}s   "
          f"speedup {base.total_time / ilan.total_time:.3f}")

    print("\nper-taskloop learned configurations:")
    for uid in app.loop_uids():
        cfg = sched.controller(uid).settled_config
        print(f"  {uid:28} -> {cfg.describe()}")

    print("\nper-taskloop steady-state times (last 5 encounters, ms):")
    for uid in app.loop_uids():
        base_t = [f"{t * 1e3:.2f}" for t in base.loop_times(uid)[-5:]]
        ilan_t = [f"{t * 1e3:.2f}" for t in ilan.loop_times(uid)[-5:]]
        print(f"  {uid:28} baseline {base_t}")
        print(f"  {'':28} ILAN     {ilan_t}")


if __name__ == "__main__":
    main()
