#!/usr/bin/env python
"""Run the same workload across machine shapes (NUMA sensitivity study).

ILAN's value depends on the topology: on a UMA machine hierarchical
scheduling is a no-op and moldability only matters under saturation; the
more NUMA domains, the more locality and interference there is to manage.
This example runs the LULESH model on four machines, from a flat 4-core
box to the paper's dual-socket Zen 4, and also demonstrates the textual
topology format.

Run:
    python examples/topology_comparison.py
"""

from repro import OpenMPRuntime
from repro.topology import (
    dual_socket_small,
    format_topology,
    parse_topology,
    single_node,
    tiny_two_node,
    zen4_9354,
)
from repro.workloads import make_lulesh

CUSTOM_MACHINE = """
machine custom-quad
  socket 0
    node 0 mem=32G bw=25G
      ccd 0 l3=32M
        cores 0-7
    node 1 mem=32G bw=25G
      ccd 1 l3=32M
        cores 8-15
  socket 1
    node 2 mem=32G bw=25G
      ccd 2 l3=32M
        cores 16-23
    node 3 mem=32G bw=25G
      ccd 3 l3=32M
        cores 24-31
"""


def main() -> None:
    machines = [
        single_node(4),
        tiny_two_node(),
        dual_socket_small(),
        parse_topology(CUSTOM_MACHINE),
        zen4_9354(),
    ]

    print("machines under test:")
    for m in machines:
        print(f"  {m.describe()}")

    print(f"\n{'machine':<20} {'baseline[s]':>12} {'ilan[s]':>10} {'speedup':>8} {'avg thr':>8}")
    for machine in machines:
        app = make_lulesh(timesteps=12)
        base = OpenMPRuntime(machine, scheduler="baseline", seed=0).run_application(app)
        ilan = OpenMPRuntime(machine, scheduler="ilan", seed=0).run_application(app)
        print(
            f"{machine.name:<20} {base.total_time:>12.4f} {ilan.total_time:>10.4f} "
            f"{base.total_time / ilan.total_time:>8.3f} {ilan.weighted_avg_threads:>8.1f}"
        )

    print("\ntextual form of the custom machine (round-trips through the parser):")
    print(format_topology(machines[3]))


if __name__ == "__main__":
    main()
