#!/usr/bin/env python
"""Quickstart: run one benchmark under ILAN and the baseline scheduler.

Builds the paper's 64-core Zen 4 platform, runs the CG benchmark model
under the default LLVM-style work-stealing scheduler and under ILAN, and
prints the speedup plus what ILAN learned per taskloop.

Run:
    python examples/quickstart.py
"""

from repro import OpenMPRuntime, zen4_9354
from repro.core.scheduler import IlanScheduler
from repro.workloads import make_cg


def main() -> None:
    machine = zen4_9354()
    print(machine.describe())

    app = make_cg(timesteps=30)
    print(f"\nrunning {app.name!r}: {len(app.loops)} taskloops x {app.timesteps} timesteps")

    baseline = OpenMPRuntime(machine, scheduler="baseline", seed=0)
    base_result = baseline.run_application(app)
    print(f"baseline total time: {base_result.total_time:.4f}s")

    ilan_sched = IlanScheduler()
    ilan = OpenMPRuntime(machine, scheduler=ilan_sched, seed=0)
    ilan_result = ilan.run_application(app)
    print(f"ILAN     total time: {ilan_result.total_time:.4f}s")

    speedup = base_result.total_time / ilan_result.total_time
    print(f"\nspeedup: {speedup:.3f}  ({(speedup - 1) * 100:+.1f}%)")
    print(f"ILAN weighted average threads: {ilan_result.weighted_avg_threads:.1f} of {machine.num_cores}")

    print("\nsettled configurations (what moldability learned):")
    for uid in app.loop_uids():
        ctrl = ilan_sched.controller(uid)
        cfg = ctrl.settled_config
        state = cfg.describe() if cfg else f"still exploring (phase={ctrl.phase.value})"
        print(f"  {uid:16} {state}")


if __name__ == "__main__":
    main()
