"""Extension: energy-aware configuration selection (paper Section 3.5).

Runs a bandwidth-bound workload under ILAN optimising time, energy, and
energy-delay product.  Expected ordering: the time objective finds the
fastest configuration, the energy objective the most frugal one (narrower
— idle/uncore power makes width expensive), and EDP sits between.
"""

from benchmarks.conftest import bench_config, run_once
from repro.core.scheduler import IlanScheduler
from repro.energy import EnergyModel
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_synthetic


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 25
    model = EnergyModel()
    app = make_synthetic(
        name="bandwidth", mem_frac=0.8, blocked_fraction=0.0, reuse=0.1,
        gamma=1.2, timesteps=steps, region_mib=512,
    )
    rows = []
    for objective in ("time", "energy", "edp"):
        sched = IlanScheduler(objective=objective, energy_model=model)
        res = OpenMPRuntime(topo, scheduler=sched, seed=0).run_application(app)
        cfg_settled = sched.controller("bandwidth.loop").settled_config
        rows.append(
            (objective, res.total_time, model.run_energy(res), cfg_settled.num_threads)
        )
    return rows


def test_ext_energy_objectives(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nExtension: selection objective (bandwidth-bound synthetic)")
    print(f"{'objective':>9} {'time[s]':>9} {'energy[J]':>10} {'threads':>8}")
    for obj, t, e, thr in rows:
        print(f"{obj:>9} {t:>9.4f} {e:>10.2f} {thr:>8}")
    by = {obj: (t, e, thr) for obj, t, e, thr in rows}

    # the time objective is fastest; the energy objective is most frugal
    assert by["time"][0] <= min(v[0] for v in by.values()) + 1e-9
    assert by["energy"][1] <= min(v[1] for v in by.values()) + 1e-9
    # energy prefers narrower configurations than time
    assert by["energy"][2] <= by["time"][2]
    # EDP interpolates on width
    assert by["energy"][2] <= by["edp"][2] <= by["time"][2]
