"""Extension: the OpenMP ``affinity`` clause vs ILAN (paper Section 3.4).

The paper argues ILAN "builds upon the locality-awareness enabled by
affinity and augments it with adaptivity and automation".  This bench
makes the claim measurable on the locality-sensitive BT model: perfect
affinity hints (placement only, honoured by an otherwise default runtime)
recover part of the baseline's locality loss; ILAN's enforced hierarchy
recovers more; full ILAN adds moldability on top.
"""

from benchmarks.conftest import bench_config, run_once
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_bt

SCHEDULERS = ("baseline", "affinity-hint", "ilan-nomold", "ilan")


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    seeds = max(2, cfg.seeds // 3)
    app = make_bt(timesteps=steps)
    rows = []
    for sched in SCHEDULERS:
        times = [
            OpenMPRuntime(topo, scheduler=sched, seed=s).run_application(app).total_time
            for s in range(seeds)
        ]
        rows.append((sched, sum(times) / len(times)))
    return rows


def test_ext_affinity_clause(benchmark):
    rows = run_once(benchmark, sweep)
    base = rows[0][1]
    print("\nExtension: affinity hints vs enforced hierarchy (BT)")
    print(f"{'scheduler':>14} {'time[s]':>9} {'speedup':>8}")
    for name, t in rows:
        print(f"{name:>14} {t:>9.4f} {base / t:>8.3f}")
    by = dict(rows)

    # hints help over the topology-blind default...
    assert by["affinity-hint"] < by["baseline"]
    # ...but enforcement (hierarchical stealing + strictness) helps more
    assert by["ilan-nomold"] < by["affinity-hint"] * 1.02
