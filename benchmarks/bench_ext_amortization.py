"""Extension: exploration amortization — how many encounters ILAN needs.

Section 3.2: "The exploratory approach necessitates that taskloops within
the application execute numerous times, to cover the cost of exploring
while benefiting from the optimal configuration."  This bench sweeps the
application's outer iteration count on SP (large moldability win, so the
break-even is visible): with very few encounters the exploration probes
dominate and ILAN can lose to the baseline; the gain then grows towards
its asymptote as the settled configuration amortises the search.
"""

from benchmarks.conftest import bench_config, run_once
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_sp

TIMESTEPS = (3, 6, 12, 25, 50)


def sweep():
    topo = zen4_9354()
    rows = []
    for steps in TIMESTEPS:
        app = make_sp(timesteps=steps)
        base = OpenMPRuntime(topo, scheduler="baseline", seed=0).run_application(app)
        ilan = OpenMPRuntime(topo, scheduler="ilan", seed=0).run_application(app)
        rows.append((steps, base.total_time / ilan.total_time))
    return rows


def test_ext_exploration_amortization(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nExtension: ILAN speedup on SP vs number of outer iterations")
    print(f"{'timesteps':>10} {'speedup':>9}")
    for steps, sp in rows:
        print(f"{steps:>10} {sp:>9.3f}")
    speedups = [sp for _, sp in rows]
    # the gain grows with the iteration count (amortization)...
    assert speedups[-1] > speedups[0]
    # ...approaching its asymptote: the last two points are close
    assert abs(speedups[-1] - speedups[-2]) < 0.2 * speedups[-1]
    # and at paper-like scale the moldability win is substantial
    assert speedups[-1] > 1.2
