"""Ablation: the thread-count granularity ``g`` of Algorithm 1.

The paper sets ``g`` to the NUMA node size (8 on the Zen 4 platform) so
configurations always use whole nodes, and notes other values may suit
other platforms.  This sweep runs SP — the benchmark most sensitive to
the chosen width — with ``g`` in {4, 8, 16, 32}: finer granularity finds
widths closer to the optimum but pays more exploration; coarser
granularity explores less but can miss the optimum.
"""

from benchmarks.conftest import bench_config, run_once
from repro.core.scheduler import IlanScheduler
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_sp

GRANULARITIES = (4, 8, 16, 32)


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    seeds = max(2, cfg.seeds // 3)
    app = make_sp(timesteps=steps)
    base = [
        OpenMPRuntime(topo, scheduler="baseline", seed=s).run_application(app).total_time
        for s in range(seeds)
    ]
    base_mean = sum(base) / len(base)
    rows = []
    for g in GRANULARITIES:
        results = [
            OpenMPRuntime(
                topo, scheduler=IlanScheduler(granularity=g), seed=s
            ).run_application(app)
            for s in range(seeds)
        ]
        mean = sum(r.total_time for r in results) / len(results)
        threads = sum(r.weighted_avg_threads for r in results) / len(results)
        rows.append((g, base_mean / mean, threads))
    return rows


def test_ablation_granularity(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nAblation: thread-count granularity g on SP")
    print(f"{'g':>4} {'speedup':>9} {'avg threads':>12}")
    for g, sp, thr in rows:
        print(f"{g:>4} {sp:>9.3f} {thr:>12.1f}")
    speedups = {g: sp for g, sp, _ in rows}
    # every granularity must still beat the contention-crushed baseline
    assert all(sp > 1.1 for sp in speedups.values())
    # the paper's node-size granularity is competitive with the best
    # (finer g can edge ahead by splitting nodes, at higher exploration
    # cost; see Section 3.5's discussion of the choice)
    assert speedups[8] >= 0.82 * max(speedups.values())
