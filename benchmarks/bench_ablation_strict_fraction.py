"""Ablation: the NUMA-strict fraction of the hierarchical distribution.

The paper leaves the stealable portion "implementation-specific"; this
sweep shows the trade-off on CG (imbalanced, so it needs the stealable
tail for load balancing) — locality protection vs balancing freedom.
"""

from benchmarks.conftest import bench_config, run_once
from repro.core.scheduler import IlanScheduler
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_cg

FRACTIONS = (0.0, 0.25, 0.55, 0.8, 1.0)


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    seeds = max(2, cfg.seeds // 3)
    app = make_cg(timesteps=steps)
    base = [
        OpenMPRuntime(topo, scheduler="baseline", seed=s).run_application(app).total_time
        for s in range(seeds)
    ]
    base_mean = sum(base) / len(base)
    rows = []
    for frac in FRACTIONS:
        times = [
            OpenMPRuntime(
                topo, scheduler=IlanScheduler(strict_fraction=frac), seed=s
            ).run_application(app).total_time
            for s in range(seeds)
        ]
        rows.append((frac, base_mean / (sum(times) / len(times))))
    return rows


def test_ablation_strict_fraction(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nAblation: NUMA-strict fraction on CG (speedup vs baseline)")
    print(f"{'strict_fraction':>16} {'speedup':>9}")
    for frac, sp in rows:
        print(f"{frac:>16.2f} {sp:>9.3f}")
    by_frac = dict(rows)
    # a fully strict distribution forfeits load balancing on the
    # imbalanced CG: it must not beat the default (balancing-friendly)
    # fraction used by the library
    assert by_frac[1.0] <= by_frac[0.55] + 0.02
    # every setting keeps ILAN functional (no pathological collapse)
    assert all(sp > 0.7 for _, sp in rows)
