"""Figure 6: ILAN and OpenMP static work-sharing vs the tasking baseline.

Paper result: ILAN beats work-sharing on most benchmarks; the notable
exception is FT, whose perfectly balanced loops make static scheduling
ideal (work-sharing beats both the baseline *and* ILAN there).  CG shows
the clearest tasking win: its inherent imbalance defeats static blocks.
"""

from benchmarks.conftest import run_once
from repro.exp.figures import figure6
from repro.exp.report import render_figure6


def test_fig6_vs_worksharing(runner, benchmark):
    rows = run_once(benchmark, lambda: figure6(runner))
    print()
    print(render_figure6(rows))
    print("paper: work-sharing wins FT; ILAN wins CG (imbalanced) and SP")

    ilan = {r.benchmark: r for r in rows["ilan"]}
    ws = {r.benchmark: r for r in rows["worksharing"]}

    # FT: balanced workload -> static scheduling is at least as good as ILAN
    assert ws["ft"].speedup > 1.0
    assert ws["ft"].speedup >= ilan["ft"].speedup
    # CG: imbalanced workload -> static scheduling loses to the baseline,
    # while ILAN wins
    assert ws["cg"].speedup < 1.0
    assert ilan["cg"].speedup > 1.0
    assert ilan["cg"].speedup > ws["cg"].speedup
    # SP: contention-bound -> molding beats both alternatives decisively
    assert ilan["sp"].speedup > ws["sp"].speedup
