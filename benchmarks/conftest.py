"""Shared infrastructure for the paper-figure benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation section and prints it.  The cells (benchmark x scheduler runs)
are cached in a process-wide runner, so figures that share cells (e.g.
Figure 2 and Figure 3) only pay once.

Scaling knobs (environment, read once when the runner is first built):

* ``REPRO_SEEDS``     — repetitions per cell (default 10 here; paper: 30);
* ``REPRO_ITERS``     — application timesteps (default: the models' 50);
* ``REPRO_FULL=1``    — paper-parity scale (30 seeds, model defaults);
* ``REPRO_JOBS``      — worker processes for the runs (default 1);
* ``REPRO_CACHE_DIR`` — persistent run cache: reruns of the bench suite
  reuse completed runs instead of re-simulating them.
"""

from __future__ import annotations

import pytest

from repro.bench import timers
from repro.exp.runner import ExperimentConfig, Runner


def bench_config() -> ExperimentConfig:
    """Benchmark-suite scale: lighter default than the paper's 30 seeds."""
    return ExperimentConfig.from_env(default_seeds=10)


_RUNNER: Runner | None = None


@pytest.fixture(scope="session")
def runner() -> Runner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = Runner(bench_config())
    return _RUNNER


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic given their seed set, and a single
    invocation already aggregates many simulated runs, so repeated
    benchmark rounds would only re-measure the cache.  Timing goes
    through the repo's single wall-clock seam (:mod:`repro.bench.timers`)
    so these figures and ``scripts/bench.py`` measure identically.
    """
    benchmark._timer = timers.now
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
