"""Extension: manual OpenMP affinity (proc_bind) vs ILAN.

The paper motivates ILAN by noting the standard's ``close``/``spread``
policies "only provide coarse guidance for thread placement, without
consideration of underlying data locality or interference aspects".  This
bench makes that concrete on SP: a manually halved thread team (the best a
programmer could do knowing SP saturates memory) placed close or spread,
against ILAN finding the configuration automatically per taskloop.
"""

from benchmarks.conftest import bench_config, run_once
from repro.runtime.runtime import OpenMPRuntime
from repro.runtime.schedulers.baseline import BaselineScheduler
from repro.topology.presets import zen4_9354
from repro.workloads import make_sp


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    app = make_sp(timesteps=steps)
    rows = []
    rows.append(("default-64", OpenMPRuntime(topo, scheduler="baseline", seed=0)
                 .run_application(app).total_time))
    for bind in ("close", "spread"):
        sched = BaselineScheduler(num_threads=32, proc_bind=bind)
        rows.append((f"32-{bind}", OpenMPRuntime(topo, scheduler=sched, seed=0)
                     .run_application(app).total_time))
    rows.append(("ilan", OpenMPRuntime(topo, scheduler="ilan", seed=0)
                 .run_application(app).total_time))
    return rows


def test_ext_proc_bind_vs_ilan(benchmark):
    rows = run_once(benchmark, sweep)
    base = rows[0][1]
    print("\nExtension: manual affinity vs ILAN on SP")
    print(f"{'config':>12} {'time[s]':>9} {'speedup':>8}")
    for name, t in rows:
        print(f"{name:>12} {t:>9.4f} {base / t:>8.3f}")
    by = dict(rows)

    # a hand-reduced team already beats the oversubscribed default...
    assert by["32-spread"] < by["default-64"]
    # ...and spreading it across memory controllers beats packing it
    assert by["32-spread"] < by["32-close"]
    # ILAN beats the default and the packed manual configuration without
    # any hints.  The hand-tuned *spread* team can stay ahead: it splits
    # nodes, which lowers per-node congestion — the trade-off the paper
    # discusses in Section 3.5 when it fixes g to whole NUMA nodes for
    # locality (and it needs a programmer who already knows SP's optimal
    # width, which is exactly what ILAN discovers automatically).
    assert by["ilan"] < by["default-64"]
    assert by["ilan"] < by["32-close"] * 1.05
