"""Figure 5: accumulated scheduling overhead, ILAN normalized to baseline.

Paper result: ILAN's overhead is *lower* than the baseline's in four of
the seven benchmarks — molding to fewer threads shrinks synchronization
and steal traffic (most pronounced in CG) — while benchmarks that keep
all cores (Matmul) pay a predictable increase for configuration selection
and PTT updates.
"""

from benchmarks.conftest import run_once
from repro.exp.figures import figure5
from repro.exp.report import render_overheads


def test_fig5_scheduling_overhead(runner, benchmark):
    rows = run_once(benchmark, lambda: figure5(runner))
    print()
    print(render_overheads(
        "Figure 5: accumulated scheduling overhead (ILAN / baseline, lower is better)", rows
    ))
    print("paper: ILAN lower in 4/7; biggest reduction in CG; increase for Matmul")

    by_bench = {r.benchmark: r for r in rows}
    lower = sum(1 for r in rows if r.normalized < 1.0)
    # the molded benchmarks shrink their synchronization footprint
    assert by_bench["cg"].normalized < 1.0
    assert by_bench["sp"].normalized < 1.0
    assert lower >= 3, f"ILAN should reduce overhead for several benchmarks, got {lower}/7"
    # overheads stay a small fraction of runtime for every benchmark
    for r in rows:
        base_time = runner.cell(r.benchmark, "baseline").summary().mean
        assert r.baseline_overhead < 0.1 * base_time
