"""Ablation: page placement policy (first-touch vs interleave vs bind).

The benchmarks rely on Linux first-touch placement, which is what lets
deterministic task distribution also determine *data* distribution.  This
sweep runs the locality-sensitive FT model with the region forced to
interleaved and single-node placement instead: interleaving wipes out
most of the hierarchical locality win; binding everything to one node
additionally concentrates all demand on one memory controller.
"""

import dataclasses

from benchmarks.conftest import bench_config, run_once
from repro.memory.allocator import AllocPolicy
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_ft
from repro.workloads.base import RegionSpec

POLICIES = (AllocPolicy.FIRST_TOUCH, AllocPolicy.INTERLEAVE, AllocPolicy.BIND)


def app_with_policy(policy, steps):
    app = make_ft(timesteps=steps)
    app.regions = [
        RegionSpec(r.name, r.num_bytes, policy=policy) for r in app.regions
    ]
    return app


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    rows = []
    for policy in POLICIES:
        app = app_with_policy(policy, steps)
        base = OpenMPRuntime(topo, scheduler="baseline", seed=0).run_application(app)
        ilan = OpenMPRuntime(topo, scheduler="ilan", seed=0).run_application(app)
        rows.append((policy.value, base.total_time, ilan.total_time))
    return rows


def test_ablation_allocation_policy(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nAblation: page placement policy on FT")
    print(f"{'policy':>12} {'baseline[s]':>12} {'ilan[s]':>10} {'speedup':>8}")
    for name, b, i in rows:
        print(f"{name:>12} {b:>12.4f} {i:>10.4f} {b / i:>8.3f}")
    by_policy = {name: (b, i) for name, b, i in rows}

    ft_b, ft_i = by_policy["first_touch"]
    il_b, il_i = by_policy["interleave"]
    bd_b, bd_i = by_policy["bind"]
    # binding all pages to one node serialises on one memory controller:
    # clearly the slowest placement for every scheduler
    assert bd_i > ft_i
    assert bd_i > il_i
    assert bd_b > ft_b
    # first-touch and interleave are both sane placements for FT: first
    # touch maximises locality, interleave maximises bandwidth spread, and
    # on this half-memory-bound code they land close together (the classic
    # trade-off; neither dominates by a large margin)
    assert abs(ft_i - il_i) < 0.2 * ft_i
