"""Figure 2: normalized speedup of ILAN vs the default scheduler.

Paper result (64-core Zen 4): ILAN outperforms the LLVM default scheduler
on six of seven benchmarks — average +13.2%, maximum +45.8% (SP) — with a
slight slowdown on the compute-bound Matmul kernel.
"""

from benchmarks.conftest import run_once
from repro.exp.figures import PAPER_EXPECTATIONS, average_speedup, figure2
from repro.exp.report import render_speedups


def test_fig2_overall_speedup(runner, benchmark):
    rows = run_once(benchmark, lambda: figure2(runner))
    print()
    print(render_speedups("Figure 2: ILAN vs baseline (speedup, higher is better)", rows))
    print(f"paper: avg {PAPER_EXPECTATIONS['fig2_avg']:.3f}, "
          f"sp {PAPER_EXPECTATIONS['fig2_speedup']['sp']:.3f}, "
          f"matmul {PAPER_EXPECTATIONS['fig2_speedup']['matmul']:.3f}")

    by_bench = {r.benchmark: r for r in rows}
    # shape assertions: who wins and the headline ordering
    assert average_speedup(rows) > 1.0, "ILAN must win on average"
    assert by_bench["sp"].speedup == max(r.speedup for r in rows), "SP is the biggest win"
    assert by_bench["matmul"].speedup == min(r.speedup for r in rows), "Matmul is the worst case"
    assert by_bench["matmul"].speedup < 1.02, "Matmul shows no real ILAN gain"
    for name in ("ft", "bt", "cg", "sp", "lulesh"):
        assert by_bench[name].speedup > 1.0, f"{name} must benefit from ILAN"
