"""Figure 4: ILAN without moldability (hierarchical scheduling only).

Paper result: locality alone is worth +7.9% on average; CG flips to a
-8.6% *loss* (strict placement fights its imbalance) and SP loses most of
its gain — isolating how much of ILAN's win is interference mitigation.
"""

from benchmarks.conftest import run_once
from repro.exp.figures import PAPER_EXPECTATIONS, average_speedup, figure2, figure4
from repro.exp.report import render_speedups


def test_fig4_no_moldability(runner, benchmark):
    rows = run_once(benchmark, lambda: figure4(runner))
    print()
    print(render_speedups("Figure 4: ILAN without moldability vs baseline", rows))
    print(f"paper: avg {PAPER_EXPECTATIONS['fig4_avg']:.3f}, cg {PAPER_EXPECTATIONS['fig4_cg']:.3f}")

    by_bench = {r.benchmark: r for r in rows}
    ilan = {r.benchmark: r for r in figure2(runner)}

    # moldability is what wins on the contention-bound benchmarks: without
    # it SP collapses and CG loses its gain entirely
    assert by_bench["sp"].speedup < ilan["sp"].speedup - 0.2
    assert by_bench["cg"].speedup < 1.02
    assert by_bench["cg"].speedup < ilan["cg"].speedup
    # the locality-bound benchmarks keep (or slightly improve) their gains
    for name in ("ft", "bt", "lulesh"):
        assert by_bench[name].speedup > 1.0, name
        assert by_bench[name].speedup >= ilan[name].speedup - 0.02, name
    # hierarchical-only still wins on average, but less than full ILAN
    assert 1.0 < average_speedup(rows)
