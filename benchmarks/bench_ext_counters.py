"""Extension: counter-driven exploration (the paper's proposed future work).

"More performance statistics can also reduce the exploration overhead by
utilizing the additional information to arrive at the optimal
configuration more quickly" (Section 3.5).  This bench quantifies that on
the two extremes: the compute-bound Matmul (counters skip the search
entirely) and the contention-bound SP (counters must NOT skip it, or the
moldability win would be lost).
"""

from benchmarks.conftest import bench_config, run_once
from repro.core.scheduler import IlanScheduler
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_matmul, make_sp


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    rows = []
    for name, factory in (("matmul", make_matmul), ("sp", make_sp)):
        app = factory(timesteps=steps)
        for use_counters in (False, True):
            sched = IlanScheduler(use_counters=use_counters)
            res = OpenMPRuntime(topo, scheduler=sched, seed=0).run_application(app)
            widths = len({r.num_threads for r in res.taskloops})
            rows.append((name, use_counters, res.total_time, widths,
                         res.weighted_avg_threads))
    return rows


def test_ext_counter_guided_exploration(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nExtension: counter-guided exploration")
    print(f"{'bench':>8} {'counters':>9} {'time[s]':>9} {'widths':>7} {'avg thr':>8}")
    for name, uc, t, widths, thr in rows:
        print(f"{name:>8} {str(uc):>9} {t:>9.4f} {widths:>7} {thr:>8.1f}")
    by = {(name, uc): (t, widths, thr) for name, uc, t, widths, thr in rows}

    # Matmul: the shortcut removes all narrow probes and speeds up the run
    assert by[("matmul", True)][1] == 1
    assert by[("matmul", False)][1] > 1
    assert by[("matmul", True)][0] < by[("matmul", False)][0]
    # SP: saturation keeps the search alive — molding still happens and the
    # counter variant stays within noise of plain ILAN
    assert by[("sp", True)][2] < 48
    assert by[("sp", True)][0] < by[("sp", False)][0] * 1.05
