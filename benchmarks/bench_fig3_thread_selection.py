"""Figure 3: weighted average thread (core) count selected by ILAN.

Paper result: the optimal width is workload-dependent — CG averages only
~25 of 64 cores (aggressive moldability against its memory contention),
SP is also reduced, while FT, BT and Matmul keep the full machine.
"""

from benchmarks.conftest import run_once
from repro.exp.figures import PAPER_EXPECTATIONS, figure3
from repro.exp.report import render_threads


def test_fig3_thread_selection(runner, benchmark):
    rows = run_once(benchmark, lambda: figure3(runner))
    print()
    print(render_threads("Figure 3: weighted average threads selected by ILAN", rows))
    print(f"paper: cg ~{PAPER_EXPECTATIONS['fig3_cores']['cg']}, ft/bt/matmul = 64")

    by_bench = {r.benchmark: r for r in rows}
    full = by_bench["cg"].max_threads
    # CG and SP are molded down; the scalable benchmarks keep (nearly) all
    # cores — "nearly" because the exploration phase briefly runs narrower
    # configurations, which the weighted average includes.
    assert by_bench["cg"].avg_threads < 0.75 * full
    assert by_bench["sp"].avg_threads < 0.75 * full
    for name in ("ft", "bt", "matmul", "lu"):
        assert by_bench[name].avg_threads > 0.85 * full, name
    assert by_bench["cg"].avg_threads == min(r.avg_threads for r in rows) or (
        by_bench["sp"].avg_threads == min(r.avg_threads for r in rows)
    )
