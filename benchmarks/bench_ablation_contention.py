"""Ablation: ILAN's gain as a function of the contention exponent gamma.

DESIGN.md's load-bearing substitution is the superlinear bandwidth
contention penalty ``(D/B)^(1+gamma)``: with gamma = 0 (ideal fair
sharing) running a memory-bound loop on fewer cores cannot finish sooner,
so moldability has nothing to exploit; as gamma grows, oversubscription
becomes actively harmful and ILAN's molding gain grows with it.  This
sweep verifies that monotone relationship on a synthetic memory-bound
irregular workload.
"""

from benchmarks.conftest import bench_config, run_once
from repro.runtime.runtime import OpenMPRuntime
from repro.topology.presets import zen4_9354
from repro.workloads import make_synthetic

GAMMAS = (0.0, 0.5, 1.0, 1.5, 2.0)


def sweep():
    cfg = bench_config()
    topo = zen4_9354()
    steps = cfg.timesteps or 30
    rows = []
    for gamma in GAMMAS:
        app = make_synthetic(
            name=f"sweep-gamma",
            mem_frac=0.8,
            blocked_fraction=0.0,
            reuse=0.1,
            gamma=gamma,
            timesteps=steps,
        )
        base = OpenMPRuntime(topo, scheduler="baseline", seed=0).run_application(app)
        ilan = OpenMPRuntime(topo, scheduler="ilan", seed=0).run_application(app)
        rows.append(
            (gamma, base.total_time / ilan.total_time, ilan.weighted_avg_threads)
        )
    return rows


def test_ablation_contention_exponent(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nAblation: ILAN speedup vs contention exponent (synthetic, memory-bound)")
    print(f"{'gamma':>6} {'speedup':>9} {'avg threads':>12}")
    for gamma, sp, thr in rows:
        print(f"{gamma:>6.1f} {sp:>9.3f} {thr:>12.1f}")
    speedups = [sp for _, sp, _ in rows]
    threads = [thr for _, _, thr in rows]
    # fair sharing: no moldability win (ILAN ~ baseline)
    assert speedups[0] < 1.1
    # superlinear contention: the win grows with gamma...
    assert speedups[-1] > speedups[0] + 0.3
    assert speedups[-1] == max(speedups)
    # ...because ILAN molds the loop narrower and narrower
    assert threads[-1] < threads[0]
