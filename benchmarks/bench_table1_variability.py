"""Table 1: standard deviation of execution time, baseline vs ILAN.

Paper result: ILAN's deterministic hierarchical distribution reduces
run-to-run variability in several benchmarks (FT 0.0117 -> 0.0037,
LU 0.0169 -> 0.0045, SP 0.0554 -> 0.0258); a few others show increases
attributed to outliers/system noise.
"""

from benchmarks.conftest import run_once
from repro.exp.figures import PAPER_EXPECTATIONS, table1
from repro.exp.report import render_variability


def test_table1_variability(runner, benchmark):
    rows = run_once(benchmark, lambda: table1(runner))
    print()
    print(render_variability("Table 1: execution-time standard deviation (30-run style)", rows))
    paper = PAPER_EXPECTATIONS["table1"]
    print("paper (baseline, ilan): " + ", ".join(f"{k}={v}" for k, v in paper.items()))

    by_bench = {r.benchmark: r for r in rows}
    lower = sum(1 for r in rows if r.ilan_std < r.baseline_std)
    # ILAN reduces variability for a meaningful subset, as in the paper
    assert lower >= 3, f"expected variance reduction in >= 3 benchmarks, got {lower}/7"
    # variability stays a small fraction of the mean everywhere
    for r in rows:
        assert r.baseline_rel_std < 0.25
        assert r.ilan_rel_std < 0.25
    # the headline reduction: SP under ILAN is more stable than baseline
    assert by_bench["sp"].ilan_rel_std < by_bench["sp"].baseline_rel_std
