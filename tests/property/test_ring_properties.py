"""Property-based tests for the federation's consistent-hash ring.

The two load-bearing guarantees (hypothesis):

* **balance** — with 64 virtual nodes per member, tenant ownership over
  a fleet of >= 8 shards stays within a constant factor of uniform;
* **minimal remap** — a member leaving moves only the tenants it owned,
  and a member joining moves only tenants *onto* the newcomer.  Nobody
  else's placement changes, which is what makes shard death cheap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.federation.ring import ConsistentHashRing, RingError

seeds = st.integers(min_value=0, max_value=2**20)
shard_counts = st.integers(min_value=8, max_value=16)

TENANTS = [f"tenant-{i}" for i in range(1000)]


def _ring(seed: int, count: int, vnodes: int = 64) -> ConsistentHashRing:
    return ConsistentHashRing(
        [f"shard-{i}" for i in range(count)], seed=seed, vnodes=vnodes
    )


@settings(max_examples=25, deadline=None)
@given(seed=seeds, count=shard_counts)
def test_balance_within_constant_factor_of_uniform(seed, count):
    ring = _ring(seed, count)
    owners = ring.ownership(TENANTS)
    loads = {m: 0 for m in ring.members}
    for owner in owners.values():
        loads[owner] += 1
    mean = len(TENANTS) / count
    assert max(loads.values()) <= 2.0 * mean
    assert min(loads.values()) >= 0.25 * mean


@settings(max_examples=25, deadline=None)
@given(seed=seeds, count=shard_counts, victim=st.integers(min_value=0, max_value=15))
def test_leave_remaps_only_the_departed_members_tenants(seed, count, victim):
    ring = _ring(seed, count)
    departed = f"shard-{victim % count}"
    before = ring.ownership(TENANTS)
    ring.remove(departed)
    after = ring.ownership(TENANTS)
    for tenant in TENANTS:
        if before[tenant] == departed:
            assert after[tenant] != departed
        else:
            assert after[tenant] == before[tenant], (
                f"{tenant} moved {before[tenant]} -> {after[tenant]} though "
                f"only {departed} left the ring"
            )


@settings(max_examples=25, deadline=None)
@given(seed=seeds, count=shard_counts)
def test_join_remaps_only_onto_the_newcomer(seed, count):
    ring = _ring(seed, count)
    before = ring.ownership(TENANTS)
    ring.add("shard-new")
    after = ring.ownership(TENANTS)
    for tenant in TENANTS:
        if after[tenant] != before[tenant]:
            assert after[tenant] == "shard-new", (
                f"{tenant} moved {before[tenant]} -> {after[tenant]} though "
                "only shard-new joined"
            )


@settings(max_examples=25, deadline=None)
@given(seed=seeds, count=shard_counts)
def test_leave_then_rejoin_restores_ownership(seed, count):
    ring = _ring(seed, count)
    before = ring.ownership(TENANTS)
    ring.remove("shard-0")
    ring.add("shard-0")
    assert ring.ownership(TENANTS) == before


@settings(max_examples=15, deadline=None)
@given(seed=seeds, count=shard_counts)
def test_placement_independent_of_join_order(seed, count):
    members = [f"shard-{i}" for i in range(count)]
    forward = ConsistentHashRing(members, seed=seed)
    backward = ConsistentHashRing(reversed(members), seed=seed)
    sample = TENANTS[:100]
    assert forward.ownership(sample) == backward.ownership(sample)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, count=shard_counts)
def test_preference_starts_at_owner_and_covers_every_member(seed, count):
    ring = _ring(seed, count)
    for tenant in TENANTS[:50]:
        order = ring.preference(tenant)
        assert order[0] == ring.owner(tenant)
        assert sorted(order) == ring.members


def test_ring_edge_cases():
    ring = ConsistentHashRing()
    with pytest.raises(RingError):
        ring.owner("anyone")
    ring.add("only")
    assert ring.owner("anyone") == "only"
    assert ring.preference("anyone") == ["only"]
    with pytest.raises(RingError):
        ring.add("only")
    with pytest.raises(RingError):
        ring.remove("ghost")
    with pytest.raises(RingError):
        ring.add("")
    with pytest.raises(RingError):
        ConsistentHashRing(["a"], vnodes=0)
